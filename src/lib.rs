#![warn(missing_docs)]

//! # noisy-beeps
//!
//! A Rust implementation of **"Optimal Message-Passing with Noisy Beeps"**
//! (Peter Davies, PODC 2023): optimal simulation of the Broadcast CONGEST
//! and CONGEST message-passing models in the noisy (and noiseless)
//! beeping model, plus everything needed to reproduce the paper's results
//! — the beeping-network simulator, the binary-code constructions, a
//! reference algorithm library, prior-work baselines, and the lower-bound
//! experiments.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. Start with [`core`] (`beep-core`) for the paper's contribution,
//! or with the [`apps`] layer for one-call task solvers.
//!
//! ```
//! use noisy_beeps::prelude::*;
//!
//! // Maximal matching over a noisy beeping network in O(Δ log² n) rounds
//! // (Theorem 21), validated before returning.
//! let field = topology::grid(3, 3).unwrap();
//! let result = maximal_matching(&field, 0.05, 7).unwrap();
//! assert_eq!(result.output.len(), 9);
//! ```
//!
//! | Layer | Crate | Contents |
//! |-------|-------|----------|
//! | [`bits`] | `beep-bits` | dense bit strings (`∨`, `∧`, `1(s)`, `d_H`) |
//! | [`codes`] | `beep-codes` | beep codes (Thm 4), distance codes (Lem 6), combined code (Fig 1), Kautz–Singleton baseline |
//! | [`net`] | `beep-net` | the beeping model: graphs, topologies, noise, round engine |
//! | [`congest`] | `beep-congest` | Broadcast CONGEST / CONGEST models + algorithm library (incl. the paper's Algorithm 3) |
//! | [`core`] | `beep-core` | Algorithm 1, Theorem 11 / Corollary 12 runners, baselines, lower bounds |
//! | [`apps`] | `beep-apps` | one-call tasks: matching, MIS, coloring, beep waves, leader election — plus the named [`apps::Protocol`] registry |
//! | [`scenarios`] | `beep-scenarios` | declarative campaigns: spec → cell matrix → engine → versioned JSON report |

pub use beep_apps as apps;
pub use beep_bits as bits;
pub use beep_codes as codes;
pub use beep_congest as congest;
pub use beep_core as core;
pub use beep_net as net;
pub use beep_scenarios as scenarios;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use beep_apps::{
        beep_leader_election, beep_wave_broadcast, coloring, maximal_independent_set,
        maximal_matching, Protocol,
    };
    pub use beep_bits::BitVec;
    pub use beep_congest::{
        algorithms, validate, BroadcastAlgorithm, BroadcastRunner, CongestAlgorithm, CongestRunner,
        Message, MessageWriter,
    };
    pub use beep_core::{
        baseline, lower_bound, BroadcastSimulator, CongestAdapter, SimulatedBroadcastRunner,
        SimulatedCongestRunner, SimulationParams,
    };
    pub use beep_net::{topology, Action, BeepNetwork, Graph, Noise};
    pub use beep_scenarios::{run_campaign, CampaignSpec, RunOptions, TopologyFamily};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_paths_resolve() {
        // Compile-time check that the re-exports cover the main entry
        // points.
        let _ = crate::net::topology::path(3).unwrap();
        let _ = crate::core::SimulationParams::calibrated(0.1);
        let _ = crate::bits::BitVec::zeros(8);
    }
}
