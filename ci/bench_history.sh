#!/usr/bin/env bash
# Perf-trajectory driver: compares a fresh set of BENCH_*.json metrics
# files against the previous run's artifact, and appends the headline
# node_rounds_per_sec* metrics to the merged BENCH_TRAJECTORY.json
# (schema "beep-bench-trajectory", see crates/bench/src/trajectory.rs).
#
#   ci/bench_history.sh check <bench-json-dir> <baseline-dir> [tolerance]
#       For every BENCH_*.json under <bench-json-dir>, compare every
#       node_rounds_per_sec* metric against the same file in
#       <baseline-dir> within the tolerance band (default 0.4 = −40%).
#       A missing baseline dir/file is a note, not a failure: the first
#       run, an expired artifact, or a fresh fork has no history yet.
#
#   ci/bench_history.sh append <bench-json-dir> <trajectory-file> [commit]
#       Append one row per node_rounds_per_sec* metric to the trajectory
#       file (created from the committed seed if absent), tagged with
#       [commit] (default: $GITHUB_SHA, else "local").
#
# Exit codes: 0 pass, 1 a band regressed, 2 usage error.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
    echo "usage: ci/bench_history.sh check <bench-json-dir> <baseline-dir> [tolerance]" >&2
    echo "       ci/bench_history.sh append <bench-json-dir> <trajectory-file> [commit]" >&2
    exit 2
}

[ $# -ge 3 ] || usage
mode=$1
dir=$2

check_bench() {
    cargo run --release --quiet -p beep-bench --bin check_bench -- "$@"
}

[ -d "$dir" ] || { echo "bench_history: $dir is not a directory" >&2; exit 2; }

# Only files carrying the headline metric take part (all engine benches
# e8–e12 emit it; a future bench without one is simply skipped).
mapfile -t files < <(grep -l '"node_rounds_per_sec' "$dir"/BENCH_*.json 2>/dev/null || true)
if [ ${#files[@]} -eq 0 ]; then
    echo "bench_history: no BENCH_*.json with node_rounds_per_sec metrics under $dir" >&2
    exit 2
fi

case "$mode" in
check)
    baseline_dir=$3
    tolerance=${4:-0.4}
    status=0
    for f in "${files[@]}"; do
        base="$baseline_dir/$(basename "$f")"
        check_bench "$f" --key-prefix node_rounds_per_sec \
            --baseline "$base" --tolerance "$tolerance" || status=1
    done
    exit $status
    ;;
append)
    trajectory=$3
    commit=${4:-${GITHUB_SHA:-local}}
    commit=${commit:0:12}
    for f in "${files[@]}"; do
        check_bench "$f" --key-prefix node_rounds_per_sec \
            --trajectory "$trajectory" --commit "$commit"
    done
    ;;
*)
    usage
    ;;
esac
