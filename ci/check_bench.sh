#!/usr/bin/env bash
# Shared perf-bar checker for CI and local use.
#
# The engine benches emit machine-readable metrics files
# (target/bench-json/BENCH_e8.json … BENCH_e12.json —
# schema "beep-bench-metrics", see crates/bench/src/perfjson.rs). This
# script asserts a named metric clears a floor by delegating to the
# hermetic Rust checker (no jq/python dependency):
#
#   ci/check_bench.sh target/bench-json/BENCH_e8.json --key speedup_n100000 --min 5
#   ci/check_bench.sh target/bench-json/BENCH_e9.json --key speedup_n1000000 --min 2 --min-cores 4
#   ci/check_bench.sh target/bench-json/BENCH_e10.json --key models --min 4
#   ci/check_bench.sh target/bench-json/BENCH_e11.json --key kinds --min 3
#   ci/check_bench.sh target/bench-json/BENCH_e12.json --key policies --min 3
#
# --min-cores N waives the floor (but still requires the metric to exist)
# on machines with fewer than N cores — thread speedups need threads.
# Exit codes: 0 pass, 1 bar missed, 2 usage/schema error.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release --quiet -p beep-bench --bin check_bench -- "$@"
