#!/usr/bin/env bash
# Shared perf-bar checker for CI and local use.
#
# The engine benches emit machine-readable metrics files
# (target/bench-json/BENCH_e8.json … BENCH_e12.json —
# schema "beep-bench-metrics", see crates/bench/src/perfjson.rs). This
# script asserts metrics by delegating to the hermetic Rust checker (no
# jq/python dependency). Current invocations:
#
#   # Absolute floors (the per-push perf bars):
#   ci/check_bench.sh target/bench-json/BENCH_e8.json --key speedup_n100000 --min 5
#   ci/check_bench.sh target/bench-json/BENCH_e9.json --key speedup_n1000000 --min 2 --min-cores 4
#   ci/check_bench.sh target/bench-json/BENCH_e10.json --key models --min 4
#   ci/check_bench.sh target/bench-json/BENCH_e11.json --key kinds --min 3
#   ci/check_bench.sh target/bench-json/BENCH_e12.json --key policies --min 3
#
#   # Trajectory band against a previous run's artifact (see also
#   # ci/bench_history.sh, which drives this across every BENCH file):
#   ci/check_bench.sh target/bench-json/BENCH_e8.json \
#       --key-prefix node_rounds_per_sec --baseline baseline/BENCH_e8.json --tolerance 0.4
#
#   # Append headline metrics to the merged trajectory:
#   ci/check_bench.sh target/bench-json/BENCH_e8.json \
#       --key-prefix node_rounds_per_sec --trajectory BENCH_TRAJECTORY.json --commit "$GITHUB_SHA"
#
# --min-cores N waives the --min floor (but still requires the metric to
# exist) on machines with fewer than N cores — thread speedups need
# threads. Exit codes: 0 pass, 1 bar missed or band regressed,
# 2 usage/schema error.
set -euo pipefail

usage() {
    echo "usage: ci/check_bench.sh <BENCH_*.json> (--key K | --key-prefix P)" >&2
    echo "           [--min X] [--min-cores N]" >&2
    echo "           [--baseline OLD.json] [--tolerance F]" >&2
    echo "           [--trajectory FILE] [--commit SHA]" >&2
    exit 2
}

# Validate flags here so a typo'd invocation fails with usage instead of
# surfacing as a cryptic error from deep inside the binary.
args=("$@")
i=0
while [ $i -lt ${#args[@]} ]; do
    case "${args[$i]}" in
    --key | --key-prefix | --min | --min-cores | --baseline | --tolerance | --trajectory | --commit)
        i=$((i + 2)) # flag + value; a missing value is caught by the binary
        ;;
    --*)
        echo "ci/check_bench.sh: unknown flag ${args[$i]}" >&2
        usage
        ;;
    *)
        i=$((i + 1)) # the metrics-file positional
        ;;
    esac
done

cd "$(dirname "$0")/.."
exec cargo run --release --quiet -p beep-bench --bin check_bench -- "$@"
