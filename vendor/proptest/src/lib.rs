//! Hermetic stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! subset of the proptest API that this repository's property suites use is
//! vendored here: the [`proptest!`] macro (with `#![proptest_config]`),
//! `prop_assert*`, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! [`arbitrary::any`], [`strategy::Just`], range and tuple strategies, and the
//! `prop::{collection, bool, option}` modules.
//!
//! Semantics: each test body runs for `cases` random inputs drawn from the
//! strategies (seeded deterministically per test, so CI runs are
//! reproducible). Unlike real proptest there is no shrinking — a failing
//! case panics with the assertion message directly. Deleting
//! `vendor/proptest` and pointing the workspace dependency at crates.io
//! restores the real crate; call sites do not change.

/// Strategies: composable descriptions of how to generate random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Test-runner configuration and the RNG driving the generators.
pub mod test_runner {
    /// The RNG that drives strategy sampling.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG, seeded from the test's full path so runs
    /// are reproducible and tests are decorrelated from each other.
    #[must_use]
    pub fn rng_for(test_path: &str) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// The `Arbitrary` trait and the [`any`](arbitrary::any) entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::RngExt;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of type `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies: `vec` and `hash_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    // i32 impls exist because bare integer literals (`vec(s, 10)`, `1..8`)
    // fall back to i32 during inference.
    impl From<i32> for SizeRange {
        fn from(exact: i32) -> Self {
            let exact = usize::try_from(exact).expect("negative collection size");
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    macro_rules! impl_size_range_from_ranges {
        ($($t:ty),*) => {$(
            impl From<core::ops::Range<$t>> for SizeRange {
                fn from(r: core::ops::Range<$t>) -> Self {
                    assert!(r.start < r.end, "empty collection size range");
                    let lo = usize::try_from(r.start).expect("negative collection size");
                    let hi = usize::try_from(r.end).expect("negative collection size") - 1;
                    SizeRange { lo, hi }
                }
            }

            impl From<core::ops::RangeInclusive<$t>> for SizeRange {
                fn from(r: core::ops::RangeInclusive<$t>) -> Self {
                    assert!(r.start() <= r.end(), "empty collection size range");
                    let lo = usize::try_from(*r.start()).expect("negative collection size");
                    let hi = usize::try_from(*r.end()).expect("negative collection size");
                    SizeRange { lo, hi }
                }
            }
        )*};
    }

    impl_size_range_from_ranges!(usize, i32);

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates don't grow the set; bound the retries so a
            // small-domain element strategy cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A strategy for `HashSet`s whose size lies in `size` (best effort when
    /// the element domain is small) and whose elements come from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// A fair coin flip.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.random()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Matches real proptest's default: Some three times out of four.
            if rng.random_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// A strategy yielding `None` sometimes and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The items a property test needs, importable in one line.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::bool::ANY`, `prop::option::of`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many random samples.
///
/// Supports an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 0..=8)
    }

    proptest! {
        #[test]
        fn vec_respects_size_and_element_bounds(v in small_vec()) {
            prop_assert!(v.len() <= 8);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_links_dependent_values(
            (len, below) in (1usize..20).prop_flat_map(|n| (Just(n), 0..n)),
        ) {
            prop_assert!(below < len);
        }

        #[test]
        fn tuples_and_any_compose((a, b) in (any::<u64>(), prop::bool::ANY)) {
            // Exercises sampling both tuple components.
            let description = format!("{a}:{b}");
            prop_assert!(description.contains(':'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_is_respected(_x in 0u32..10) {
            // Runs exactly 7 times; failure would show up as a hang or
            // mis-seeded determinism regression in CI timing, and the body
            // asserts nothing — the point is the macro path with a config.
        }
    }

    #[test]
    fn hash_set_strategy_reaches_target_size() {
        use crate::strategy::Strategy;
        let strat = prop::collection::hash_set(0u64..1_000_000, 5..=5);
        let mut rng = crate::test_runner::rng_for("hash_set_target");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng).len(), 5);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        use crate::strategy::Strategy;
        let strat = prop::option::of(0u32..100);
        let mut rng = crate::test_runner::rng_for("option_of");
        let draws: Vec<_> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    #[test]
    fn rng_for_is_deterministic_and_path_sensitive() {
        use rand::Rng;
        let mut a = crate::test_runner::rng_for("path::one");
        let mut b = crate::test_runner::rng_for("path::one");
        let mut c = crate::test_runner::rng_for("path::two");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
