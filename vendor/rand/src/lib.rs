//! Hermetic stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! subset of the `rand` 0.9 API that this repository uses is vendored here:
//! the [`Rng`] core trait, the [`RngExt`] extension methods
//! (`random`, `random_range`, `random_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::IndexedRandom::choose`]. Deleting `vendor/rand` and pointing the
//! workspace dependency at crates.io restores the real crate; call sites do
//! not change.

/// A source of uniformly random bits.
///
/// Mirrors `rand::RngCore`: everything else is derived from `next_u64`
/// through the blanket [`RngExt`] impl.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
///
/// The stand-in for `rand`'s `StandardUniform` distribution: `rng.random()`
/// resolves its output type through this trait.
pub trait FromRng: Sized {
    /// Draws a uniformly random value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits to a uniform float in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via Lemire's method, with
/// `span == 0` meaning the full 64-bit range.
fn uniform_u64_below<R: Rng + ?Sized>(span: u64, rng: &mut R) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // Span of hi - lo + 1; wraps to 0 for the full domain, which
                // uniform_u64_below treats as "any 64-bit value".
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Convenience sampling methods, available on every [`Rng`].
///
/// Mirrors the method surface that `rand` 0.9 puts on its `Rng` trait.
pub trait RngExt: Rng {
    /// Draws a uniformly random value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A deterministic RNG constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Small, fast, and passes BigCrush; statistical quality is more than
    /// sufficient for simulation randomness. Not cryptographically secure
    /// (neither is use of it anywhere in this workspace).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// One SplitMix64 step (Steele, Lea, Flood 2014), used for seeding.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; remix through
            // SplitMix64 in that (measure-zero) case.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, RngExt};

    /// Uniform selection of one element, by index.
    ///
    /// Mirrors `rand::seq::IndexedRandom` for slices (the only receiver the
    /// workspace uses).
    pub trait IndexedRandom<T> {
        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn random_bool_edge_probabilities_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 zero bytes has probability 2^-104; treat as impossible.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_seed_is_sensitive_to_every_word() {
        let base = [7u8; 32];
        let mut tweaked = base;
        tweaked[31] ^= 1;
        let mut a = StdRng::from_seed(base);
        let mut b = StdRng::from_seed(tweaked);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
