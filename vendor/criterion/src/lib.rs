//! Hermetic stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! subset of the criterion API that this repository's benches use is
//! vendored here: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by
//! `sample_size` timed samples, reporting the per-iteration median and
//! spread to stdout. There are no plots, baselines, or statistical
//! regression tests; the goal is that `cargo bench` produces useful
//! wall-clock numbers and `cargo bench --no-run` keeps the perf surface
//! compiling. Deleting `vendor/criterion` and pointing the workspace
//! dependency at crates.io restores the real crate; call sites do not
//! change.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Hint for how expensive `iter_batched` setup output is to hold in memory.
///
/// The stand-in runs one setup per timed routine call regardless, so the
/// variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; real criterion batches many per allocation.
    SmallInput,
    /// Routine input is large; real criterion batches few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and the lazy parts of the routine).
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{label:<60} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }

    /// Benchmarks `f` under `name` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&name.into());
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group. (Reports are printed eagerly; this is for API parity.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
///
/// Supports both the positional form `criterion_group!(name, target, ...)`
/// and the configured form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        // One warm-up call plus three timed samples.
        assert_eq!(runs, 4);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(smoke_positional, sample_bench);

    criterion_group! {
        name = smoke_configured;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn groups_run_their_targets() {
        smoke_positional();
        smoke_configured();
    }

    #[test]
    fn bench_function_without_group_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut hits = 0u32;
        c.bench_function("direct", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 3);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
