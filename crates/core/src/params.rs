//! Simulation constants: the paper's `c_ε`, in theory and calibrated
//! profiles, and the per-round code bundle they induce.

use crate::error::SimError;
use beep_codes::{BeepCode, BeepCodeParams, CombinedCode, DistanceCode, DistanceCodeParams};

/// The paper's Section 3 requirement on `c_ε`, as the maximum of every
/// constraint collected across Lemmas 8–10:
///
/// * Lemma 9: `c_ε ≥ 60/(1−2ε)`, `c_ε ≥ 54/((1−2ε)²ε) + 5`,
///   `c_ε ≥ (6/ε)·(1/(4ε) − 1/2)⁻²`;
/// * Lemma 10: `c_ε ≥ 30/(ε(1−2ε))`,
///   `c_ε ≥ 6·((1−ε)(1−2ε)/(ε(7−2ε)))⁻²`;
/// * Lemma 6 (distance code at rate `c_ε²` and `δ = 1/3`):
///   `c_ε² ≥ 12(1−2·1/3)⁻² = 108`.
///
/// These constants come from closing Chernoff/union bounds for *all* `n`
/// simultaneously; they are intentionally conservative. For `ε = 0.05` the
/// bound is ≈ 16,667 — correct, and unusable for actual simulation, which
/// is why [`SimulationParams::calibrated`] exists (DESIGN.md §3).
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 0.5)`.
#[must_use]
pub fn theory_expansion(epsilon: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 0.5,
        "theory constants are defined for ε ∈ (0, 1/2), got {epsilon}"
    );
    let e = epsilon;
    let one_minus = 1.0 - 2.0 * e;
    let candidates = [
        60.0 / one_minus,
        54.0 / (one_minus * one_minus * e) + 5.0,
        (6.0 / e) * (1.0 / (4.0 * e) - 0.5).powi(-2),
        30.0 / (e * one_minus),
        6.0 * ((1.0 - e) * one_minus / (e * (7.0 - 2.0 * e))).powi(-2),
        108.0f64.sqrt(),
    ];
    candidates.into_iter().fold(0.0f64, f64::max).ceil() as usize
}

/// All constants of one simulation configuration.
///
/// The construction is parameterized by a single expansion constant
/// `c_ε` exactly as in the paper (Section 3):
///
/// * beep code: `a = c_ε·B` input bits, `k = Δ+1`, expansion `c_ε`
///   → length `c_ε³·(Δ+1)·B`, weight `c_ε²·B`;
/// * distance code: `B`-bit messages at length `c_ε²·B` (= beep weight);
/// * decoding thresholds: `(2ε+1)/4 · weight` (phase 1) and
///   nearest-codeword (phase 2),
///
/// where `B` is the model's message width (the paper's `γ·log n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationParams {
    /// Channel noise rate the thresholds are derived for (0 = noiseless).
    pub epsilon: f64,
    /// The expansion constant `c_ε`.
    pub expansion: usize,
    /// Seed of the shared public codes (all nodes must agree on it).
    pub code_seed: u64,
    /// Random decoy codewords scored per decode, estimating the
    /// false-positive events of Lemmas 8–9 on the fly (see DESIGN.md §3,
    /// substitution 2). 0 disables decoys.
    pub decoys: usize,
}

impl SimulationParams {
    /// The paper's proof-faithful constants for noise rate `epsilon`.
    /// Astronomically conservative — use only at toy scales (tests do).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 0.5)`.
    #[must_use]
    pub fn theory(epsilon: f64) -> Self {
        SimulationParams {
            epsilon,
            expansion: theory_expansion(epsilon),
            code_seed: 0,
            decoys: 4,
        }
    }

    /// Empirically calibrated constants: `c_ε = 3` for `ε ≤ 0.1`, growing
    /// with noise (experiment E3 sweeps the working region; these sit
    /// safely inside it at the scales the workspace simulates, failing at
    /// rates ≪ 1 per simulated round).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 0.5)`.
    #[must_use]
    pub fn calibrated(epsilon: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&epsilon),
            "ε = {epsilon} outside [0, 1/2)"
        );
        let expansion = if epsilon <= 0.1 {
            3
        } else if epsilon <= 0.25 {
            4
        } else if epsilon <= 0.35 {
            6
        } else {
            10
        };
        SimulationParams {
            epsilon,
            expansion,
            code_seed: 0,
            decoys: 4,
        }
    }

    /// Sets the shared code seed (builder style).
    #[must_use]
    pub fn with_code_seed(mut self, seed: u64) -> Self {
        self.code_seed = seed;
        self
    }

    /// Sets the decoy count (builder style).
    #[must_use]
    pub fn with_decoys(mut self, decoys: usize) -> Self {
        self.decoys = decoys;
        self
    }

    /// Builds the code bundle for message width `B` and maximum degree `Δ`.
    ///
    /// # Errors
    ///
    /// Propagates [`beep_codes::CodeError`] if the implied parameters are
    /// invalid (e.g. overflowing lengths).
    pub fn codes_for(
        &self,
        message_bits: usize,
        max_degree: usize,
    ) -> Result<RoundCodes, SimError> {
        let c = self.expansion;
        let beep_params = BeepCodeParams::new(c * message_bits, max_degree + 1, c)?;
        let beep = BeepCode::with_seed(beep_params, self.code_seed);
        let dist_params = DistanceCodeParams::with_length(message_bits, beep_params.weight())?;
        let distance = DistanceCode::with_seed(dist_params, self.code_seed);
        let combined = CombinedCode::new(beep.clone(), distance.clone())?;
        Ok(RoundCodes {
            beep,
            distance,
            combined,
        })
    }

    /// Beep rounds per simulated Broadcast CONGEST round:
    /// `2·c_ε³·(Δ+1)·B` (two phases of one beep-code length each).
    /// This is the paper's `O(Δ log n)` overhead with the constant spelled
    /// out.
    #[must_use]
    pub fn rounds_per_broadcast_round(&self, message_bits: usize, max_degree: usize) -> usize {
        let c = self.expansion;
        2 * c * c * c * (max_degree + 1) * message_bits
    }
}

/// The shared public codes of one configuration: the beep code `C`, the
/// distance code `D`, and their combination `CD` (Notation 7).
#[derive(Debug, Clone)]
pub struct RoundCodes {
    /// The `(c_ε·B, Δ+1, 1/c_ε)`-beep code `C`.
    pub beep: BeepCode,
    /// The `(B, 1/3)`-distance code `D` of length = beep weight.
    pub distance: DistanceCode,
    /// The combined code `CD`.
    pub combined: CombinedCode,
}

impl RoundCodes {
    /// The number of beep rounds one phase occupies (= beep-code length).
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.beep.params().length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theory_expansion_is_monotone_extreme() {
        // Mid-range noise has the mildest constants; both extremes blow up.
        let mid = theory_expansion(0.25);
        assert!(mid >= 108f64.sqrt() as usize);
        assert!(theory_expansion(0.01) > mid);
        assert!(theory_expansion(0.49) > mid);
        // ε = 0.05 is in the hundreds-to-thousands range — the reason the
        // calibrated profile exists.
        assert!(theory_expansion(0.05) > 500);
    }

    #[test]
    #[should_panic(expected = "ε ∈ (0, 1/2)")]
    fn theory_rejects_zero_noise() {
        let _ = theory_expansion(0.0);
    }

    #[test]
    fn calibrated_grows_with_noise() {
        let c1 = SimulationParams::calibrated(0.0).expansion;
        let c2 = SimulationParams::calibrated(0.2).expansion;
        let c3 = SimulationParams::calibrated(0.4).expansion;
        assert!(c1 <= c2 && c2 <= c3);
        assert!(c1 >= 3, "phase-1 decoding needs real expansion");
    }

    #[test]
    fn codes_have_paper_shapes() {
        // B = 16, Δ = 4, c = 3: a = 48, length = 27·5·16 = 2160,
        // weight = 9·16 = 144, distance code length 144.
        let p = SimulationParams::calibrated(0.05);
        let codes = p.codes_for(16, 4).unwrap();
        assert_eq!(codes.beep.params().input_bits(), 48);
        assert_eq!(codes.beep.params().length(), 2160);
        assert_eq!(codes.beep.params().weight(), 144);
        assert_eq!(codes.distance.params().length(), 144);
        assert_eq!(codes.distance.params().message_bits(), 16);
        assert_eq!(codes.phase_len(), 2160);
        assert_eq!(p.rounds_per_broadcast_round(16, 4), 2 * 2160);
    }

    #[test]
    fn builders_apply() {
        let p = SimulationParams::calibrated(0.1)
            .with_code_seed(9)
            .with_decoys(12);
        assert_eq!(p.code_seed, 9);
        assert_eq!(p.decoys, 12);
    }

    #[test]
    fn overhead_is_linear_in_delta_and_message_bits() {
        let p = SimulationParams::calibrated(0.05);
        let base = p.rounds_per_broadcast_round(16, 4);
        assert_eq!(p.rounds_per_broadcast_round(32, 4), 2 * base);
        // (Δ+1) scaling: 9+1 vs 4+1.
        assert_eq!(p.rounds_per_broadcast_round(16, 9), 2 * base);
    }
}
