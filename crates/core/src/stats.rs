//! Decoding-quality statistics for simulated rounds.

/// Decode-event counts for one (or an aggregate of) simulated Broadcast
/// CONGEST round(s).
///
/// These are exactly the error events of Section 4:
///
/// * a **false negative** is a neighbor's codeword missing from the decoded
///   set `R̃_v` (the second bad event of Lemma 9);
/// * a **false positive** is a non-neighbor codeword appearing in `R̃_v`
///   (the first bad event of Lemma 9); decoys estimate the same event over
///   the full `2^a` input space;
/// * a **message error** is a correctly detected neighbor whose phase-2
///   message decoded wrongly (the bad event of Lemma 10).
///
/// A round with zero events delivers exactly what direct Broadcast CONGEST
/// would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Simulated Broadcast CONGEST rounds aggregated in this value.
    pub rounds: usize,
    /// Nodes that transmitted (had a message), summed over rounds.
    pub transmitters: usize,
    /// Neighbor codewords wrongly rejected in phase-1 decoding.
    pub false_negatives: usize,
    /// Non-neighbor transmitter codewords wrongly accepted.
    pub false_positives: usize,
    /// Fresh random decoy codewords scored.
    pub decoys_scored: usize,
    /// Decoy codewords wrongly accepted.
    pub decoy_acceptances: usize,
    /// Accepted neighbors whose message decoded incorrectly.
    pub message_errors: usize,
    /// Rounds whose delivery differed from ideal Broadcast CONGEST
    /// delivery at one or more nodes.
    pub imperfect_rounds: usize,
}

impl RoundStats {
    /// Whether every aggregated round delivered perfectly.
    #[must_use]
    pub fn all_perfect(&self) -> bool {
        self.imperfect_rounds == 0
    }

    /// Empirical decoy false-positive rate (`NaN` if no decoys scored).
    #[must_use]
    pub fn decoy_fp_rate(&self) -> f64 {
        self.decoy_acceptances as f64 / self.decoys_scored as f64
    }

    /// Folds another stats value into this one.
    pub fn merge(&mut self, other: &RoundStats) {
        self.rounds += other.rounds;
        self.transmitters += other.transmitters;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        self.decoys_scored += other.decoys_scored;
        self.decoy_acceptances += other.decoy_acceptances;
        self.message_errors += other.message_errors;
        self.imperfect_rounds += other.imperfect_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = RoundStats {
            rounds: 1,
            transmitters: 5,
            false_negatives: 1,
            false_positives: 2,
            decoys_scored: 10,
            decoy_acceptances: 1,
            message_errors: 3,
            imperfect_rounds: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.transmitters, 10);
        assert_eq!(a.false_negatives, 2);
        assert_eq!(a.false_positives, 4);
        assert_eq!(a.decoys_scored, 20);
        assert_eq!(a.decoy_acceptances, 2);
        assert_eq!(a.message_errors, 6);
        assert_eq!(a.imperfect_rounds, 2);
        assert!(!a.all_perfect());
        assert!((a.decoy_fp_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn default_is_perfect() {
        assert!(RoundStats::default().all_perfect());
    }
}
