//! Error type for the simulation layer.

use std::error::Error;
use std::fmt;

/// Errors from constructing or running the beeping simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Code construction failed (propagated parameter problem).
    Code(beep_codes::CodeError),
    /// The model layer reported an error (message width, node count, …).
    Congest(beep_congest::CongestError),
    /// The network layer reported an error.
    Net(beep_net::NetError),
    /// The simulation's noise setting disagrees with the network's channel.
    NoiseMismatch {
        /// ε the simulator's thresholds were derived for.
        params_epsilon: f64,
        /// ε of the network's channel.
        network_epsilon: f64,
    },
    /// The outgoing-message slice length did not match the node count.
    OutgoingCount {
        /// Expected (= node count).
        expected: usize,
        /// Provided.
        actual: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Code(e) => write!(f, "code construction: {e}"),
            SimError::Congest(e) => write!(f, "model layer: {e}"),
            SimError::Net(e) => write!(f, "network layer: {e}"),
            SimError::NoiseMismatch { params_epsilon, network_epsilon } => write!(
                f,
                "simulator calibrated for ε = {params_epsilon} but channel has ε = {network_epsilon}"
            ),
            SimError::OutgoingCount { expected, actual } => {
                write!(f, "got {actual} outgoing message slots for {expected} nodes")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Code(e) => Some(e),
            SimError::Congest(e) => Some(e),
            SimError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<beep_codes::CodeError> for SimError {
    fn from(e: beep_codes::CodeError) -> Self {
        SimError::Code(e)
    }
}

impl From<beep_congest::CongestError> for SimError {
    fn from(e: beep_congest::CongestError) -> Self {
        SimError::Congest(e)
    }
}

impl From<beep_net::NetError> for SimError {
    fn from(e: beep_net::NetError) -> Self {
        SimError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e: SimError = beep_codes::CodeError::NoCandidates.into();
        assert!(e.to_string().contains("code construction"));
        assert!(Error::source(&e).is_some());
        let e = SimError::NoiseMismatch {
            params_epsilon: 0.1,
            network_epsilon: 0.2,
        };
        assert!(e.to_string().contains("0.1"));
        assert!(Error::source(&e).is_none());
    }
}
