#![warn(missing_docs)]

//! The primary contribution of "Optimal Message-Passing with Noisy Beeps"
//! (Davies, PODC 2023): simulating message-passing models in the noisy
//! beeping model at optimal overhead.
//!
//! # What this crate provides
//!
//! * [`SimulationParams`] — the constants of the construction, in two
//!   profiles: the paper's proof-driven values
//!   ([`SimulationParams::theory`]) and an empirically calibrated profile
//!   ([`SimulationParams::calibrated`]) usable at laptop scale (see
//!   DESIGN.md §3 on why both exist).
//! * [`BroadcastSimulator`] — **Algorithm 1**: one Broadcast CONGEST round
//!   executed in `2·c_ε³·(Δ+1)·B` rounds of the (noisy or noiseless)
//!   beeping model, i.e. `O(Δ log n)` for `B = γ log n`-bit messages, with
//!   no setup phase.
//! * [`SimulatedBroadcastRunner`] — **Theorem 11**: runs any
//!   [`beep_congest::BroadcastAlgorithm`] end-to-end over a
//!   [`beep_net::BeepNetwork`], round by round.
//! * [`CongestAdapter`] — **Corollary 12**: lifts any
//!   [`beep_congest::CongestAlgorithm`] to Broadcast CONGEST at a `Δ`
//!   factor, for `O(Δ² log n)` total overhead over beeps.
//! * [`baseline`] — the prior-work comparison points: a distance-2-coloring
//!   TDMA simulator in the style of Beauquier et al. \[7\] and
//!   Ashkenazi–Gelles–Leshem \[4\], plus closed-form cost models.
//! * [`lower_bound`] — the Section 5 apparatus: the B-bit Local Broadcast
//!   hard instance and the transcript-counting argument of Lemma 14 /
//!   Theorem 22, run as experiments.
//!
//! # How Algorithm 1 works (one simulated round)
//!
//! 1. Every broadcasting node `v` draws a fresh random string `r_v` and
//!    transmits the beep codeword `C(r_v)` bitwise (beep = 1). Every node
//!    hears the noisy superimposition `x̃_v` of its neighborhood's
//!    codewords and decodes the *set* `R_v = {r_u}` (Lemmas 8–9).
//! 2. Every broadcasting node retransmits, now sending the combined
//!    codeword `CD(r_v, m_v)` — its message `m_v`, protected by a distance
//!    code, written into the 1-positions of `C(r_v)`. Since each neighbor
//!    knows `C(r_u)` from phase 1, it projects what it heard onto those
//!    positions and nearest-codeword-decodes `m_u` (Lemma 10).
//!
//! Nodes with nothing to send stay silent in both phases; their codewords
//! simply never appear in the superimposition.
//!
//! # Example
//!
//! ```
//! use beep_congest::{algorithms::LubyMis, BroadcastAlgorithm};
//! use beep_core::{SimulatedBroadcastRunner, SimulationParams};
//! use beep_net::{topology, Noise};
//!
//! let graph = topology::cycle(8).unwrap();
//! let params = SimulationParams::calibrated(0.05);
//! let bits = LubyMis::required_message_bits(8);
//! let iters = LubyMis::suggested_iterations(8);
//! let runner = SimulatedBroadcastRunner::new(&graph, bits, 42, params, Noise::bernoulli(0.05));
//! let mut nodes: Vec<Box<LubyMis>> = (0..8).map(|_| Box::new(LubyMis::new(iters))).collect();
//! let report = runner.run_to_completion(&mut nodes, LubyMis::rounds_for(iters)).unwrap();
//! // Every Broadcast CONGEST round cost Θ(Δ log n) noisy beep rounds:
//! assert_eq!(report.beep_rounds, report.congest_rounds * report.beep_rounds_per_congest_round);
//! assert!(beep_congest::validate::check_mis(
//!     &graph,
//!     &nodes.iter().map(|a| a.output().unwrap()).collect::<Vec<_>>(),
//! ).is_empty());
//! ```

pub mod baseline;
mod congest_wrap;
mod error;
pub mod lower_bound;
mod params;
mod round_sim;
mod runner;
mod stats;

pub use congest_wrap::CongestAdapter;
pub use error::SimError;
pub use params::{theory_expansion, RoundCodes, SimulationParams};
pub use round_sim::{BroadcastSimulator, RoundOutcome};
pub use runner::{SimReport, SimulatedBroadcastRunner, SimulatedCongestRunner};
pub use stats::RoundStats;
