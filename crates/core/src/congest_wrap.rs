//! Corollary 12: CONGEST over Broadcast CONGEST at a `Δ` factor.
//!
//! "Nodes first broadcast their IDs to all neighbors, and then each CONGEST
//! communication round is simulated in Δ Broadcast CONGEST rounds by having
//! each node v broadcast ⟨ID_u, m_v→u⟩ to its neighbors, for every
//! u ∈ N(v) in arbitrary order." Our wire format carries
//! `⟨dest, sender, payload⟩` so the receiver also learns the port, matching
//! the CONGEST reception interface of `beep-congest`.

use beep_congest::{BroadcastAlgorithm, CongestAlgorithm, Message, MessageWriter, NodeCtx};
use beep_net::NodeId;

/// Adapts a [`CongestAlgorithm`] into a [`BroadcastAlgorithm`].
///
/// Round structure: round 0 is the ID exchange; thereafter each CONGEST
/// round `r` occupies `Δ` broadcast sub-rounds (`Δ` = global maximum
/// degree, a model parameter all nodes know), in which node `v` broadcasts
/// its `j`-th outgoing message of round `r`, addressed by destination id.
///
/// The adapter is itself just a Broadcast CONGEST algorithm, so it runs
/// under the native runner *and* under the beeping simulation — stacking
/// the two yields exactly Corollary 12's `O(Δ² log n)`-overhead CONGEST
/// simulation.
#[derive(Debug)]
pub struct CongestAdapter<A> {
    inner: A,
    delta: usize,
    inner_bits: usize,
    ctx: Option<NodeCtx>,
    /// Outgoing queue for the current CONGEST round.
    pending: Vec<(NodeId, Message)>,
    /// Accumulated inbox for the current CONGEST round.
    inbox: Vec<(NodeId, Message)>,
    /// Whether the ID exchange has happened.
    ids_exchanged: bool,
    /// Set at a CONGEST round boundary once the inner algorithm is done.
    finished: bool,
}

impl<A: CongestAlgorithm> CongestAdapter<A> {
    /// Wraps `inner`. `delta` must be the graph's maximum degree;
    /// `inner_bits` is the CONGEST message width the inner algorithm uses.
    #[must_use]
    pub fn new(inner: A, delta: usize, inner_bits: usize) -> Self {
        CongestAdapter {
            inner,
            delta: delta.max(1),
            inner_bits,
            ctx: None,
            pending: Vec::new(),
            inbox: Vec::new(),
            ids_exchanged: false,
            finished: false,
        }
    }

    /// The broadcast message width the adapter needs: two id fields plus
    /// the inner payload.
    #[must_use]
    pub fn required_message_bits(n: usize, inner_bits: usize) -> usize {
        2 * beep_congest::id_bits_for(n) + inner_bits
    }

    /// Broadcast rounds consumed by `congest_rounds` CONGEST rounds:
    /// `1 + Δ·congest_rounds` (the paper's `O(TΔ)`).
    #[must_use]
    pub fn broadcast_rounds_for(congest_rounds: usize, delta: usize) -> usize {
        1 + delta.max(1) * congest_rounds
    }

    /// Unwraps the inner algorithm (to read its outputs after a run).
    #[must_use]
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Borrows the inner algorithm.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn ctx(&self) -> &NodeCtx {
        self.ctx.as_ref().expect("init() must run before rounds")
    }

    /// Maps a broadcast round number to `(congest_round, sub_round)`;
    /// `None` for the ID round.
    fn schedule(&self, round: usize) -> Option<(usize, usize)> {
        round
            .checked_sub(1)
            .map(|r| (r / self.delta, r % self.delta))
    }
}

impl<A: CongestAlgorithm> BroadcastAlgorithm for CongestAdapter<A> {
    fn init(&mut self, ctx: &NodeCtx) {
        self.ctx = Some(*ctx);
        // The inner algorithm sees the CONGEST message width.
        let inner_ctx = NodeCtx {
            message_bits: self.inner_bits,
            ..*ctx
        };
        self.inner.init(&inner_ctx);
    }

    fn round_message(&mut self, round: usize) -> Option<Message> {
        let ctx = *self.ctx();
        let id_bits = ctx.id_bits();
        if round == 0 {
            // ID exchange round: broadcast ⟨me, me, 0⟩.
            return Some(
                MessageWriter::new()
                    .push_uint(ctx.node as u64, id_bits)
                    .push_uint(ctx.node as u64, id_bits)
                    .finish(ctx.message_bits),
            );
        }
        let (congest_round, sub) = self.schedule(round).expect("round ≥ 1");
        if sub == 0 {
            // New CONGEST round: collect the inner algorithm's messages.
            self.pending = if self.inner.is_done() {
                Vec::new()
            } else {
                self.inner.round_messages(congest_round)
            };
            assert!(
                self.pending.len() <= self.delta,
                "CONGEST node emitted {} messages but Δ = {}",
                self.pending.len(),
                self.delta
            );
            self.inbox.clear();
        }
        let (dest, msg) = self.pending.get(sub)?.clone();
        assert_eq!(
            msg.len(),
            self.inner_bits,
            "inner CONGEST message width mismatch"
        );
        let payload = msg.to_bitvec();
        let mut w = MessageWriter::new();
        w.push_uint(dest as u64, id_bits);
        w.push_uint(ctx.node as u64, id_bits);
        for i in 0..self.inner_bits {
            w.push_bit(payload.get(i));
        }
        Some(w.finish(ctx.message_bits))
    }

    fn on_receive(&mut self, round: usize, received: &[Message]) {
        let ctx = *self.ctx();
        let id_bits = ctx.id_bits();
        if round == 0 {
            self.ids_exchanged = true;
            return;
        }
        let (congest_round, sub) = self.schedule(round).expect("round ≥ 1");
        // Keep messages addressed to us.
        for m in received {
            let mut r = m.reader();
            let dest = r.read_uint(id_bits) as NodeId;
            let sender = r.read_uint(id_bits) as NodeId;
            if dest == ctx.node {
                let payload_bits: Vec<bool> = (0..self.inner_bits).map(|_| r.read_bit()).collect();
                let payload = Message::from_bits(&beep_bits::BitVec::from_bools(&payload_bits));
                self.inbox.push((sender, payload));
            }
        }
        // Last sub-round: deliver the CONGEST round's inbox, then check
        // for termination at the round boundary.
        if sub == self.delta - 1 {
            if !self.inner.is_done() {
                let mut inbox = std::mem::take(&mut self.inbox);
                inbox.sort_unstable();
                self.inner.on_receive(congest_round, &inbox);
            }
            if self.inner.is_done() {
                self.finished = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.ids_exchanged && self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_congest::{BroadcastRunner, CongestRunner};
    use beep_net::topology;

    /// A CONGEST echo protocol: in round 0 every node sends its id+100 to
    /// each neighbor; in round 1 it replies to each sender with
    /// (received value + 1); then done. Exercises addressed delivery both
    /// natively and through the adapter.
    #[derive(Debug, Clone)]
    struct Echo {
        ctx: Option<NodeCtx>,
        got_round0: Vec<(NodeId, u64)>,
        got_round1: Vec<(NodeId, u64)>,
        done: bool,
    }
    impl Echo {
        fn new() -> Self {
            Echo {
                ctx: None,
                got_round0: Vec::new(),
                got_round1: Vec::new(),
                done: false,
            }
        }
    }
    impl CongestAlgorithm for Echo {
        fn init(&mut self, ctx: &NodeCtx) {
            self.ctx = Some(*ctx);
        }
        fn round_messages(&mut self, round: usize) -> Vec<(NodeId, Message)> {
            let ctx = self.ctx.as_ref().unwrap();
            match round {
                0 => {
                    // Send to each neighbor; on a path those are me±1.
                    let me = ctx.node;
                    [me.wrapping_sub(1), me + 1]
                        .into_iter()
                        .filter(|&u| u < ctx.n && u != me)
                        .map(|u| {
                            (
                                u,
                                MessageWriter::new()
                                    .push_uint(me as u64 + 100, 16)
                                    .finish(ctx.message_bits),
                            )
                        })
                        .collect()
                }
                1 => self
                    .got_round0
                    .iter()
                    .map(|&(from, val)| {
                        (
                            from,
                            MessageWriter::new()
                                .push_uint(val + 1, 16)
                                .finish(self.ctx.as_ref().unwrap().message_bits),
                        )
                    })
                    .collect(),
                _ => Vec::new(),
            }
        }
        fn on_receive(&mut self, round: usize, received: &[(NodeId, Message)]) {
            let vals: Vec<(NodeId, u64)> = received
                .iter()
                .map(|(from, m)| (*from, m.reader().read_uint(16)))
                .collect();
            match round {
                0 => self.got_round0 = vals,
                1 => {
                    self.got_round1 = vals;
                    self.done = true;
                }
                _ => {}
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn expected_round1(v: usize, n: usize) -> Vec<(NodeId, u64)> {
        // Node v sent v+100 to neighbors; each echoes back v+101.
        let mut out: Vec<(NodeId, u64)> = [v.wrapping_sub(1), v + 1]
            .into_iter()
            .filter(|&u| u < n && u != v)
            .map(|u| (u, v as u64 + 101))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn adapter_matches_native_congest() {
        let g = topology::path(5).unwrap();
        let n = g.node_count();
        let inner_bits = 16;

        // Native CONGEST run.
        let native_runner = CongestRunner::new(&g, inner_bits, 3);
        let mut native: Vec<Box<Echo>> = (0..n).map(|_| Box::new(Echo::new())).collect();
        native_runner.run_to_completion(&mut native, 10).unwrap();

        // Adapter over native Broadcast CONGEST.
        let delta = g.max_degree();
        let wrapper_bits = CongestAdapter::<Echo>::required_message_bits(n, inner_bits);
        let broadcast_runner = BroadcastRunner::new(&g, wrapper_bits, 3);
        let mut adapted: Vec<Box<CongestAdapter<Echo>>> = (0..n)
            .map(|_| Box::new(CongestAdapter::new(Echo::new(), delta, inner_bits)))
            .collect();
        broadcast_runner
            .run_to_completion(
                &mut adapted,
                CongestAdapter::<Echo>::broadcast_rounds_for(10, delta),
            )
            .unwrap();

        for v in 0..n {
            assert_eq!(
                native[v].got_round0,
                adapted[v].inner().got_round0,
                "round-0 inbox of node {v}"
            );
            assert_eq!(
                native[v].got_round1,
                adapted[v].inner().got_round1,
                "round-1 inbox of node {v}"
            );
            assert_eq!(native[v].got_round1, expected_round1(v, n), "node {v} echo");
        }
    }

    #[test]
    fn broadcast_round_accounting() {
        // T CONGEST rounds cost 1 + Δ·T broadcast rounds.
        let g = topology::path(4).unwrap();
        let n = g.node_count();
        let inner_bits = 16;
        let delta = g.max_degree();
        let wrapper_bits = CongestAdapter::<Echo>::required_message_bits(n, inner_bits);
        let runner = BroadcastRunner::new(&g, wrapper_bits, 3);
        let mut adapted: Vec<Box<CongestAdapter<Echo>>> = (0..n)
            .map(|_| Box::new(CongestAdapter::new(Echo::new(), delta, inner_bits)))
            .collect();
        let report = runner.run_to_completion(&mut adapted, 100).unwrap();
        // Echo needs 2 CONGEST rounds → 1 + 2Δ broadcast rounds.
        assert_eq!(report.rounds, 1 + 2 * delta);
    }

    #[test]
    fn required_bits_formula() {
        // n = 100 → id fields of 7 bits each.
        assert_eq!(
            CongestAdapter::<Echo>::required_message_bits(100, 20),
            14 + 20
        );
        assert_eq!(CongestAdapter::<Echo>::broadcast_rounds_for(5, 4), 21);
    }
}
