//! Algorithm 1: simulating one Broadcast CONGEST round over noisy beeps.

use crate::error::SimError;
use crate::params::{RoundCodes, SimulationParams};
use crate::stats::RoundStats;
use beep_bits::BitVec;
use beep_codes::{MessageDecoder, SetDecoder};
use beep_congest::{CongestError, Message};
use beep_net::BeepNetwork;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Draws a uniform `a_bits`-bit string not contained in `avoid`.
///
/// The paper draws `r_v` (and models decoys) uniformly and relies on
/// distinctness holding w.h.p. because `a = c·B = Θ(log n)`. At the toy
/// scales the test suites simulate, `{0,1}^a` is small enough for uniform
/// draws to collide with noticeable probability, so distinctness is
/// enforced by resampling — bounded, in case the space is nearly
/// saturated, in which case the last draw is returned as-is.
fn sample_avoiding(a_bits: usize, avoid: &HashSet<BitVec>, rng: &mut StdRng) -> BitVec {
    let mut r = BitVec::random_uniform(a_bits, rng);
    for _ in 0..64 {
        if !avoid.contains(&r) {
            break;
        }
        r = BitVec::random_uniform(a_bits, rng);
    }
    r
}

/// The Algorithm 1 round simulator: holds the shared public codes and
/// executes one Broadcast CONGEST communication round on a
/// [`BeepNetwork`].
///
/// Stateless across rounds (each round draws fresh `r_v`), so one instance
/// serves an entire simulated execution — the paper's "no setup cost".
#[derive(Debug)]
pub struct BroadcastSimulator {
    params: SimulationParams,
    codes: RoundCodes,
    message_bits: usize,
}

/// What one simulated round delivered.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Per-node sorted multiset of decoded neighbor messages — the same
    /// shape the native Broadcast CONGEST runner delivers.
    pub delivered: Vec<Vec<Message>>,
    /// Decode-event statistics for the round.
    pub stats: RoundStats,
}

impl BroadcastSimulator {
    /// Builds the simulator for message width `B` (the paper's `γ log n`)
    /// and maximum degree `Δ`.
    ///
    /// # Errors
    ///
    /// Propagates code-construction failures.
    pub fn new(
        params: SimulationParams,
        message_bits: usize,
        max_degree: usize,
    ) -> Result<Self, SimError> {
        let codes = params.codes_for(message_bits, max_degree)?;
        Ok(BroadcastSimulator {
            params,
            codes,
            message_bits,
        })
    }

    /// The shared code bundle.
    #[must_use]
    pub fn codes(&self) -> &RoundCodes {
        &self.codes
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> SimulationParams {
        self.params
    }

    /// Beep rounds one simulated round occupies (both phases).
    #[must_use]
    pub fn rounds_per_congest_round(&self) -> usize {
        2 * self.codes.phase_len()
    }

    /// Executes Algorithm 1 once: simulates a single Broadcast CONGEST
    /// communication round in which node `v` broadcasts `outgoing[v]`
    /// (`None` = stays silent both phases).
    ///
    /// `rng` drives the per-node random strings `r_v` and the decoy draws;
    /// channel noise comes from the network's own seeded RNG.
    ///
    /// # Errors
    ///
    /// * [`SimError::OutgoingCount`] if `outgoing.len()` ≠ node count.
    /// * [`SimError::Congest`] with [`CongestError::MessageWidth`] if a
    ///   message is not exactly `B` bits.
    /// * [`SimError::NoiseMismatch`] if the network's `ε` differs from the
    ///   simulator's.
    pub fn simulate_round(
        &self,
        net: &mut BeepNetwork,
        outgoing: &[Option<Message>],
        rng: &mut StdRng,
    ) -> Result<RoundOutcome, SimError> {
        let n = net.graph().node_count();
        if outgoing.len() != n {
            return Err(SimError::OutgoingCount {
                expected: n,
                actual: outgoing.len(),
            });
        }
        let net_eps = net.noise().epsilon();
        if (net_eps - self.params.epsilon).abs() > 1e-9 {
            return Err(SimError::NoiseMismatch {
                params_epsilon: self.params.epsilon,
                network_epsilon: net_eps,
            });
        }
        for (v, msg) in outgoing.iter().enumerate() {
            if let Some(m) = msg {
                if m.len() != self.message_bits {
                    return Err(CongestError::MessageWidth {
                        expected: self.message_bits,
                        actual: m.len(),
                        node: v,
                    }
                    .into());
                }
            }
        }

        // --- Transmit side: draw r_v, build both frames. Colliding r_v
        // draws would make two transmitters share a carrier codeword and
        // garble both phase-2 payloads, so draws avoid each other (see
        // `sample_avoiding`).
        let a_bits = self.codes.beep.params().input_bits();
        let mut drawn: HashSet<BitVec> = HashSet::new();
        let mut inputs: Vec<Option<BitVec>> = Vec::with_capacity(n);
        let mut phase1_frames: Vec<Option<BitVec>> = Vec::with_capacity(n);
        let mut phase2_frames: Vec<Option<BitVec>> = Vec::with_capacity(n);
        for msg in outgoing {
            match msg {
                Some(m) => {
                    let r = sample_avoiding(a_bits, &drawn, rng);
                    drawn.insert(r.clone());
                    let carrier = self.codes.beep.encode(&r);
                    let payload = self.codes.distance.encode(&m.to_bitvec());
                    let combined = beep_codes::CombinedCode::combine(&carrier, &payload)
                        .expect("carrier weight = payload length by construction");
                    inputs.push(Some(r));
                    phase1_frames.push(Some(carrier));
                    phase2_frames.push(Some(combined));
                }
                None => {
                    inputs.push(None);
                    phase1_frames.push(None);
                    phase2_frames.push(None);
                }
            }
        }

        // --- Run both phases on the network, bit-round by bit-round,
        // through the reuse-buffer frame API (one allocation per phase
        // output; the engine reuses its per-round scratch internally).
        let mut heard1 = Vec::new();
        let mut heard2 = Vec::new();
        self.run_phase(net, &phase1_frames, &mut heard1)?;
        self.run_phase(net, &phase2_frames, &mut heard2)?;

        // --- Decode at every node.
        self.decode_all(net, outgoing, &inputs, &drawn, &heard1, &heard2, rng)
    }

    /// Transmits one frame per node (None = listen throughout), writing
    /// what every node heard, bit by bit, into `heard`.
    ///
    /// Runs on the engine's cache-blocked batched frame kernel via the
    /// reuse-buffer variant (byte-identical to the round-by-round driver,
    /// but the adjacency is touched once per block instead of once per
    /// round); the explicit length keeps an all-silent phase occupying its
    /// `phase_len()` rounds in the paper's accounting.
    fn run_phase(
        &self,
        net: &mut BeepNetwork,
        frames: &[Option<BitVec>],
        heard: &mut Vec<BitVec>,
    ) -> Result<(), SimError> {
        net.run_frames_batched_into(frames, self.codes.phase_len(), heard)?;
        Ok(())
    }

    /// The Section 4 decoder at every node, with candidate + decoy scoring
    /// (DESIGN.md §3, substitution 2).
    #[allow(clippy::too_many_arguments)]
    fn decode_all(
        &self,
        net: &BeepNetwork,
        outgoing: &[Option<Message>],
        inputs: &[Option<BitVec>],
        transmitted: &HashSet<BitVec>,
        heard1: &[BitVec],
        heard2: &[BitVec],
        rng: &mut StdRng,
    ) -> Result<RoundOutcome, SimError> {
        let n = outgoing.len();
        let graph = net.graph();
        let set_decoder = SetDecoder::new(&self.codes.beep, self.params.epsilon);
        let msg_decoder = MessageDecoder::new(&self.codes.distance);

        // Global candidate pool: every transmitter's (r, C(r), m).
        struct Candidate {
            node: usize,
            codeword: BitVec,
        }
        let mut candidates = Vec::new();
        for (v, input) in inputs.iter().enumerate() {
            if let Some(r) = input {
                candidates.push(Candidate {
                    node: v,
                    codeword: self.codes.beep.encode(r),
                });
            }
        }
        // Message candidates for phase-2 nearest-codeword decoding.
        let mut message_pool: Vec<BitVec> =
            outgoing.iter().flatten().map(Message::to_bitvec).collect();
        message_pool.sort_unstable_by_key(|b: &BitVec| b.to_string());
        message_pool.dedup();
        // Shared decoys: fresh random inputs (≡ non-transmitted codewords)
        // and fresh random messages. A decoy colliding with a genuinely
        // transmitted r_v would probe the decoder's true-positive path, not
        // the Lemma 8/9 false-positive event, so decoys avoid the
        // transmitted set (see `sample_avoiding`).
        let a_bits = self.codes.beep.params().input_bits();
        let decoy_codewords: Vec<BitVec> = (0..self.params.decoys)
            .map(|_| {
                let decoy_input = sample_avoiding(a_bits, transmitted, rng);
                self.codes.beep.encode(&decoy_input)
            })
            .collect();
        for _ in 0..self.params.decoys {
            message_pool.push(BitVec::random_uniform(self.message_bits, rng));
        }

        let mut stats = RoundStats {
            rounds: 1,
            ..RoundStats::default()
        };
        stats.transmitters = candidates.len();
        let mut delivered: Vec<Vec<Message>> = Vec::with_capacity(n);

        for v in 0..n {
            let mut inbox: Vec<Message> = Vec::new();
            for cand in &candidates {
                if cand.node == v {
                    // A node need not decode itself (it knows its message).
                    continue;
                }
                let accepted = set_decoder.accepts_codeword(&cand.codeword, &heard1[v]);
                let is_neighbor = graph.has_edge(v, cand.node);
                match (is_neighbor, accepted) {
                    (true, false) => {
                        stats.false_negatives += 1;
                        continue;
                    }
                    (false, false) => continue,
                    (false, true) => stats.false_positives += 1,
                    (true, true) => {}
                }
                // Phase 2: project ỹ_v onto the accepted codeword's
                // 1-positions and nearest-codeword decode.
                let projected = beep_codes::CombinedCode::project(&heard2[v], &cand.codeword)
                    .expect("heard string has phase length");
                let decoded = msg_decoder
                    .decode_candidates(&projected, message_pool.iter())
                    .expect("message pool is non-empty when a candidate transmitted");
                if is_neighbor {
                    let truth = outgoing[cand.node]
                        .as_ref()
                        .expect("candidates are transmitters")
                        .to_bitvec();
                    if decoded.message != truth {
                        stats.message_errors += 1;
                    }
                }
                inbox.push(Message::from_bits(&decoded.message));
            }
            // Decoys: estimate the Lemma 8/9 false-positive rate over the
            // full input space; accepted decoys deliver spurious messages,
            // exactly as an exhaustive decoder would experience.
            for decoy in &decoy_codewords {
                stats.decoys_scored += 1;
                if set_decoder.accepts_codeword(decoy, &heard1[v]) {
                    stats.decoy_acceptances += 1;
                    let projected = beep_codes::CombinedCode::project(&heard2[v], decoy)
                        .expect("heard string has phase length");
                    if let Ok(decoded) =
                        msg_decoder.decode_candidates(&projected, message_pool.iter())
                    {
                        inbox.push(Message::from_bits(&decoded.message));
                    }
                }
            }
            inbox.sort_unstable();
            // Ideal Broadcast CONGEST delivery, for the perfection check.
            let mut ideal: Vec<Message> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&u| outgoing[u].clone())
                .collect();
            ideal.sort_unstable();
            if inbox != ideal && stats.imperfect_rounds == 0 {
                stats.imperfect_rounds = 1;
            }
            delivered.push(inbox);
        }
        Ok(RoundOutcome { delivered, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_congest::MessageWriter;
    use beep_net::{topology, Noise};
    use rand::SeedableRng;

    const B: usize = 12;

    fn msg(v: u64) -> Message {
        MessageWriter::new().push_uint(v, B).finish(B)
    }

    /// Canonically sorted expectation (Message orders by LSB-first bits,
    /// not numerically).
    fn sorted(mut msgs: Vec<Message>) -> Vec<Message> {
        msgs.sort_unstable();
        msgs
    }

    fn run_one(
        graph: beep_net::Graph,
        noise: Noise,
        params: SimulationParams,
        outgoing: Vec<Option<Message>>,
        seed: u64,
    ) -> (RoundOutcome, usize) {
        let delta = graph.max_degree();
        let sim = BroadcastSimulator::new(params, B, delta).unwrap();
        let mut net = BeepNetwork::new(graph, noise, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let outcome = sim.simulate_round(&mut net, &outgoing, &mut rng).unwrap();
        (outcome, net.stats().rounds)
    }

    #[test]
    fn noiseless_round_delivers_exactly() {
        let graph = topology::path(4).unwrap();
        let outgoing = vec![Some(msg(1)), Some(msg(2)), Some(msg(3)), Some(msg(4))];
        let params = SimulationParams::calibrated(0.0);
        let (outcome, rounds) = run_one(graph, Noise::Noiseless, params, outgoing, 3);
        assert!(outcome.stats.all_perfect(), "{:?}", outcome.stats);
        assert_eq!(outcome.delivered[0], vec![msg(2)]);
        assert_eq!(outcome.delivered[1], sorted(vec![msg(1), msg(3)]));
        assert_eq!(outcome.delivered[2], sorted(vec![msg(2), msg(4)]));
        assert_eq!(outcome.delivered[3], vec![msg(3)]);
        // Exactly 2·phase_len beep rounds were spent.
        let sim = BroadcastSimulator::new(params, B, 2).unwrap();
        assert_eq!(rounds, sim.rounds_per_congest_round());
    }

    #[test]
    fn silent_nodes_send_and_disturb_nothing() {
        let graph = topology::complete(4).unwrap();
        let outgoing = vec![Some(msg(9)), None, None, Some(msg(7))];
        let params = SimulationParams::calibrated(0.0);
        let (outcome, _) = run_one(graph, Noise::Noiseless, params, outgoing, 4);
        assert!(outcome.stats.all_perfect(), "{:?}", outcome.stats);
        assert_eq!(outcome.delivered[0], vec![msg(7)]);
        assert_eq!(outcome.delivered[1], sorted(vec![msg(7), msg(9)]));
        assert_eq!(outcome.delivered[2], sorted(vec![msg(7), msg(9)]));
        assert_eq!(outcome.delivered[3], vec![msg(9)]);
        assert_eq!(outcome.stats.transmitters, 2);
    }

    #[test]
    fn all_silent_round_is_empty() {
        let graph = topology::cycle(5).unwrap();
        let outgoing = vec![None; 5];
        let params = SimulationParams::calibrated(0.0);
        let (outcome, _) = run_one(graph, Noise::Noiseless, params, outgoing, 5);
        assert!(outcome.delivered.iter().all(Vec::is_empty));
        assert!(outcome.stats.all_perfect());
    }

    #[test]
    fn noisy_round_still_delivers_whp() {
        // ε = 0.05 with calibrated constants: a round on a small graph
        // should decode perfectly in the vast majority of trials.
        let params = SimulationParams::calibrated(0.05);
        let mut perfect = 0;
        let trials = 20;
        for seed in 0..trials {
            let graph = topology::cycle(6).unwrap();
            let outgoing = (0..6).map(|v| Some(msg(v as u64 + 1))).collect();
            let (outcome, _) = run_one(graph, Noise::bernoulli(0.05), params, outgoing, seed);
            if outcome.stats.all_perfect() {
                perfect += 1;
            }
        }
        assert!(
            perfect >= trials - 1,
            "only {perfect}/{trials} perfect rounds"
        );
    }

    #[test]
    fn duplicate_messages_are_delivered_per_sender() {
        // Two neighbors sending identical messages must both appear.
        let graph = topology::star(3).unwrap(); // center 0, leaves 1, 2
        let outgoing = vec![None, Some(msg(5)), Some(msg(5))];
        let params = SimulationParams::calibrated(0.0);
        let (outcome, _) = run_one(graph, Noise::Noiseless, params, outgoing, 6);
        assert_eq!(outcome.delivered[0], vec![msg(5), msg(5)]);
    }

    #[test]
    fn rejects_wrong_outgoing_count() {
        let graph = topology::path(3).unwrap();
        let params = SimulationParams::calibrated(0.0);
        let sim = BroadcastSimulator::new(params, B, 2).unwrap();
        let mut net = BeepNetwork::new(graph, Noise::Noiseless, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let err = sim
            .simulate_round(&mut net, &[None, None], &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::OutgoingCount {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn rejects_wrong_message_width() {
        let graph = topology::path(2).unwrap();
        let params = SimulationParams::calibrated(0.0);
        let sim = BroadcastSimulator::new(params, B, 1).unwrap();
        let mut net = BeepNetwork::new(graph, Noise::Noiseless, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let bad = Message::zero(B + 1);
        let err = sim
            .simulate_round(&mut net, &[Some(bad), None], &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Congest(CongestError::MessageWidth { .. })
        ));
    }

    #[test]
    fn rejects_noise_mismatch() {
        let graph = topology::path(2).unwrap();
        let params = SimulationParams::calibrated(0.1);
        let sim = BroadcastSimulator::new(params, B, 1).unwrap();
        let mut net = BeepNetwork::new(graph, Noise::Noiseless, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let err = sim
            .simulate_round(&mut net, &[None, None], &mut rng)
            .unwrap_err();
        assert!(matches!(err, SimError::NoiseMismatch { .. }));
    }

    #[test]
    fn decoys_are_scored_and_rarely_accepted() {
        let graph = topology::complete(5).unwrap();
        let params = SimulationParams::calibrated(0.0).with_decoys(16);
        let outgoing = (0..5).map(|v| Some(msg(v as u64))).collect();
        let (outcome, _) = run_one(graph, Noise::Noiseless, params, outgoing, 8);
        assert_eq!(outcome.stats.decoys_scored, 16 * 5);
        assert_eq!(outcome.stats.decoy_acceptances, 0, "decoy accepted at ε=0");
    }
}
