//! Greedy distance-2 (G²) coloring.

use beep_net::Graph;

/// Colors the square of the graph greedily: any two nodes within distance
/// 2 receive different colors. Uses at most `Δ² + 1` colors (each node has
/// at most `Δ + Δ(Δ−1) = Δ²` distance-≤2 neighbors).
///
/// This is the schedule prior simulations sequence transmissions by; we
/// compute it centrally (see module docs — this only makes the baseline
/// look better).
#[must_use]
pub fn distance2_coloring(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    let mut colors = vec![usize::MAX; n];
    let mut taken = Vec::new();
    for v in 0..n {
        taken.clear();
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX {
                taken.push(colors[u]);
            }
            for &w in graph.neighbors(u) {
                if w != v && colors[w] != usize::MAX {
                    taken.push(colors[w]);
                }
            }
        }
        taken.sort_unstable();
        taken.dedup();
        // Smallest color not taken (mex).
        let mut color = 0;
        for &t in &taken {
            if t == color {
                color += 1;
            } else if t > color {
                break;
            }
        }
        colors[v] = color;
    }
    colors
}

/// Number of distinct colors used by a coloring.
#[must_use]
pub fn num_colors(coloring: &[usize]) -> usize {
    coloring.iter().copied().max().map_or(0, |c| c + 1)
}

/// Checks that a coloring is a proper distance-2 coloring; returns
/// violating pairs (empty = valid).
#[must_use]
pub fn verify_distance2_coloring(graph: &Graph, coloring: &[usize]) -> Vec<(usize, usize)> {
    let mut violations = Vec::new();
    for v in 0..graph.node_count() {
        for &u in graph.neighbors(v) {
            if u > v && coloring[u] == coloring[v] {
                violations.push((v, u));
            }
            for &w in graph.neighbors(u) {
                if w > v && coloring[w] == coloring[v] {
                    violations.push((v, w));
                }
            }
        }
    }
    violations.sort_unstable();
    violations.dedup();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    #[test]
    fn colorings_are_valid_on_assorted_graphs() {
        for (name, g) in [
            ("path", topology::path(20).unwrap()),
            ("cycle", topology::cycle(11).unwrap()),
            ("complete", topology::complete(8).unwrap()),
            ("star", topology::star(9).unwrap()),
            ("grid", topology::grid(5, 6).unwrap()),
            ("bipartite", topology::complete_bipartite(5, 5).unwrap()),
        ] {
            let coloring = distance2_coloring(&g);
            assert!(
                verify_distance2_coloring(&g, &coloring).is_empty(),
                "{name}"
            );
            let delta = g.max_degree();
            assert!(
                num_colors(&coloring) <= delta * delta + 1,
                "{name}: {} colors for Δ = {delta}",
                num_colors(&coloring)
            );
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        // In K_n every pair is at distance 1, so n colors are forced.
        let g = topology::complete(7).unwrap();
        assert_eq!(num_colors(&distance2_coloring(&g)), 7);
    }

    #[test]
    fn star_needs_n_colors() {
        // All leaves are at distance 2 through the hub.
        let g = topology::star(8).unwrap();
        assert_eq!(num_colors(&distance2_coloring(&g)), 8);
    }

    #[test]
    fn path_uses_three_colors() {
        let g = topology::path(10).unwrap();
        assert_eq!(num_colors(&distance2_coloring(&g)), 3);
    }

    #[test]
    fn verifier_catches_violations() {
        let g = topology::path(3).unwrap(); // 0-1-2: all within distance 2
        let bad = vec![0, 1, 0];
        assert_eq!(verify_distance2_coloring(&g, &bad), vec![(0, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = beep_net::Graph::from_edges(0, &[]).unwrap();
        assert_eq!(num_colors(&distance2_coloring(&g)), 0);
    }
}
