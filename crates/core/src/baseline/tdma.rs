//! The TDMA / G²-coloring baseline simulator (in the style of Beauquier et
//! al. \[7\] and Ashkenazi–Gelles–Leshem \[4\]).

use crate::error::SimError;
use crate::round_sim::RoundOutcome;
use crate::stats::RoundStats;
use beep_bits::BitVec;
use beep_congest::{BroadcastAlgorithm, CongestError, Message, NodeCtx};
use beep_net::{BeepNetwork, ChannelModel, Graph};

use super::g2_coloring::{distance2_coloring, num_colors};

/// Simulates Broadcast CONGEST rounds by sequencing transmissions through
/// the color classes of a distance-2 coloring.
///
/// Slot structure per simulated round: for each color `c`, a slot of
/// `(B+1)·ρ` beep rounds in which the nodes of color `c` transmit a
/// presence marker and then their `B` message bits, every bit repeated `ρ`
/// times. Listeners majority-vote each bit. Because the coloring is
/// distance-2, each listener has at most one transmitting neighbor per
/// slot, so bits arrive uncorrupted (up to channel noise).
///
/// Per-round cost: `#colors·(B+1)·ρ`. On dense graphs `#colors =
/// Θ(min{n, Δ²})`, which is exactly the overhead gap to the paper's
/// `Θ(Δ)` (experiment E5). Under noise, `ρ = Θ(log n)` keeps the
/// per-bit majority reliable, mirroring how \[4\] pays for robustness.
///
/// The coloring itself is computed centrally and handed to every node —
/// *free setup* that the real distributed protocols pay `Δ⁶` (\[7\]) or
/// `Δ⁴ log n` (\[4\]) rounds for.
#[derive(Debug)]
pub struct TdmaSimulator {
    coloring: Vec<usize>,
    colors: usize,
    message_bits: usize,
    repetition: usize,
    epsilon: f64,
}

impl TdmaSimulator {
    /// Builds the baseline for a graph and message width under noise rate
    /// `epsilon` (0 = noiseless, repetition 1).
    ///
    /// The repetition factor is chosen so one majority vote fails with
    /// probability below `1/(n·B·#colors·100)` — i.e. a simulated round is
    /// w.h.p. perfect, matching the guarantee Algorithm 1 provides.
    #[must_use]
    pub fn new(graph: &Graph, message_bits: usize, epsilon: f64) -> Self {
        Self::with_coloring(graph, distance2_coloring(graph), message_bits, epsilon)
    }

    /// Builds the baseline from an externally supplied distance-2 coloring
    /// — e.g. one computed *distributedly* by
    /// [`beep_congest::algorithms::Distance2Coloring`], closing the loop on
    /// the baselines' setup phase.
    ///
    /// # Panics
    ///
    /// Panics if the coloring has the wrong length or is not a valid
    /// distance-2 coloring of `graph`.
    #[must_use]
    pub fn with_coloring(
        graph: &Graph,
        coloring: Vec<usize>,
        message_bits: usize,
        epsilon: f64,
    ) -> Self {
        assert_eq!(coloring.len(), graph.node_count(), "one color per node");
        let violations = super::g2_coloring::verify_distance2_coloring(graph, &coloring);
        assert!(
            violations.is_empty(),
            "not a distance-2 coloring: {violations:?}"
        );
        let colors = num_colors(&coloring).max(1);
        let repetition = if epsilon == 0.0 {
            1
        } else {
            // Majority of ρ bits flipped w.p. ε fails w.p. ≤ exp(−2ρ(½−ε)²);
            // solve for the per-round target.
            let n = graph.node_count().max(2) as f64;
            let target: f64 = 1.0 / (n * message_bits as f64 * colors as f64 * 100.0);
            let gap = 0.5 - epsilon;
            ((-target.ln()) / (2.0 * gap * gap)).ceil() as usize | 1 // odd for clean majority
        };
        TdmaSimulator {
            coloring,
            colors,
            message_bits,
            repetition,
            epsilon,
        }
    }

    /// The number of color classes (slots per simulated round).
    #[must_use]
    pub fn colors(&self) -> usize {
        self.colors
    }

    /// The per-bit repetition factor `ρ`.
    #[must_use]
    pub fn repetition(&self) -> usize {
        self.repetition
    }

    /// Beep rounds per simulated Broadcast CONGEST round:
    /// `#colors·(B+1)·ρ`.
    #[must_use]
    pub fn rounds_per_congest_round(&self) -> usize {
        self.colors * (self.message_bits + 1) * self.repetition
    }

    /// Simulates one Broadcast CONGEST round. Same contract as
    /// [`crate::BroadcastSimulator::simulate_round`], minus the decoys
    /// (there is no codeword ambiguity to estimate).
    ///
    /// # Errors
    ///
    /// Mirrors the Algorithm 1 simulator's errors.
    pub fn simulate_round(
        &self,
        net: &mut BeepNetwork,
        outgoing: &[Option<Message>],
    ) -> Result<RoundOutcome, SimError> {
        let n = net.graph().node_count();
        if outgoing.len() != n {
            return Err(SimError::OutgoingCount {
                expected: n,
                actual: outgoing.len(),
            });
        }
        let net_eps = net.noise().epsilon();
        if (net_eps - self.epsilon).abs() > 1e-9 {
            return Err(SimError::NoiseMismatch {
                params_epsilon: self.epsilon,
                network_epsilon: net_eps,
            });
        }
        for (v, msg) in outgoing.iter().enumerate() {
            if let Some(m) = msg {
                if m.len() != self.message_bits {
                    return Err(CongestError::MessageWidth {
                        expected: self.message_bits,
                        actual: m.len(),
                        node: v,
                    }
                    .into());
                }
            }
        }
        // Build per-node frames: slot for its color, presence + bits.
        let slot_len = (self.message_bits + 1) * self.repetition;
        let total = self.colors * slot_len;
        let frames: Vec<Option<BitVec>> = outgoing
            .iter()
            .enumerate()
            .map(|(v, msg)| {
                msg.as_ref().map(|m| {
                    let base = self.coloring[v] * slot_len;
                    let bits = m.to_bitvec();
                    BitVec::from_fn(total, |i| {
                        if i < base || i >= base + slot_len {
                            return false;
                        }
                        let within = (i - base) / self.repetition;
                        // Field 0 is the presence marker, then message bits.
                        within == 0 || bits.get(within - 1)
                    })
                })
            })
            .collect();
        // Drive the network through the cache-blocked batched frame kernel
        // (byte-identical to round-by-round; the explicit length keeps an
        // all-silent round occupying its slots).
        let heard = net.run_frames_batched(&frames, total)?;
        // Decode: per node, per neighbor slot, majority-vote.
        let graph = net.graph();
        let half = self.repetition / 2;
        let mut stats = RoundStats {
            rounds: 1,
            ..RoundStats::default()
        };
        stats.transmitters = outgoing.iter().flatten().count();
        let mut delivered = Vec::with_capacity(n);
        for (v, heard_v) in heard.iter().enumerate() {
            let mut inbox = Vec::new();
            for &u in graph.neighbors(v) {
                let base = self.coloring[u] * slot_len;
                let vote = |field: usize| -> bool {
                    let start = base + field * self.repetition;
                    let ones = (start..start + self.repetition)
                        .filter(|&i| heard_v.get(i))
                        .count();
                    ones > half
                };
                if !vote(0) {
                    if outgoing[u].is_some() {
                        stats.false_negatives += 1;
                    }
                    continue;
                }
                if outgoing[u].is_none() {
                    stats.false_positives += 1;
                }
                let bits: Vec<bool> = (1..=self.message_bits).map(vote).collect();
                let decoded = Message::from_bits(&BitVec::from_bools(&bits));
                if let Some(truth) = &outgoing[u] {
                    if &decoded != truth {
                        stats.message_errors += 1;
                    }
                }
                inbox.push(decoded);
            }
            inbox.sort_unstable();
            let mut ideal: Vec<Message> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&u| outgoing[u].clone())
                .collect();
            ideal.sort_unstable();
            if inbox != ideal && stats.imperfect_rounds == 0 {
                stats.imperfect_rounds = 1;
            }
            delivered.push(inbox);
        }
        Ok(RoundOutcome { delivered, stats })
    }

    /// Runs a full Broadcast CONGEST algorithm under the TDMA baseline —
    /// the counterpart of
    /// [`crate::SimulatedBroadcastRunner::run_to_completion`] for
    /// experiment E7/E10 comparisons.
    ///
    /// # Errors
    ///
    /// Mirrors the Algorithm 1 runner's errors.
    pub fn run_to_completion<A: BroadcastAlgorithm + ?Sized>(
        &self,
        graph: &Graph,
        channel: impl Into<ChannelModel>,
        seed: u64,
        algorithms: &mut [Box<A>],
        max_rounds: usize,
    ) -> Result<crate::SimReport, SimError> {
        let n = graph.node_count();
        if algorithms.len() != n {
            return Err(CongestError::NodeCount {
                expected: n,
                actual: algorithms.len(),
            }
            .into());
        }
        let mut net = BeepNetwork::new(graph.clone(), channel, seed ^ 0x7D7A);
        for (v, algo) in algorithms.iter_mut().enumerate() {
            algo.init(&NodeCtx {
                node: v,
                n,
                degree: graph.degree(v),
                message_bits: self.message_bits,
                seed: seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            });
        }
        let mut stats = RoundStats::default();
        let mut congest_rounds = 0;
        for round in 0..max_rounds {
            if algorithms.iter().all(|a| a.is_done()) {
                break;
            }
            let outgoing: Vec<Option<Message>> = algorithms
                .iter_mut()
                .map(|a| a.round_message(round))
                .collect();
            let outcome = self.simulate_round(&mut net, &outgoing)?;
            for (v, algo) in algorithms.iter_mut().enumerate() {
                algo.on_receive(round, &outcome.delivered[v]);
            }
            stats.merge(&outcome.stats);
            congest_rounds += 1;
        }
        if !algorithms.iter().all(|a| a.is_done()) {
            return Err(CongestError::RoundBudgetExhausted { budget: max_rounds }.into());
        }
        let net_stats = net.stats();
        Ok(crate::SimReport {
            congest_rounds,
            beep_rounds: net_stats.rounds,
            beep_rounds_per_congest_round: self.rounds_per_congest_round(),
            beeps: net_stats.beeps,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_congest::MessageWriter;
    use beep_net::{topology, Noise};

    const B: usize = 10;

    fn msg(v: u64) -> Message {
        MessageWriter::new().push_uint(v, B).finish(B)
    }

    #[test]
    fn noiseless_tdma_delivers_exactly() {
        let g = topology::path(4).unwrap();
        let sim = TdmaSimulator::new(&g, B, 0.0);
        assert_eq!(sim.repetition(), 1);
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 1);
        let outgoing = vec![Some(msg(3)), Some(msg(5)), None, Some(msg(9))];
        let outcome = sim.simulate_round(&mut net, &outgoing).unwrap();
        assert!(outcome.stats.all_perfect(), "{:?}", outcome.stats);
        assert_eq!(outcome.delivered[0], vec![msg(5)]);
        assert_eq!(outcome.delivered[2], {
            let mut v = vec![msg(5), msg(9)];
            v.sort_unstable();
            v
        });
        assert_eq!(net.stats().rounds, sim.rounds_per_congest_round());
    }

    #[test]
    fn noisy_tdma_delivers_whp() {
        let g = topology::cycle(5).unwrap();
        let eps = 0.1;
        let sim = TdmaSimulator::new(&g, B, eps);
        assert!(sim.repetition() > 1);
        let mut perfect = 0;
        for seed in 0..10 {
            let mut net = BeepNetwork::new(g.clone(), Noise::bernoulli(eps), seed);
            let outgoing: Vec<_> = (0..5).map(|v| Some(msg(v as u64 + 1))).collect();
            let outcome = sim.simulate_round(&mut net, &outgoing).unwrap();
            if outcome.stats.all_perfect() {
                perfect += 1;
            }
        }
        assert!(perfect >= 9, "{perfect}/10 perfect");
    }

    #[test]
    fn overhead_scales_with_color_count() {
        // On K_n the coloring needs n colors: overhead Θ(n·B) vs the
        // paper's Θ(Δ·B) = Θ(n·B) here — but on a star the gap shows:
        // star coloring needs n colors while Δ-based cost is Θ(n) too…
        // the crisp case is bounded-degree graphs: a path needs 3 colors.
        let path = topology::path(50).unwrap();
        let sim = TdmaSimulator::new(&path, B, 0.0);
        assert_eq!(sim.colors(), 3);
        assert_eq!(sim.rounds_per_congest_round(), 3 * (B + 1));
        // The complete bipartite K_{6,6}: Δ = 6, but distance-2 coloring
        // needs all 12 colors — the Θ(Δ²) vs Θ(Δ) gap territory.
        let kb = topology::complete_bipartite(6, 6).unwrap();
        let sim = TdmaSimulator::new(&kb, B, 0.0);
        assert_eq!(sim.colors(), 12);
    }

    #[test]
    fn tdma_runs_full_algorithms() {
        use beep_congest::algorithms::Flood;
        let g = topology::path(4).unwrap();
        let sim = TdmaSimulator::new(&g, 16, 0.0);
        let mut algos: Vec<Box<Flood>> =
            (0..4).map(|_| Box::new(Flood::new(0, 0x5A, 16))).collect();
        let report = sim
            .run_to_completion(&g, Noise::Noiseless, 3, &mut algos, 10)
            .unwrap();
        assert!(algos.iter().all(|a| a.output() == Some(0x5A)));
        assert!(report.stats.all_perfect());
        assert_eq!(
            report.beep_rounds,
            report.congest_rounds * report.beep_rounds_per_congest_round
        );
    }

    #[test]
    fn rejects_mismatched_noise() {
        let g = topology::path(2).unwrap();
        let sim = TdmaSimulator::new(&g, B, 0.1);
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        assert!(matches!(
            sim.simulate_round(&mut net, &[None, None]),
            Err(SimError::NoiseMismatch { .. })
        ));
    }
}
