//! Prior-work baselines the paper improves on (Section 1.2).
//!
//! * [`distance2_coloring`] — a centralized greedy coloring of `G²`
//!   (≤ `Δ²+1` colors), the scheduling structure both prior simulations
//!   rely on. The paper's point: *computing* this coloring distributedly is
//!   what costs Beauquier et al. `Δ⁶` and Ashkenazi–Gelles–Leshem
//!   `Δ⁴ log n` setup rounds — Algorithm 1 needs no schedule at all. Our
//!   baseline gets the coloring for free (centralized), so every comparison
//!   in the experiments is *generous to the baseline*.
//! * [`TdmaSimulator`] — a Broadcast CONGEST round simulator in the style
//!   of \[7\]/\[4\]: color classes of `G²` transmit one after another,
//!   bit-by-bit, each bit repeated and majority-voted under noise. Its
//!   per-round cost is `#colors·(B+1)·ρ = Θ(min{n, Δ²}·B·ρ)`, the
//!   `Θ(min{n/Δ, Δ})`-factor gap the paper closes.
//! * the cost-model functions (re-exported here) — closed-form round counts for \[7\], \[4\] and this
//!   paper, used by experiments E5/E11.

mod cost_model;
mod g2_coloring;
mod tdma;

pub use cost_model::{
    agl_broadcast_overhead, agl_congest_overhead, agl_setup, beauquier_per_round, beauquier_setup,
    log_star, matching_beeps_ours, matching_beeps_prior, ours_broadcast_overhead,
    ours_congest_overhead,
};
pub use g2_coloring::{distance2_coloring, num_colors, verify_distance2_coloring};
pub use tdma::TdmaSimulator;
