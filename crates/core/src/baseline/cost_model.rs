//! Closed-form round-cost models for the prior-work comparison
//! (experiments E5 and E11).
//!
//! All counts are in beep-model rounds. Constants inside the prior works'
//! O(·) are unknown, so these models set them to 1 — ratios and crossover
//! *shapes* are meaningful; absolute values are not.

/// Setup cost of Beauquier et al. \[7\]: `Δ⁶` rounds.
#[must_use]
pub fn beauquier_setup(delta: usize) -> f64 {
    (delta as f64).powi(6)
}

/// Per-CONGEST-round cost of Beauquier et al. \[7\]: `Δ⁴·log n`.
#[must_use]
pub fn beauquier_per_round(delta: usize, n: usize) -> f64 {
    (delta as f64).powi(4) * log2(n)
}

/// Setup cost of Ashkenazi–Gelles–Leshem \[4\]: `Δ⁴·log n`.
#[must_use]
pub fn agl_setup(delta: usize, n: usize) -> f64 {
    (delta as f64).powi(4) * log2(n)
}

/// Per-CONGEST-round cost of \[4\]: `Δ·log n·min{n, Δ²}`.
#[must_use]
pub fn agl_congest_overhead(delta: usize, n: usize) -> f64 {
    delta as f64 * log2(n) * (n.min(delta * delta) as f64)
}

/// The Broadcast CONGEST analogue of \[4\]'s TDMA approach:
/// `min{n, Δ²}·log n` (one slot per G² color class, `Θ(log n)` bits).
#[must_use]
pub fn agl_broadcast_overhead(delta: usize, n: usize) -> f64 {
    (n.min(delta * delta) as f64) * log2(n)
}

/// This paper's Broadcast CONGEST overhead with explicit constants:
/// `2·c³·(Δ+1)·B` where `B = γ·log n` message bits.
#[must_use]
pub fn ours_broadcast_overhead(expansion: usize, delta: usize, message_bits: usize) -> f64 {
    2.0 * (expansion as f64).powi(3) * (delta as f64 + 1.0) * message_bits as f64
}

/// This paper's CONGEST overhead: `Δ ×` the Broadcast CONGEST overhead
/// (Corollary 12).
#[must_use]
pub fn ours_congest_overhead(expansion: usize, delta: usize, message_bits: usize) -> f64 {
    delta.max(1) as f64 * ours_broadcast_overhead(expansion, delta, message_bits)
}

/// Total beep rounds for maximal matching via the previous state of the
/// art (Section 6): the `O(Δ + log* n)` CONGEST algorithm of Panconesi &
/// Rizzi \[26\] under \[4\]'s simulation —
/// `O(Δ⁴ log n + Δ³ log n log* n)` plus \[4\]'s setup.
#[must_use]
pub fn matching_beeps_prior(delta: usize, n: usize) -> f64 {
    let d = delta as f64;
    agl_setup(delta, n) + (d + log_star(n as f64)) * agl_congest_overhead(delta, n)
}

/// Total beep rounds for maximal matching via this paper (Theorem 21):
/// `O(log n)` Broadcast CONGEST rounds × `O(Δ log n)` overhead
/// = `O(Δ log² n)`.
#[must_use]
pub fn matching_beeps_ours(delta: usize, n: usize) -> f64 {
    log2(n) * (delta as f64 + 1.0) * log2(n)
}

/// The iterated logarithm `log* x` (base 2): how many times `log₂` must be
/// applied before the value drops to ≤ 1.
#[must_use]
pub fn log_star(mut x: f64) -> f64 {
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
    }
    count as f64
}

fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0.0);
        assert_eq!(log_star(2.0), 1.0);
        assert_eq!(log_star(4.0), 2.0);
        assert_eq!(log_star(16.0), 3.0);
        assert_eq!(log_star(65536.0), 4.0);
    }

    #[test]
    fn ours_beats_agl_by_theta_min_n_over_delta_delta() {
        // The paper's improvement factor Θ(min{n/Δ, Δ}) in the Broadcast
        // CONGEST overhead (up to constants): ratio grows linearly in Δ in
        // the dense-Δ regime.
        let n = 1 << 16;
        let b = 16; // γ log n with γ=1
        let ratio =
            |delta: usize| agl_broadcast_overhead(delta, n) / ours_broadcast_overhead(1, delta, b);
        // With c=1 the model ratio should scale ≈ Δ (for Δ² < n).
        let r8 = ratio(8);
        let r64 = ratio(64);
        assert!(r64 / r8 > 4.0, "ratio growth {} → {}", r8, r64);
    }

    #[test]
    fn matching_improvement_factor_is_large() {
        // Section 6: ≈ Δ³/log n improvement.
        let (delta, n) = (32, 1 << 16);
        let improvement = matching_beeps_prior(delta, n) / matching_beeps_ours(delta, n);
        assert!(improvement > 100.0, "improvement {improvement}");
    }

    #[test]
    fn setup_costs_are_polynomial_in_delta() {
        assert_eq!(beauquier_setup(10), 1e6);
        assert!(agl_setup(10, 1024) < beauquier_setup(10));
        assert!(beauquier_per_round(4, 1024) > 0.0);
    }
}
