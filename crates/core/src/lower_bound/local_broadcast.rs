//! The B-bit Local Broadcast problem (Definition 13) and its Lemma 15
//! upper bounds.

use beep_bits::BitVec;
use beep_congest::{CongestAlgorithm, Message, MessageWriter, NodeCtx};
use beep_net::{topology, Graph, NodeId};
use rand::Rng;
use std::collections::HashMap;

/// An instance of B-bit Local Broadcast on the Lemma 14 hard graph:
/// `K_{Δ,Δ}` (left part `0..Δ`, right part `Δ..2Δ`) padded with isolated
/// vertices to `n` nodes.
///
/// Following the lemma's hard distribution, inputs `m_{v→u}` for left `v`
/// are uniform random `B`-bit strings and all other inputs are zero.
#[derive(Debug, Clone)]
pub struct LocalBroadcastInstance {
    /// The part size `Δ` (also the graph's maximum degree).
    pub delta: usize,
    /// The message size `B` in bits.
    pub message_bits: usize,
    /// The padded graph.
    pub graph: Graph,
    /// `inputs[&(v, u)]` = the message `v` must deliver to `u`.
    pub inputs: HashMap<(NodeId, NodeId), BitVec>,
}

impl LocalBroadcastInstance {
    /// Samples the Lemma 14 hard distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2·delta` or `delta == 0` (invalid topology).
    #[must_use]
    pub fn random<R: Rng + ?Sized>(
        delta: usize,
        n: usize,
        message_bits: usize,
        rng: &mut R,
    ) -> Self {
        let graph = topology::complete_bipartite_with_isolated(delta, n)
            .unwrap_or_else(|e| panic!("invalid instance shape: {e}"));
        let mut inputs = HashMap::new();
        for v in 0..delta {
            for u in delta..2 * delta {
                // Left → right: uniform random (the hard direction).
                inputs.insert((v, u), BitVec::random_uniform(message_bits, rng));
                // Right → left: fixed zero (as in the lemma).
                inputs.insert((u, v), BitVec::zeros(message_bits));
            }
        }
        LocalBroadcastInstance {
            delta,
            message_bits,
            graph,
            inputs,
        }
    }

    /// Node ids of the left part.
    #[must_use]
    pub fn left(&self) -> Vec<NodeId> {
        (0..self.delta).collect()
    }

    /// Node ids of the right part.
    #[must_use]
    pub fn right(&self) -> Vec<NodeId> {
        (self.delta..2 * self.delta).collect()
    }

    /// Entropy of the random inputs: `Δ²·B` bits — the quantity any
    /// correct protocol must push through the one-bit-per-round bottleneck.
    #[must_use]
    pub fn input_entropy_bits(&self) -> usize {
        self.delta * self.delta * self.message_bits
    }
}

/// Lemma 14: any beeping algorithm succeeding with probability
/// `> 2^{−Δ²B/2}` needs more than `Δ²B/2` rounds.
#[must_use]
pub fn lemma14_round_lower_bound(delta: usize, message_bits: usize) -> usize {
    delta * delta * message_bits / 2
}

/// `log₂` of the Lemma 14 success ceiling for a `T`-round protocol:
/// `T − Δ²B` (≥ 0 means the bound is vacuous).
#[must_use]
pub fn lemma14_success_ceiling_log2(rounds: usize, delta: usize, message_bits: usize) -> i64 {
    rounds as i64 - (delta * delta * message_bits) as i64
}

/// Lemma 15's CONGEST solver: `⌈B/width⌉` rounds, chunking each
/// `m_{v→u}` across its link.
///
/// Outputs, per node, the reassembled message from each neighbor.
#[derive(Debug)]
pub struct CongestLocalBroadcast {
    ctx: Option<NodeCtx>,
    message_bits: usize,
    /// This node's outgoing messages (neighbor → full B-bit message).
    outgoing: Vec<(NodeId, BitVec)>,
    /// Chunks received so far: sender → bits collected in order.
    collected: HashMap<NodeId, Vec<bool>>,
    total_rounds: usize,
    elapsed: usize,
}

impl CongestLocalBroadcast {
    /// Creates a node's solver from its Definition 13 input set.
    ///
    /// # Panics
    ///
    /// Panics if any outgoing message is not exactly `message_bits` wide.
    #[must_use]
    pub fn new(message_bits: usize, outgoing: Vec<(NodeId, BitVec)>) -> Self {
        for (_, m) in &outgoing {
            assert_eq!(m.len(), message_bits, "input message width mismatch");
        }
        CongestLocalBroadcast {
            ctx: None,
            message_bits,
            outgoing,
            collected: HashMap::new(),
            total_rounds: 0,
            elapsed: 0,
        }
    }

    /// Rounds the solver needs at CONGEST width `w`: `⌈B/w⌉` (Lemma 15).
    #[must_use]
    pub fn rounds_needed(message_bits: usize, width: usize) -> usize {
        message_bits.div_ceil(width.max(1)).max(1)
    }

    /// The reassembled message from each neighbor, sorted by sender.
    #[must_use]
    pub fn output(&self) -> Vec<(NodeId, BitVec)> {
        let mut out: Vec<(NodeId, BitVec)> = self
            .collected
            .iter()
            .map(|(&sender, bits)| {
                let mut bv = BitVec::from_bools(bits);
                // Trim padding from the last chunk.
                if bv.len() > self.message_bits {
                    bv = bv.extract(0..self.message_bits);
                }
                (sender, bv)
            })
            .collect();
        out.sort_unstable_by_key(|(s, _)| *s);
        out
    }
}

impl CongestAlgorithm for CongestLocalBroadcast {
    fn init(&mut self, ctx: &NodeCtx) {
        self.total_rounds = Self::rounds_needed(self.message_bits, ctx.message_bits);
        self.ctx = Some(*ctx);
    }

    fn round_messages(&mut self, round: usize) -> Vec<(NodeId, Message)> {
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        if round >= self.total_rounds {
            return Vec::new();
        }
        let width = ctx.message_bits;
        self.outgoing
            .iter()
            .map(|(to, m)| {
                let mut w = MessageWriter::new();
                for i in 0..width {
                    let bit_idx = round * width + i;
                    w.push_bit(bit_idx < m.len() && m.get(bit_idx));
                }
                (*to, w.finish(width))
            })
            .collect()
    }

    fn on_receive(&mut self, _round: usize, received: &[(NodeId, Message)]) {
        for (sender, m) in received {
            let entry = self.collected.entry(*sender).or_default();
            entry.extend(m.to_bitvec().iter_bits());
        }
        self.elapsed += 1;
    }

    fn is_done(&self) -> bool {
        self.elapsed >= self.total_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_congest::CongestRunner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instance_shape_matches_lemma14() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = LocalBroadcastInstance::random(3, 10, 4, &mut rng);
        assert_eq!(inst.graph.node_count(), 10);
        assert_eq!(inst.graph.max_degree(), 3);
        assert_eq!(inst.inputs.len(), 2 * 9);
        assert_eq!(inst.input_entropy_bits(), 36);
        assert_eq!(inst.left(), vec![0, 1, 2]);
        assert_eq!(inst.right(), vec![3, 4, 5]);
        // Right → left inputs are all zero.
        for u in inst.right() {
            for v in inst.left() {
                assert_eq!(inst.inputs[&(u, v)].count_ones(), 0);
            }
        }
    }

    #[test]
    fn bounds_formulas() {
        assert_eq!(lemma14_round_lower_bound(4, 8), 64);
        assert_eq!(lemma14_success_ceiling_log2(100, 4, 8), 100 - 128);
        assert_eq!(lemma14_success_ceiling_log2(128, 4, 8), 0);
        assert_eq!(CongestLocalBroadcast::rounds_needed(32, 8), 4);
        assert_eq!(CongestLocalBroadcast::rounds_needed(33, 8), 5);
        assert_eq!(CongestLocalBroadcast::rounds_needed(4, 8), 1);
    }

    #[test]
    fn congest_solver_delivers_all_messages() {
        // Lemma 15 upper bound, exercised natively.
        let mut rng = StdRng::seed_from_u64(2);
        let b = 20;
        let width = 8; // forces ⌈20/8⌉ = 3 rounds of chunking
        let inst = LocalBroadcastInstance::random(3, 6, b, &mut rng);
        let n = inst.graph.node_count();
        let mut algos: Vec<Box<CongestLocalBroadcast>> = (0..n)
            .map(|v| {
                let outgoing: Vec<(NodeId, BitVec)> = inst
                    .graph
                    .neighbors(v)
                    .iter()
                    .map(|&u| (u, inst.inputs[&(v, u)].clone()))
                    .collect();
                Box::new(CongestLocalBroadcast::new(b, outgoing))
            })
            .collect();
        let runner = CongestRunner::new(&inst.graph, width, 0);
        let report = runner.run_to_completion(&mut algos, 10).unwrap();
        assert_eq!(report.rounds, 3);
        for (v, algo) in algos.iter().enumerate() {
            for (sender, msg) in algo.output() {
                assert_eq!(msg, inst.inputs[&(sender, v)], "{sender} → {v}");
            }
            assert_eq!(algo.output().len(), inst.graph.degree(v));
        }
    }
}
