//! The transcript-counting experiment behind Lemma 14 / Theorem 22.
//!
//! On `K_{Δ,Δ}`, every right node hears the same thing each round: the OR
//! of the left part's beeps, possibly corrupted by noise. A `T`-round
//! execution therefore hands the right part at most `2^T` distinguishable
//! transcripts, while a correct output must distinguish `2^{Δ²B}` left
//! inputs. This module runs a rate-optimal reference protocol on the real
//! engine with a truncated round budget and measures exactly where
//! recovery collapses.

use super::local_broadcast::LocalBroadcastInstance;
use beep_bits::BitVec;
use beep_net::{BeepNetwork, Noise};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a truncated-budget census ([`tdma_local_broadcast_census`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CensusReport {
    /// The round budget `T` the protocol was truncated to.
    pub rounds_budget: usize,
    /// The input entropy `Δ²·B` in bits.
    pub input_bits: usize,
    /// Input bits actually conveyed: `min(T, Δ²B)` for the TDMA protocol
    /// (which is rate-optimal: one input bit per round).
    pub recovered_bits: usize,
    /// Trials run.
    pub trials: usize,
    /// Distinct left-part transcripts observed across trials.
    pub distinct_transcripts: usize,
    /// Fraction of trials in which the right part reconstructed *all*
    /// left inputs (guessing unconveyed bits uniformly).
    pub success_rate: f64,
    /// `log₂` of the Lemma 14 ceiling `2^{T−Δ²B}` (≥ 0 ⇒ vacuous).
    pub ceiling_log2: i64,
}

/// Runs the rate-optimal TDMA local-broadcast protocol on `K_{Δ,Δ}`
/// through the beeping engine, truncated to `rounds_budget` rounds, over
/// `trials` random instances.
///
/// Protocol: left node `i` is scheduled the round range
/// `[i·ΔB, (i+1)·ΔB)` and beeps its `Δ·B` input bits raw, one per round
/// (this conveys one input bit per round — no beeping protocol can do
/// better on this graph, which is Lemma 14's content). The right part
/// reconstructs all conveyed bits from its OR transcript and guesses the
/// rest uniformly at random; a trial succeeds if the full input is
/// reconstructed.
///
/// With `T ≥ Δ²B` the success rate is exactly 1; below it, it collapses as
/// `2^{T−Δ²B}` — the measured curve experiments E8 prints against the
/// ceiling.
///
/// # Panics
///
/// Panics if `delta == 0`, `message_bits == 0`, or `trials == 0`.
#[must_use]
pub fn tdma_local_broadcast_census(
    delta: usize,
    message_bits: usize,
    rounds_budget: usize,
    trials: usize,
    seed: u64,
) -> CensusReport {
    assert!(delta > 0 && message_bits > 0 && trials > 0);
    let input_bits = delta * delta * message_bits;
    let conveyed = rounds_budget.min(input_bits);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transcripts = std::collections::HashSet::new();
    let mut successes = 0usize;
    for _ in 0..trials {
        let inst = LocalBroadcastInstance::random(delta, 2 * delta, message_bits, &mut rng);
        // Concatenate left inputs into the global TDMA bit schedule:
        // bit index i·ΔB + (u−Δ)·B + j  =  bit j of m_{i→u}.
        let schedule = BitVec::from_fn(input_bits, |idx| {
            let i = idx / (delta * message_bits);
            let rest = idx % (delta * message_bits);
            let u = delta + rest / message_bits;
            let j = rest % message_bits;
            inst.inputs[&(i, u)].get(j)
        });
        // Run the truncated protocol on the actual engine, recording the
        // beep transcript.
        let mut net = BeepNetwork::new(inst.graph.clone(), Noise::Noiseless, seed ^ 0x7AB5);
        net.record_transcript();
        let n = inst.graph.node_count();
        let mut beepers = BitVec::zeros(n);
        let mut received = BitVec::zeros(n);
        for round in 0..rounds_budget.min(input_bits) {
            let beeper = round / (delta * message_bits); // left node on duty
            beepers.clear();
            if schedule.get(round) {
                beepers.set(beeper, true);
            }
            net.run_round_bitset_into(&beepers, &mut received)
                .expect("beeper bitmap matches node count");
        }
        // The right part's view: the OR of left beeps per round.
        let view = net
            .transcript()
            .expect("recording enabled")
            .or_projection(&inst.left());
        transcripts.insert(view.to_string());
        // Optimal decoder: conveyed bits are read off the transcript
        // (noiseless TDMA ⇒ view == schedule prefix); unconveyed bits must
        // be guessed.
        let mut reconstructed = true;
        for idx in 0..input_bits {
            let guess = if idx < conveyed {
                view.get(idx)
            } else {
                use rand::RngExt;
                rng.random_bool(0.5)
            };
            if guess != schedule.get(idx) {
                reconstructed = false;
                // Keep drawing guesses for fairness of RNG usage count?
                // Not needed: trials are independent.
                break;
            }
        }
        if reconstructed {
            successes += 1;
        }
    }
    CensusReport {
        rounds_budget,
        input_bits,
        recovered_bits: conveyed,
        trials,
        distinct_transcripts: transcripts.len(),
        success_rate: successes as f64 / trials as f64,
        ceiling_log2: rounds_budget as i64 - input_bits as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_budget_always_succeeds() {
        // T = Δ²B: the rate-optimal protocol conveys everything.
        let report = tdma_local_broadcast_census(2, 3, 12, 50, 1);
        assert_eq!(report.input_bits, 12);
        assert_eq!(report.recovered_bits, 12);
        assert!((report.success_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.ceiling_log2, 0);
    }

    #[test]
    fn budget_above_entropy_changes_nothing() {
        let report = tdma_local_broadcast_census(2, 3, 100, 30, 2);
        assert_eq!(report.recovered_bits, 12);
        assert!((report.success_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_collapses_success_like_the_ceiling() {
        // T = Δ²B − 2: ceiling is 2⁻² = 0.25; the measured rate over many
        // trials should sit near it (binomial noise allowed).
        let report = tdma_local_broadcast_census(2, 4, 14, 800, 3);
        assert_eq!(report.ceiling_log2, -2);
        assert!(
            (report.success_rate - 0.25).abs() < 0.08,
            "measured {} vs ceiling 0.25",
            report.success_rate
        );
    }

    #[test]
    fn deep_truncation_kills_success() {
        let report = tdma_local_broadcast_census(3, 4, 10, 100, 4);
        assert_eq!(report.input_bits, 36);
        assert_eq!(report.recovered_bits, 10);
        assert_eq!(
            report.success_rate, 0.0,
            "26 guessed bits cannot all be right"
        );
    }

    #[test]
    fn transcripts_are_capped_by_budget() {
        // With T = 3 there are at most 2³ = 8 distinct transcripts no
        // matter how many random instances we draw.
        let report = tdma_local_broadcast_census(2, 4, 3, 200, 5);
        assert!(
            report.distinct_transcripts <= 8,
            "{}",
            report.distinct_transcripts
        );
        // And with enough trials the bound is tight for random inputs.
        assert!(report.distinct_transcripts >= 6);
    }
}
