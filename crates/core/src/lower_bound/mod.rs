//! The Section 5 lower-bound apparatus, as runnable experiments.
//!
//! Lemma 14's argument is information-theoretic: on `K_{Δ,Δ}` all right
//! nodes hear the *same* one-bit-per-round OR of the left part, so a
//! `T`-round protocol partitions the `2^{Δ²B}` possible left inputs into at
//! most `2^T` transcript classes; success probability is then at most
//! `2^{T−Δ²B}`. These modules make that argument executable:
//!
//! * [`LocalBroadcastInstance`] builds the hard instance (Definition 13's
//!   inputs on `K_{Δ,Δ}` + isolated vertices) and solves it in Broadcast
//!   CONGEST / CONGEST (Lemma 15) for the upper-bound side;
//! * [`transcript`] runs beeping protocols on the instance, records the
//!   left-part OR transcript, and counts distinguishable classes — showing
//!   the `2^{T−Δ²B}` ceiling bite exactly where Lemma 14 says it must.

mod local_broadcast;
pub mod transcript;

pub use local_broadcast::{
    lemma14_round_lower_bound, lemma14_success_ceiling_log2, CongestLocalBroadcast,
    LocalBroadcastInstance,
};
