//! Theorem 11 end-to-end: run whole Broadcast CONGEST (and, via the
//! Corollary 12 adapter, CONGEST) algorithms over a noisy beeping network.

use crate::congest_wrap::CongestAdapter;
use crate::error::SimError;
use crate::params::SimulationParams;
use crate::round_sim::BroadcastSimulator;
use crate::stats::RoundStats;
use beep_congest::{BroadcastAlgorithm, CongestAlgorithm, CongestError, Message, NodeCtx};
use beep_net::{BeepNetwork, ChannelModel, FaultPlan, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a completed simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Broadcast CONGEST communication rounds simulated.
    pub congest_rounds: usize,
    /// Total beep rounds spent (= `congest_rounds ×
    /// beep_rounds_per_congest_round`).
    pub beep_rounds: usize,
    /// The fixed per-round overhead `2·c_ε³·(Δ+1)·B` — the paper's
    /// `O(Δ log n)`.
    pub beep_rounds_per_congest_round: usize,
    /// Total beeps emitted (energy).
    pub beeps: u64,
    /// Aggregated decode statistics across all simulated rounds.
    pub stats: RoundStats,
}

/// Runs [`BroadcastAlgorithm`]s over a noisy beeping network using
/// Algorithm 1 for every communication round (Theorem 11).
///
/// Mirrors [`beep_congest::BroadcastRunner`]'s interface so the same
/// algorithm values can be executed natively and under simulation and their
/// outputs compared — the workspace's equivalence tests do exactly that.
#[derive(Debug)]
pub struct SimulatedBroadcastRunner<'g> {
    graph: &'g Graph,
    message_bits: usize,
    seed: u64,
    params: SimulationParams,
    channel: ChannelModel,
    faults: FaultPlan,
}

impl<'g> SimulatedBroadcastRunner<'g> {
    /// Creates a runner. `seed` drives node algorithm randomness, codeword
    /// draws, and channel noise (all separated internally). `channel` is
    /// anything convertible into a [`ChannelModel`] — a plain
    /// [`beep_net::Noise`] as always, or any `beep_net::channel` model —
    /// and `params.epsilon` must match the channel's calibration rate
    /// (`noise.epsilon()` for iid,
    /// [`beep_net::NoiseModel::calibration_epsilon`] otherwise).
    #[must_use]
    pub fn new(
        graph: &'g Graph,
        message_bits: usize,
        seed: u64,
        params: SimulationParams,
        channel: impl Into<ChannelModel>,
    ) -> Self {
        SimulatedBroadcastRunner {
            graph,
            message_bits,
            seed,
            params,
            channel: channel.into(),
            faults: FaultPlan::none(),
        }
    }

    /// Installs a [`FaultPlan`] on the underlying beep network: faulty
    /// nodes' beep/listen actions are overridden round by round and crashed
    /// nodes go deaf, exactly as in [`BeepNetwork::set_fault_plan`]. The
    /// default is the empty plan (every node correct).
    #[must_use]
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The context node `v` receives — identical to the native runner's, so
    /// algorithms behave identically under both.
    #[must_use]
    pub fn node_ctx(&self, v: usize) -> NodeCtx {
        NodeCtx {
            node: v,
            n: self.graph.node_count(),
            degree: self.graph.degree(v),
            message_bits: self.message_bits,
            seed: self.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Initializes and runs until every node is done or the budget (in
    /// *Broadcast CONGEST rounds*) is exhausted.
    ///
    /// # Errors
    ///
    /// Construction, width, and budget errors as [`SimError`].
    pub fn run_to_completion<A: BroadcastAlgorithm + ?Sized>(
        &self,
        algorithms: &mut [Box<A>],
        max_rounds: usize,
    ) -> Result<SimReport, SimError> {
        let n = self.graph.node_count();
        if algorithms.len() != n {
            return Err(CongestError::NodeCount {
                expected: n,
                actual: algorithms.len(),
            }
            .into());
        }
        let simulator =
            BroadcastSimulator::new(self.params, self.message_bits, self.graph.max_degree())?;
        let mut net =
            BeepNetwork::new(self.graph.clone(), self.channel.clone(), self.seed ^ 0xBEE9);
        net.set_fault_plan(self.faults.clone())
            .map_err(SimError::Net)?;
        let mut sim_rng = StdRng::seed_from_u64(self.seed ^ 0xC0DE);
        for (v, algo) in algorithms.iter_mut().enumerate() {
            algo.init(&self.node_ctx(v));
        }
        let mut stats = RoundStats::default();
        let mut congest_rounds = 0;
        for round in 0..max_rounds {
            if algorithms.iter().all(|a| a.is_done()) {
                break;
            }
            let outgoing: Vec<Option<Message>> = algorithms
                .iter_mut()
                .map(|a| a.round_message(round))
                .collect();
            let outcome = simulator.simulate_round(&mut net, &outgoing, &mut sim_rng)?;
            for (v, algo) in algorithms.iter_mut().enumerate() {
                algo.on_receive(round, &outcome.delivered[v]);
            }
            stats.merge(&outcome.stats);
            congest_rounds += 1;
        }
        if !algorithms.iter().all(|a| a.is_done()) {
            return Err(CongestError::RoundBudgetExhausted { budget: max_rounds }.into());
        }
        let net_stats = net.stats();
        Ok(SimReport {
            congest_rounds,
            beep_rounds: net_stats.rounds,
            beep_rounds_per_congest_round: simulator.rounds_per_congest_round(),
            beeps: net_stats.beeps,
            stats,
        })
    }
}

/// Runs [`CongestAlgorithm`]s over a noisy beeping network (Corollary 12):
/// lifts each node through [`CongestAdapter`] and simulates the resulting
/// Broadcast CONGEST execution, for `O(Δ² log n)` total overhead.
#[derive(Debug)]
pub struct SimulatedCongestRunner<'g> {
    graph: &'g Graph,
    /// The *inner* CONGEST message width.
    message_bits: usize,
    seed: u64,
    params: SimulationParams,
    channel: ChannelModel,
    faults: FaultPlan,
}

impl<'g> SimulatedCongestRunner<'g> {
    /// Creates a runner; `message_bits` is the **CONGEST** message width
    /// (the wrapper adds the two id fields of Corollary 12 internally).
    /// `channel` accepts anything convertible into a [`ChannelModel`],
    /// like [`SimulatedBroadcastRunner::new`].
    #[must_use]
    pub fn new(
        graph: &'g Graph,
        message_bits: usize,
        seed: u64,
        params: SimulationParams,
        channel: impl Into<ChannelModel>,
    ) -> Self {
        SimulatedCongestRunner {
            graph,
            message_bits,
            seed,
            params,
            channel: channel.into(),
            faults: FaultPlan::none(),
        }
    }

    /// Installs a [`FaultPlan`] on the underlying simulated broadcast
    /// runner (see [`SimulatedBroadcastRunner::with_fault_plan`]).
    #[must_use]
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Initializes and runs until every node is done or the budget (in
    /// *CONGEST rounds*) is exhausted.
    ///
    /// # Errors
    ///
    /// Construction, width, and budget errors as [`SimError`].
    pub fn run_to_completion<A: CongestAlgorithm>(
        &self,
        algorithms: Vec<A>,
        max_rounds: usize,
    ) -> Result<(Vec<A>, SimReport), SimError> {
        let n = self.graph.node_count();
        let delta = self.graph.max_degree();
        let wrapper_bits = CongestAdapter::<A>::required_message_bits(n, self.message_bits);
        let mut adapters: Vec<Box<CongestAdapter<A>>> = algorithms
            .into_iter()
            .map(|a| Box::new(CongestAdapter::new(a, delta, self.message_bits)))
            .collect();
        let runner = SimulatedBroadcastRunner::new(
            self.graph,
            wrapper_bits,
            self.seed,
            self.params,
            self.channel.clone(),
        )
        .with_fault_plan(self.faults.clone());
        let broadcast_budget = CongestAdapter::<A>::broadcast_rounds_for(max_rounds, delta);
        let report = runner.run_to_completion(&mut adapters, broadcast_budget)?;
        let inner = adapters.into_iter().map(|b| b.into_inner()).collect();
        Ok((inner, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_congest::algorithms::{BfsTree, Flood, LeaderElection, LubyMis, MaximalMatching};
    use beep_congest::validate;
    use beep_net::{topology, Noise};

    #[test]
    fn flood_over_noiseless_beeps() {
        let g = topology::path(5).unwrap();
        let params = SimulationParams::calibrated(0.0);
        let runner = SimulatedBroadcastRunner::new(&g, 16, 7, params, Noise::Noiseless);
        let mut algos: Vec<Box<Flood>> =
            (0..5).map(|_| Box::new(Flood::new(0, 0xAB, 16))).collect();
        let report = runner.run_to_completion(&mut algos, 10).unwrap();
        assert!(algos.iter().all(|a| a.output() == Some(0xAB)));
        assert!(report.stats.all_perfect(), "{:?}", report.stats);
        assert_eq!(
            report.beep_rounds,
            report.congest_rounds * report.beep_rounds_per_congest_round
        );
    }

    #[test]
    fn flood_over_noisy_beeps() {
        let g = topology::path(4).unwrap();
        let eps = 0.05;
        let params = SimulationParams::calibrated(eps);
        let runner = SimulatedBroadcastRunner::new(&g, 16, 11, params, Noise::bernoulli(eps));
        let mut algos: Vec<Box<Flood>> =
            (0..4).map(|_| Box::new(Flood::new(0, 0x3C, 16))).collect();
        runner.run_to_completion(&mut algos, 10).unwrap();
        assert!(algos.iter().all(|a| a.output() == Some(0x3C)));
    }

    #[test]
    fn simulated_equals_native_for_bfs() {
        // The acid test: the same algorithm, run natively and over beeps,
        // must produce identical outputs (noiseless ⇒ decoding is exact
        // w.h.p.; these parameters give zero observed failures).
        let g = topology::grid(3, 3).unwrap();
        let n = g.node_count();
        let bits = BfsTree::required_message_bits(n);

        let native_runner = beep_congest::BroadcastRunner::new(&g, bits, 5);
        let mut native: Vec<Box<BfsTree>> = (0..n).map(|_| Box::new(BfsTree::new(0))).collect();
        native_runner.run_to_completion(&mut native, n + 1).unwrap();

        let params = SimulationParams::calibrated(0.0);
        let sim_runner = SimulatedBroadcastRunner::new(&g, bits, 5, params, Noise::Noiseless);
        let mut simulated: Vec<Box<BfsTree>> = (0..n).map(|_| Box::new(BfsTree::new(0))).collect();
        let report = sim_runner.run_to_completion(&mut simulated, n + 1).unwrap();

        for v in 0..n {
            assert_eq!(native[v].output(), simulated[v].output(), "node {v}");
        }
        assert!(report.stats.all_perfect());
    }

    #[test]
    fn mis_over_noisy_beeps_is_valid() {
        let g = topology::cycle(7).unwrap();
        let eps = 0.05;
        let n = g.node_count();
        let bits = LubyMis::required_message_bits(n);
        let iters = LubyMis::suggested_iterations(n);
        let params = SimulationParams::calibrated(eps);
        let runner = SimulatedBroadcastRunner::new(&g, bits, 3, params, Noise::bernoulli(eps));
        let mut algos: Vec<Box<LubyMis>> = (0..n).map(|_| Box::new(LubyMis::new(iters))).collect();
        runner
            .run_to_completion(&mut algos, LubyMis::rounds_for(iters))
            .unwrap();
        let out: Vec<bool> = algos.iter().map(|a| a.output().unwrap()).collect();
        assert!(validate::check_mis(&g, &out).is_empty());
    }

    #[test]
    fn matching_over_noisy_beeps_is_valid() {
        // Theorem 21 end-to-end at small scale.
        let g = topology::cycle(6).unwrap();
        let eps = 0.05;
        let n = g.node_count();
        let bits = MaximalMatching::required_message_bits(n);
        let iters = MaximalMatching::suggested_iterations(n);
        let params = SimulationParams::calibrated(eps);
        let runner = SimulatedBroadcastRunner::new(&g, bits, 13, params, Noise::bernoulli(eps));
        let mut algos: Vec<Box<MaximalMatching>> = (0..n)
            .map(|_| Box::new(MaximalMatching::new(iters)))
            .collect();
        let report = runner
            .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
            .unwrap();
        let out: Vec<Option<usize>> = algos.iter().map(|a| a.output().unwrap()).collect();
        let violations = validate::check_matching(&g, &out);
        assert!(
            violations.is_empty(),
            "{violations:?} (stats {:?})",
            report.stats
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = topology::path(3).unwrap();
        let params = SimulationParams::calibrated(0.0);
        let runner = SimulatedBroadcastRunner::new(&g, 8, 0, params, Noise::Noiseless);
        // Leader election configured to need more rounds than the budget.
        let mut algos: Vec<Box<LeaderElection>> =
            (0..3).map(|_| Box::new(LeaderElection::new(50))).collect();
        let err = runner.run_to_completion(&mut algos, 2).unwrap_err();
        assert!(matches!(
            err,
            SimError::Congest(CongestError::RoundBudgetExhausted { budget: 2 })
        ));
    }

    #[test]
    fn overhead_matches_formula() {
        let g = topology::complete(5).unwrap(); // Δ = 4
        let params = SimulationParams::calibrated(0.0);
        let bits = 10;
        let runner = SimulatedBroadcastRunner::new(&g, bits, 0, params, Noise::Noiseless);
        let mut algos: Vec<Box<LeaderElection>> =
            (0..5).map(|_| Box::new(LeaderElection::new(2))).collect();
        let report = runner.run_to_completion(&mut algos, 5).unwrap();
        assert_eq!(
            report.beep_rounds_per_congest_round,
            params.rounds_per_broadcast_round(bits, 4)
        );
        assert_eq!(
            report.beep_rounds,
            report.congest_rounds * report.beep_rounds_per_congest_round
        );
    }
}
