//! E11: the deterministic fault overlay on the bitset round kernel —
//! per-round cost of every `FaultKind` plan at n = 100k, against the
//! fault-free baseline.
//!
//! The workload is e10's — a random-regular graph on the iid channel —
//! but with one beeper per 32 nodes rather than 16: at stride 16,
//! `beep_count × GATHER_DENSITY_FACTOR` equals `n` exactly, so clearing
//! even a handful of beepers (as crash/mute plans do) flips the kernel
//! from the dense gather to the sparse scatter path and the bench would
//! measure kernel selection, not the overlay. At stride 32 every plan
//! stays safely in the scatter regime and the overlay is the only thing
//! that varies. The overlay's work is two passes over the plan: editing the
//! beeper bitmap before the shard fan-out (clear mutes/crashed, set
//! spammers) and forcing crashed listeners deaf after the channel — both
//! `O(plan.len())`, independent of `n` and of the channel, so the
//! expected overhead at a 1% fault fraction is noise-level for crash and
//! mute. Spam runs a little hotter — its nodes genuinely beep, so the
//! round carries ~1% more traffic through the scatter kernel, which is
//! workload, not overlay. An empty installed plan must be free: the
//! engine short-circuits on `is_empty()`.
//!
//! Besides the criterion timings, the bench prints one
//! `faults <key>: … ns/round` line per plan and writes the
//! machine-readable `BENCH_e11.json` metrics file (see
//! `beep_bench::perfjson`). CI's perf bar asserts the `kinds` metric —
//! all three fault kinds benched above the fault-free baseline — and
//! archives the JSON artifact.

use beep_bits::BitVec;
use beep_net::{topology, BeepNetwork, FaultKind, FaultPlan, Graph, Noise};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One beeper per `BEEP_STRIDE` nodes (see the module docs for why this
/// is 32, not e10's 16).
const BEEP_STRIDE: usize = 32;
const N: usize = 100_000;
/// Fault fraction for the realized plans: 1% of the network.
const FRACTION: f64 = 0.01;

fn instance() -> (Graph, BitVec) {
    let mut rng = StdRng::seed_from_u64(0xE11);
    let graph = topology::random_regular(N, 8, &mut rng).unwrap();
    let beepers = BitVec::from_fn(N, |v| v % BEEP_STRIDE == 0);
    (graph, beepers)
}

/// The swept plans: the fault-free baseline (an empty installed plan),
/// then one realized plan per fault kind. The crash round is 0 so the
/// deafness pass runs in every benched round.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("nofault", FaultPlan::none()),
        (
            "crash",
            FaultPlan::realize(N, FRACTION, FaultKind::Crash { round: 0 }, 0xE11).unwrap(),
        ),
        (
            "spam",
            FaultPlan::realize(N, FRACTION, FaultKind::ByzantineSpam, 0xE11).unwrap(),
        ),
        (
            "mute",
            FaultPlan::realize(N, FRACTION, FaultKind::ByzantineMute, 0xE11).unwrap(),
        ),
    ]
}

/// Median wall-clock of `samples` runs of `f`.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn bench_fault_overlay(c: &mut Criterion) {
    let (graph, beepers) = instance();
    let n = graph.node_count();
    let mut group = c.benchmark_group("fault_overlay");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut nofault_ns = f64::NAN;
    for (key, plan) in plans() {
        let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 1);
        net.set_fault_plan(plan.clone()).unwrap();
        group.bench_function(format!("bitset {key} n={n}"), |b| {
            b.iter(|| black_box(net.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        // Direct per-round cost for the metrics file.
        let mut m_net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 2);
        m_net.set_fault_plan(plan).unwrap();
        let mut received = BitVec::zeros(n);
        let ns = median_nanos(15, || {
            m_net
                .run_round_bitset_into(&beepers, &mut received)
                .unwrap();
            black_box(&received);
        });
        if key == "nofault" {
            nofault_ns = ns;
        }
        let overhead = ns / nofault_ns;
        println!("faults {key}: {ns:.0} ns/round ({overhead:.2}x fault-free)");
        metrics.push((format!("{key}_ns"), ns));
        metrics.push((format!("overhead_{key}"), overhead));
    }
    // The three fault kinds benched above the fault-free baseline — the
    // CI bar checks this count so a silently-dropped kind fails loudly.
    metrics.push(("kinds".into(), 3.0));
    // Headline throughput on the fault-free baseline, for the trajectory.
    #[allow(clippy::cast_precision_loss)]
    metrics.push(("node_rounds_per_sec".into(), n as f64 * 1e9 / nofault_ns));
    group.finish();
    // The JSON file is CI's perf contract — a failed write must fail the
    // bench, or the perf bar would validate stale cached metrics.
    let path = beep_bench::perfjson::write_bench_json("e11", &metrics)
        .expect("BENCH_e11.json must be written (CI's perf bar reads it)");
    println!("metrics written to {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fault_overlay
}
criterion_main!(benches);
