//! E8: round-engine throughput — the scalar reference `run_round` versus
//! the bit-parallel `run_round_bitset` kernel, on sparse-beeper rounds at
//! n ∈ {1k, 10k, 100k} (the regime every protocol phase lives in: a few
//! transmitters, everyone else listening), plus the extreme-scale
//! n ≈ 10M implicit-torus configuration (zero adjacency storage, the
//! wide-word shift kernel) and the `run_frames_batched` frame driver.
//!
//! Besides the per-kernel timings, the bench measures and prints the
//! scalar/bitset speedup directly and writes the machine-readable
//! `BENCH_e8.json` metrics file (see `beep_bench::perfjson`) that CI's
//! perf bar parses; the acceptance bar for the engine refactor is ≥ 5×
//! at n = 100 000. Every size also reports the headline
//! `node_rounds_per_sec_n{n}` throughput metric the perf-trajectory gate
//! tracks across runs.

use beep_bits::BitVec;
use beep_net::{topology, Action, BeepNetwork, Graph, Noise};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

/// Metrics accumulated across the criterion target functions; the last
/// target writes `BENCH_e8.json` so one file carries the whole bench.
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

const DEGREE: usize = 8;
const BEEPERS: usize = 16;

fn sparse_instance(n: usize) -> (Graph, Vec<Action>, BitVec) {
    let mut rng = StdRng::seed_from_u64(0xE8);
    let graph = topology::random_regular(n, DEGREE, &mut rng).unwrap();
    // A few spread-out beepers, everyone else listening.
    let beeper_ids: Vec<usize> = (0..BEEPERS).map(|i| i * (n / BEEPERS)).collect();
    let mut actions = vec![Action::Listen; n];
    for &v in &beeper_ids {
        actions[v] = Action::Beep;
    }
    let beepers = BitVec::from_indices(n, beeper_ids);
    (graph, actions, beepers)
}

/// Median wall-clock of `samples` runs of `f` (separate from the criterion
/// reporting: used to print the speedup ratio the acceptance bar names).
fn median_nanos(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn bench_round_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_engine");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let (graph, actions, beepers) = sparse_instance(n);

        let mut scalar_net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
        group.bench_function(format!("scalar n={n} beepers={BEEPERS}"), |b| {
            b.iter(|| black_box(scalar_net.run_round(black_box(&actions)).unwrap()));
        });

        let mut bitset_net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
        group.bench_function(format!("bitset n={n} beepers={BEEPERS}"), |b| {
            b.iter(|| black_box(bitset_net.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        let mut noisy_net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 1);
        group.bench_function(format!("bitset noisy ε=0.1 n={n}"), |b| {
            b.iter(|| black_box(noisy_net.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        // Direct speedup measurement for the acceptance criterion.
        let mut s_net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 2);
        let scalar_ns = median_nanos(30, || {
            black_box(s_net.run_round(black_box(&actions)).unwrap());
        });
        let mut b_net = BeepNetwork::new(graph, Noise::Noiseless, 2);
        let bitset_ns = median_nanos(30, || {
            black_box(b_net.run_round_bitset(black_box(&beepers)).unwrap());
        });
        println!(
            "speedup n={n}: scalar {scalar_ns:.0} ns / bitset {bitset_ns:.0} ns = {:.1}x",
            scalar_ns / bitset_ns
        );
        metrics.push((format!("scalar_ns_n{n}"), scalar_ns));
        metrics.push((format!("bitset_ns_n{n}"), bitset_ns));
        metrics.push((format!("speedup_n{n}"), scalar_ns / bitset_ns));
        #[allow(clippy::cast_precision_loss)]
        metrics.push((
            format!("node_rounds_per_sec_n{n}"),
            n as f64 * 1e9 / bitset_ns,
        ));
    }
    group.finish();
    METRICS.lock().unwrap().extend(metrics);
}

/// The extreme-scale configuration: n ≈ 10M nodes on a zero-storage
/// implicit torus, driven through the wide-word shift kernel. Criterion
/// iteration at this size is too slow for the smoke run, so the metrics
/// come from a short direct median instead (the scheduled `large-n` CI
/// job re-runs this with generous timeouts).
fn bench_implicit_extreme(_c: &mut Criterion) {
    let side = 3_163usize; // 3163² = 10_004_569 ≈ 10M nodes
    let graph = topology::implicit_torus(side, side).unwrap();
    let n = graph.node_count();
    let beepers = BitVec::from_fn(n, |v| v % 1024 == 0);
    let mut net = BeepNetwork::new(graph, Noise::bernoulli(0.1), 2);
    net.set_parallelism(0); // all cores: the 10M row is a machine headline
    let mut received = BitVec::zeros(n);
    let ns = median_nanos(5, || {
        net.run_round_bitset_into(&beepers, &mut received).unwrap();
        black_box(&received);
    });
    #[allow(clippy::cast_precision_loss)]
    let node_rounds_per_sec = n as f64 * 1e9 / ns;
    println!("implicit torus n={n}: {ns:.0} ns/round = {node_rounds_per_sec:.3e} node-rounds/s");
    let mut metrics = METRICS.lock().unwrap();
    metrics.push((format!("implicit_torus_ns_n{n}"), ns));
    metrics.push((format!("node_rounds_per_sec_n{n}"), node_rounds_per_sec));
}

fn bench_frame_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_engine");
    let n = 10_000;
    let len = 64;
    let (graph, _, _) = sparse_instance(n);
    // 16 transmitters with dense 64-bit frames, the rest silent.
    let mut rng = StdRng::seed_from_u64(3);
    let frames: Vec<Option<BitVec>> = (0..n)
        .map(|v| (v % (n / BEEPERS) == 0).then(|| BitVec::random_uniform(len, &mut rng)))
        .collect();
    let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 4);
    group.bench_function(format!("run_frame n={n} len={len}"), |b| {
        b.iter(|| black_box(net.run_frame(black_box(&frames)).unwrap()));
    });
    let mut batched_net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 4);
    group.bench_function(format!("run_frames_batched n={n} len={len}"), |b| {
        b.iter(|| {
            black_box(
                batched_net
                    .run_frames_batched(black_box(&frames), len)
                    .unwrap(),
            )
        });
    });
    group.finish();

    // Direct per-round vs batched comparison for the metrics file.
    let mut f_net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 5);
    let mut heard = Vec::new();
    let frame_ns = median_nanos(15, || {
        f_net.run_frame_into(&frames, len, &mut heard).unwrap();
        black_box(&heard);
    });
    let mut b_net = BeepNetwork::new(graph, Noise::Noiseless, 5);
    let batched_ns = median_nanos(15, || {
        b_net
            .run_frames_batched_into(&frames, len, &mut heard)
            .unwrap();
        black_box(&heard);
    });
    println!(
        "frame batching n={n} len={len}: per-round {frame_ns:.0} ns / batched {batched_ns:.0} ns \
         = {:.2}x",
        frame_ns / batched_ns
    );
    let mut metrics = METRICS.lock().unwrap();
    metrics.push(("frame_ns".into(), frame_ns));
    metrics.push(("frames_batched_ns".into(), batched_ns));
    metrics.push(("frames_batched_speedup".into(), frame_ns / batched_ns));
    // The JSON file is CI's perf contract — a failed write must fail the
    // bench, or the perf bar would validate stale cached metrics. This is
    // the last criterion target, so the file carries every group above.
    let path = beep_bench::perfjson::write_bench_json("e8", &metrics)
        .expect("BENCH_e8.json must be written (CI's perf bar reads it)");
    println!("metrics written to {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_round_kernels, bench_implicit_extreme, bench_frame_kernel
}
criterion_main!(benches);
