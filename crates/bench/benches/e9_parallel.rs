//! E9: the sharded multi-threaded round kernel — single-thread bitset
//! versus all-cores bitset at n ∈ {100k, 1M}.
//!
//! The workload is the regime where thread-level parallelism pays: large
//! graphs with a non-trivial beeper fraction (n/16 beepers puts the sparse
//! kernel in its destination-side gather mode) plus batched Bernoulli
//! noise. Results are bit-identical across thread counts by the engine's
//! determinism contract, so this bench measures pure speedup, not a
//! semantic trade.
//!
//! Besides the criterion timings, the bench prints a direct
//! `parallel speedup n=…` line per size and writes the machine-readable
//! `BENCH_e9.json` metrics file (see `beep_bench::perfjson`) that CI's
//! perf bar parses. The acceptance bar — enforced by CI's bench smoke
//! when the runner has ≥ 4 cores — is ≥ 2× at n = 1M.
//!
//! The extreme-scale tier runs on the zero-storage implicit torus:
//! n ≈ 10M always, and n = 100M when `BENCH_LARGE_N` is set in the
//! environment (the scheduled `large-n` CI job sets it; the per-push
//! smoke does not). Every size reports the headline
//! `node_rounds_per_sec_n{n}` metric the perf-trajectory gate tracks.

use beep_bits::BitVec;
use beep_net::{topology, BeepNetwork, Graph, Noise};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One beeper per `BEEP_STRIDE` nodes: dense enough for the gather
/// strategy, sparse enough to look like a protocol round.
const BEEP_STRIDE: usize = 16;
const EPS: f64 = 0.1;

fn instance(n: usize) -> (Graph, BitVec) {
    // A 1M-node random-regular graph is slow to sample; the grid has the
    // same sparse CSR shape and builds in milliseconds.
    let graph = if n >= 1_000_000 {
        let side = (n as f64).sqrt() as usize;
        topology::grid(side, side).unwrap()
    } else {
        let mut rng = StdRng::seed_from_u64(0xE9);
        topology::random_regular(n, 8, &mut rng).unwrap()
    };
    let n = graph.node_count();
    let beepers = BitVec::from_fn(n, |v| v % BEEP_STRIDE == 0);
    (graph, beepers)
}

/// Median wall-clock of `samples` runs of `f`.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn bench_parallel_kernel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("parallel_engine");
    #[allow(clippy::cast_precision_loss)]
    let mut metrics: Vec<(String, f64)> = vec![("cores".into(), cores as f64)];
    for n in [100_000usize, 1_000_000] {
        let (graph, beepers) = instance(n);
        let n = graph.node_count();

        let mut single = BeepNetwork::new(graph.clone(), Noise::bernoulli(EPS), 1);
        single.set_parallelism(1);
        group.bench_function(format!("bitset 1-thread n={n} ε={EPS}"), |b| {
            b.iter(|| black_box(single.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        let mut multi = BeepNetwork::new(graph.clone(), Noise::bernoulli(EPS), 1);
        multi.set_parallelism(0); // auto: all cores above the work budget
        group.bench_function(format!("bitset {cores}-thread n={n} ε={EPS}"), |b| {
            b.iter(|| black_box(multi.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        // Direct speedup measurement for the acceptance criterion. Shard
        // count is identical on both sides, so the transcripts are too.
        let mut s_net = BeepNetwork::new(graph.clone(), Noise::bernoulli(EPS), 2);
        s_net.set_parallelism(1);
        let mut received = BitVec::zeros(n);
        let single_ns = median_nanos(15, || {
            s_net
                .run_round_bitset_into(&beepers, &mut received)
                .unwrap();
            black_box(&received);
        });
        let mut m_net = BeepNetwork::new(graph, Noise::bernoulli(EPS), 2);
        m_net.set_parallelism(0);
        let multi_ns = median_nanos(15, || {
            m_net
                .run_round_bitset_into(&beepers, &mut received)
                .unwrap();
            black_box(&received);
        });
        println!(
            "parallel speedup n={n}: 1-thread {single_ns:.0} ns / {cores}-thread {multi_ns:.0} ns \
             = {:.1}x (cores={cores})",
            single_ns / multi_ns
        );
        metrics.push((format!("single_ns_n{n}"), single_ns));
        metrics.push((format!("multi_ns_n{n}"), multi_ns));
        metrics.push((format!("speedup_n{n}"), single_ns / multi_ns));
        #[allow(clippy::cast_precision_loss)]
        metrics.push((
            format!("node_rounds_per_sec_n{n}"),
            n as f64 * 1e9 / multi_ns,
        ));
    }

    // Extreme-scale tier: implicit torus, zero adjacency bytes, wide-word
    // shift kernel on all cores. 3163² ≈ 10M runs on every invocation;
    // 10000² = 100M only when the large-n job opts in via BENCH_LARGE_N
    // (the bitmap working set alone is ~10× the smoke tier's).
    let mut sides = vec![3_163usize];
    if std::env::var_os("BENCH_LARGE_N").is_some() {
        sides.push(10_000);
    }
    for side in sides {
        let graph = topology::implicit_torus(side, side).unwrap();
        let n = graph.node_count();
        let beepers = BitVec::from_fn(n, |v| v % 1024 == 0);
        let mut net = BeepNetwork::new(graph, Noise::bernoulli(EPS), 2);
        net.set_parallelism(0);
        let mut received = BitVec::zeros(n);
        let ns = median_nanos(5, || {
            net.run_round_bitset_into(&beepers, &mut received).unwrap();
            black_box(&received);
        });
        #[allow(clippy::cast_precision_loss)]
        let node_rounds_per_sec = n as f64 * 1e9 / ns;
        println!(
            "implicit torus n={n}: {ns:.0} ns/round = {node_rounds_per_sec:.3e} node-rounds/s \
             (cores={cores})"
        );
        metrics.push((format!("implicit_torus_ns_n{n}"), ns));
        metrics.push((format!("node_rounds_per_sec_n{n}"), node_rounds_per_sec));
    }
    group.finish();
    // The JSON file is CI's perf contract — a failed write must fail the
    // bench, or the perf bar would validate stale cached metrics.
    let path = beep_bench::perfjson::write_bench_json("e9", &metrics)
        .expect("BENCH_e9.json must be written (CI's perf bar reads it)");
    println!("metrics written to {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_kernel
}
criterion_main!(benches);
