//! Wall-clock cost of the Theorem 21 pipeline (companion to table E7):
//! complete maximal matching runs, native Broadcast CONGEST versus the
//! noisy beeping simulation.

use beep_congest::algorithms::MaximalMatching;
use beep_congest::BroadcastRunner;
use beep_net::topology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_matching");
    group.sample_size(10);

    // Native Broadcast CONGEST (the algorithm itself, no beeping).
    for n in [32usize, 128] {
        let graph = topology::cycle(n).unwrap();
        let bits = MaximalMatching::required_message_bits(n);
        let iters = MaximalMatching::suggested_iterations(n);
        group.bench_function(format!("native_bc cycle n={n}"), |b| {
            b.iter(|| {
                let runner = BroadcastRunner::new(&graph, bits, 5);
                let mut algos: Vec<Box<MaximalMatching>> = (0..n)
                    .map(|_| Box::new(MaximalMatching::new(iters)))
                    .collect();
                runner
                    .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
                    .unwrap();
                black_box(algos.iter().map(|a| a.output()).collect::<Vec<_>>())
            });
        });
    }

    // The full noisy-beeps pipeline (Theorem 21).
    for (n, eps) in [(16usize, 0.0), (16, 0.05)] {
        let graph = topology::cycle(n).unwrap();
        group.bench_function(format!("noisy_beeps cycle n={n} ε={eps}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(beep_apps::maximal_matching(&graph, eps, seed).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
