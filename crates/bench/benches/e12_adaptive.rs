//! E12: the adaptive-adversary overlay on the bitset round kernel —
//! per-round cost of every `AdaptivePolicy` at n = 100k, against the
//! static-plan and fault-free baselines.
//!
//! The workload is e11's — a random-regular graph on the iid channel,
//! one beeper per 32 nodes — so the numbers compose: e11 prices the
//! static overlay's two `O(plan.len())` passes, and this bench prices
//! what adaptivity adds on top. An adaptive decision runs once per round
//! *before* the shard fan-out (never inside it — that is what keeps the
//! transcript thread-invariant): `TargetLoudest` selects the top-budget
//! cumulative beepers (an `O(n)` scan plus a bounded selection), and
//! `RushingSpam` draws its spam set from the reserved adaptive stream (a
//! partial Fisher–Yates, `O(budget)` after the silent-node scan). Both
//! are `O(n)`-ish per round by design, so the expected overhead at a 1%
//! budget is a modest constant over the fault-free round, not a scaling
//! cliff. A zero-budget policy is behaviourally empty and must price at
//! the fault-free baseline: the engine short-circuits on `is_empty()`.
//!
//! Besides the criterion timings, the bench prints one
//! `adaptive <key>: … ns/round` line per plan and writes the
//! machine-readable `BENCH_e12.json` metrics file (see
//! `beep_bench::perfjson`). CI's perf bar asserts the `policies` metric —
//! both adaptive policies plus a composed static+adaptive plan benched
//! above the fault-free baseline — and archives the JSON artifact.

use beep_bits::BitVec;
use beep_net::{topology, AdaptivePolicy, BeepNetwork, FaultKind, FaultPlan, Graph, Noise};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One beeper per `BEEP_STRIDE` nodes (e11's stride: every plan stays in
/// the scatter regime, so the overlay is the only thing that varies).
const BEEP_STRIDE: usize = 32;
const N: usize = 100_000;
/// Per-round adaptive budget: 1% of the network, matching e11's static
/// fault fraction.
const BUDGET: usize = N / 100;

fn instance() -> (Graph, BitVec) {
    let mut rng = StdRng::seed_from_u64(0xE12);
    let graph = topology::random_regular(N, 8, &mut rng).unwrap();
    let beepers = BitVec::from_fn(N, |v| v % BEEP_STRIDE == 0);
    (graph, beepers)
}

/// The swept plans: the fault-free baseline, each adaptive policy alone,
/// and a composed static + adaptive plan (1% mute faults under a rushing
/// spammer — the realistic worst case: both overlay passes *and* the
/// adaptive decision run every round).
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("nofault", FaultPlan::none()),
        (
            "loudest",
            FaultPlan::from_policy(AdaptivePolicy::TargetLoudest { budget: BUDGET }),
        ),
        (
            "rushing",
            FaultPlan::from_policy(AdaptivePolicy::RushingSpam {
                budget: BUDGET,
                window: 2,
            }),
        ),
        (
            "mute+rushing",
            FaultPlan::realize(N, 0.01, FaultKind::ByzantineMute, 0xE12)
                .unwrap()
                .with_policy(AdaptivePolicy::RushingSpam {
                    budget: BUDGET,
                    window: 2,
                }),
        ),
    ]
}

/// Median wall-clock of `samples` runs of `f`.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn bench_adaptive_overlay(c: &mut Criterion) {
    let (graph, beepers) = instance();
    let n = graph.node_count();
    let mut group = c.benchmark_group("adaptive_overlay");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut nofault_ns = f64::NAN;
    for (key, plan) in plans() {
        let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 1);
        net.set_fault_plan(plan.clone()).unwrap();
        group.bench_function(format!("bitset {key} n={n}"), |b| {
            b.iter(|| black_box(net.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        // Direct per-round cost for the metrics file.
        let mut m_net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 2);
        m_net.set_fault_plan(plan).unwrap();
        let mut received = BitVec::zeros(n);
        let ns = median_nanos(15, || {
            m_net
                .run_round_bitset_into(&beepers, &mut received)
                .unwrap();
            black_box(&received);
        });
        if key == "nofault" {
            nofault_ns = ns;
        }
        let overhead = ns / nofault_ns;
        println!("adaptive {key}: {ns:.0} ns/round ({overhead:.2}x fault-free)");
        metrics.push((format!("{key}_ns"), ns));
        metrics.push((format!("overhead_{key}"), overhead));
    }
    // Both policies plus the composed plan benched above the fault-free
    // baseline — the CI bar checks this count so a silently-dropped
    // policy fails loudly.
    metrics.push(("policies".into(), 3.0));
    // Headline throughput on the fault-free baseline, for the trajectory.
    #[allow(clippy::cast_precision_loss)]
    metrics.push(("node_rounds_per_sec".into(), n as f64 * 1e9 / nofault_ns));
    group.finish();
    // The JSON file is CI's perf contract — a failed write must fail the
    // bench, or the perf bar would validate stale cached metrics.
    let path = beep_bench::perfjson::write_bench_json("e12", &metrics)
        .expect("BENCH_e12.json must be written (CI's perf bar reads it)");
    println!("metrics written to {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_adaptive_overlay
}
criterion_main!(benches);
