//! E10: the pluggable channel models on the bitset round kernel — per-round
//! cost of every `NoiseModel` family at n = 100k, against the noiseless
//! baseline.
//!
//! The workload mirrors `e9_parallel`: a random-regular graph with one
//! beeper per 16 nodes, so the kernel runs its realistic sparse-gather
//! shape and the channel pass is the only thing that varies. The iid
//! channel draws geometric-skip flips; Gilbert–Elliott adds one cached
//! per-round state draw; the per-node channel pays one RNG draw per node;
//! the adversary draws nothing and walks the frame greedily. All of them
//! sit under the same counter-keyed determinism contract, so the bench
//! measures pure channel cost, not a semantic trade.
//!
//! Besides the criterion timings, the bench prints one
//! `channel <key>: … ns/round` line per model and writes the
//! machine-readable `BENCH_e10.json` metrics file (see
//! `beep_bench::perfjson`). CI's perf bar asserts the `models` metric —
//! all four noisy families benched — and archives the JSON artifact.

use beep_bits::BitVec;
use beep_net::{
    topology, AdversarialErasure, BeepNetwork, ChannelModel, GilbertElliott, Graph, Noise,
    PerNodeEps,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One beeper per `BEEP_STRIDE` nodes — the e9 workload shape.
const BEEP_STRIDE: usize = 16;
const N: usize = 100_000;

fn instance() -> (Graph, BitVec) {
    let mut rng = StdRng::seed_from_u64(0xE10);
    let graph = topology::random_regular(N, 8, &mut rng).unwrap();
    let beepers = BitVec::from_fn(N, |v| v % BEEP_STRIDE == 0);
    (graph, beepers)
}

/// The swept families: the noiseless baseline plus one representative of
/// each noisy channel, at comparable corruption rates.
fn channels() -> Vec<(&'static str, ChannelModel)> {
    vec![
        ("noiseless", ChannelModel::from(Noise::Noiseless)),
        (
            "iid",
            ChannelModel::from(Noise::try_bernoulli(0.1).expect("valid rate")),
        ),
        (
            "ge",
            ChannelModel::from(
                GilbertElliott::try_new(0.01, 0.2, 0.1, 0.5).expect("valid parameters"),
            ),
        ),
        (
            "pernode",
            ChannelModel::from(
                PerNodeEps::try_new(vec![0.0, 0.05, 0.1, 0.2]).expect("valid pattern"),
            ),
        ),
        (
            "adv",
            ChannelModel::from(AdversarialErasure::try_new(N / 100, 0.1).expect("valid rate")),
        ),
    ]
}

/// Median wall-clock of `samples` runs of `f`.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn bench_channel_models(c: &mut Criterion) {
    let (graph, beepers) = instance();
    let n = graph.node_count();
    let mut group = c.benchmark_group("channel_models");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut noiseless_ns = f64::NAN;
    for (key, channel) in channels() {
        let mut net = BeepNetwork::new(graph.clone(), channel.clone(), 1);
        group.bench_function(format!("bitset {key} n={n}"), |b| {
            b.iter(|| black_box(net.run_round_bitset(black_box(&beepers)).unwrap()));
        });

        // Direct per-round cost for the metrics file.
        let mut m_net = BeepNetwork::new(graph.clone(), channel, 2);
        let mut received = BitVec::zeros(n);
        let ns = median_nanos(15, || {
            m_net
                .run_round_bitset_into(&beepers, &mut received)
                .unwrap();
            black_box(&received);
        });
        if key == "noiseless" {
            noiseless_ns = ns;
        }
        let overhead = ns / noiseless_ns;
        println!("channel {key}: {ns:.0} ns/round ({overhead:.2}x noiseless)");
        metrics.push((format!("{key}_ns"), ns));
        metrics.push((format!("overhead_{key}"), overhead));
    }
    // The four noisy families benched above the noiseless baseline — the
    // CI bar checks this count so a silently-dropped model fails loudly.
    metrics.push(("models".into(), 4.0));
    // Headline throughput on the noiseless baseline, for the trajectory.
    #[allow(clippy::cast_precision_loss)]
    metrics.push(("node_rounds_per_sec".into(), n as f64 * 1e9 / noiseless_ns));
    group.finish();
    // The JSON file is CI's perf contract — a failed write must fail the
    // bench, or the perf bar would validate stale cached metrics.
    let path = beep_bench::perfjson::write_bench_json("e10", &metrics)
        .expect("BENCH_e10.json must be written (CI's perf bar reads it)");
    println!("metrics written to {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_channel_models
}
criterion_main!(benches);
