//! Microbenchmarks of the hot inner loop: bulk bit-string operations at
//! the sizes Algorithm 1 actually uses (codeword length `c³(Δ+1)B` ≈
//! 3k–40k bits).

use beep_bits::{superimpose, BitVec};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bitops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec");
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [3_024usize, 44_064] {
        let a = BitVec::random_uniform(bits, &mut rng);
        let b = BitVec::random_uniform(bits, &mut rng);
        group.bench_function(format!("and_not_count {bits}b"), |bch| {
            bch.iter(|| black_box(a.and_not_count(black_box(&b))));
        });
        group.bench_function(format!("hamming {bits}b"), |bch| {
            bch.iter(|| black_box(a.hamming_distance(black_box(&b))));
        });
        group.bench_function(format!("or {bits}b"), |bch| {
            bch.iter(|| black_box(&a | &b));
        });
        let weight = bits / 20;
        group.bench_function(format!("sample weight={weight} of {bits}b"), |bch| {
            bch.iter(|| black_box(BitVec::random_with_weight(bits, weight, &mut rng)));
        });
        group.bench_function(format!("noise ε=0.1 {bits}b"), |bch| {
            bch.iter(|| black_box(a.flipped_with_noise(0.1, &mut rng)));
        });
    }
    // Superimposition of a full neighborhood (Δ+1 = 9 codewords).
    let words: Vec<BitVec> = (0..9)
        .map(|_| BitVec::random_uniform(7_776, &mut rng))
        .collect();
    group.bench_function("superimpose 9 × 7776b", |bch| {
        bch.iter(|| black_box(superimpose(&words).unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_bitops
}
criterion_main!(benches);
