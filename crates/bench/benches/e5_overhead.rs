//! Wall-clock cost of simulating one Broadcast CONGEST round (companion
//! to table E5): Algorithm 1 versus the TDMA baseline on the same graph
//! and channel, bit-round by bit-round through the engine. Each arm runs
//! on its own named network seed so the two noise streams are independent.

use beep_congest::{Message, MessageWriter};
use beep_core::baseline::TdmaSimulator;
use beep_core::{BroadcastSimulator, SimulationParams};
use beep_net::{topology, BeepNetwork, Noise};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const B: usize = 16;

/// Distinct per-arm network seeds: the two simulators must NOT share a
/// noise stream, or their draws would be silently correlated and the
/// comparison would measure paired, not independent, executions. (If
/// paired-seed variance reduction is ever wanted, make it explicit by
/// setting these equal and saying so here.)
const ALGORITHM1_NET_SEED: u64 = 0xA1_5EED;
const TDMA_NET_SEED: u64 = 0x7D_5EED;

fn outgoing(n: usize) -> Vec<Option<Message>> {
    (0..n as u64)
        .map(|v| Some(MessageWriter::new().push_uint(v, B.min(63)).finish(B)))
        .collect()
}

fn bench_round_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_bc_round");
    group.sample_size(10);
    for (name, graph, eps) in [
        ("cycle n=32 ε=0", topology::cycle(32).unwrap(), 0.0),
        ("cycle n=32 ε=0.1", topology::cycle(32).unwrap(), 0.1),
        (
            "gnp n=64 Δ≈8 ε=0.1",
            {
                let mut rng = StdRng::seed_from_u64(1);
                topology::gnp(64, 8.0 / 63.0, &mut rng).unwrap()
            },
            0.1,
        ),
    ] {
        let n = graph.node_count();
        let delta = graph.max_degree();
        let params = SimulationParams::calibrated(eps);
        let noise = if eps == 0.0 {
            Noise::Noiseless
        } else {
            // The fallible constructor keeps a bad table entry an error
            // message instead of a panic deep inside the engine.
            Noise::try_bernoulli(eps).expect("bench rates lie in the paper's (0, ½)")
        };
        let sim = BroadcastSimulator::new(params, B, delta).unwrap();
        let msgs = outgoing(n);
        group.bench_function(
            format!(
                "algorithm1 {name} ({} beep rounds)",
                sim.rounds_per_congest_round()
            ),
            |b| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let mut net = BeepNetwork::new(graph.clone(), noise, ALGORITHM1_NET_SEED);
                    black_box(sim.simulate_round(&mut net, &msgs, &mut rng).unwrap())
                });
            },
        );
        let tdma = TdmaSimulator::new(&graph, B, eps);
        group.bench_function(
            format!(
                "tdma {name} ({} beep rounds)",
                tdma.rounds_per_congest_round()
            ),
            |b| {
                b.iter(|| {
                    let mut net = BeepNetwork::new(graph.clone(), noise, TDMA_NET_SEED);
                    black_box(tdma.simulate_round(&mut net, &msgs).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round_simulation);
criterion_main!(benches);
