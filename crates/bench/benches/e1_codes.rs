//! Wall-clock microbenchmarks for the code layer (companion to table E1):
//! encoding and decoding throughput of beep / distance / Kautz–Singleton
//! codes at paper-like parameters.

use beep_bits::{superimpose, BitVec};
use beep_codes::{
    BeepCode, BeepCodeParams, DistanceCode, DistanceCodeParams, KautzSingleton, MessageDecoder,
    SetDecoder,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for (a, k, cc) in [(16usize, 8usize, 3usize), (32, 16, 3), (64, 32, 3)] {
        let params = BeepCodeParams::new(a, k, cc).unwrap();
        let code = BeepCode::with_seed(params, 1);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(
            format!("beep a={a} k={k} c={cc} (len {})", params.length()),
            |b| {
                b.iter_batched(
                    || BitVec::random_uniform(a, &mut rng),
                    |r| black_box(code.encode(&r)),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    let dist = DistanceCode::with_seed(DistanceCodeParams::new(32, 9).unwrap(), 1);
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("distance B=32 c=9", |b| {
        b.iter_batched(
            || BitVec::random_uniform(32, &mut rng),
            |m| black_box(dist.encode(&m)),
            BatchSize::SmallInput,
        );
    });
    let ks = KautzSingleton::new(32, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function(
        format!("kautz-singleton a=32 k=16 (len {})", ks.params().length()),
        |b| {
            b.iter_batched(
                || BitVec::random_uniform(32, &mut rng),
                |m| black_box(ks.encode(&m)),
                BatchSize::SmallInput,
            );
        },
    );
    group.finish();
}

fn bench_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    let params = BeepCodeParams::new(32, 16, 3).unwrap();
    let code = BeepCode::with_seed(params, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let members: Vec<BitVec> = (0..16)
        .map(|_| BitVec::random_uniform(32, &mut rng))
        .collect();
    let sup = superimpose(
        members
            .iter()
            .map(|r| code.encode(r))
            .collect::<Vec<_>>()
            .iter(),
    )
    .unwrap()
    .flipped_with_noise(0.1, &mut rng);
    let decoder = SetDecoder::new(&code, 0.1);
    group.bench_function("set-decode 16 members + 16 decoys (noisy)", |b| {
        let decoys: Vec<BitVec> = (0..16)
            .map(|_| BitVec::random_uniform(32, &mut rng))
            .collect();
        b.iter(|| {
            let mut accepted = 0;
            for r in members.iter().chain(&decoys) {
                if decoder.accepts(black_box(r), &sup) {
                    accepted += 1;
                }
            }
            black_box(accepted)
        });
    });

    let dist = DistanceCode::with_seed(DistanceCodeParams::new(16, 18).unwrap(), 1);
    let msg_decoder = MessageDecoder::new(&dist);
    let truth = BitVec::random_uniform(16, &mut rng);
    let received = dist.encode(&truth).flipped_with_noise(0.1, &mut rng);
    let candidates: Vec<BitVec> = std::iter::once(truth)
        .chain((0..63).map(|_| BitVec::random_uniform(16, &mut rng)))
        .collect();
    group.bench_function("message-decode 64 candidates (noisy)", |b| {
        b.iter(|| {
            black_box(
                msg_decoder
                    .decode_candidates(&received, candidates.iter())
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encoding, bench_decoding
}
criterion_main!(benches);
