//! The perf trajectory: `BENCH_TRAJECTORY.json`
//! (`beep-bench-trajectory`, version 1).
//!
//! CI appends one row per headline metric per run and re-uploads the
//! merged file as an artifact, so throughput history is queryable across
//! commits without an external dashboard; on releases the file is
//! committed. The `check_bench` binary does both halves: `--trajectory`
//! appends rows, `--baseline` compares the current metrics file against a
//! previous run's within a tolerance band.
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "beep-bench-trajectory",
//!   "version": 1,
//!   "rows": [
//!     { "bench": "e8", "key": "node_rounds_per_sec_n100000",
//!       "value": 2.1e10, "commit": "abc1234" }
//!   ]
//! }
//! ```

use beep_scenarios::json::Json;
use std::path::Path;

/// Schema identifier of the trajectory file.
pub const SCHEMA_NAME: &str = "beep-bench-trajectory";
/// Current schema version.
pub const SCHEMA_VERSION: i64 = 1;

/// One appended measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Bench id the metric came from (`e8`, `e9`, …).
    pub bench: String,
    /// Metric key within that bench's `BENCH_*.json`.
    pub key: String,
    /// Measured value.
    pub value: f64,
    /// Commit the measurement was taken at (short SHA, or `local`).
    pub commit: String,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::Str(self.bench.clone())),
            ("key", Json::Str(self.key.clone())),
            ("value", Json::Float(self.value)),
            ("commit", Json::Str(self.commit.clone())),
        ])
    }

    fn from_json(json: &Json) -> Result<Row, String> {
        let field = |k: &str| {
            json.get(k)
                .ok_or_else(|| format!("trajectory row missing {k:?}"))
        };
        Ok(Row {
            bench: field("bench")?
                .as_str()
                .ok_or("trajectory row: bench is not a string")?
                .to_string(),
            key: field("key")?
                .as_str()
                .ok_or("trajectory row: key is not a string")?
                .to_string(),
            value: field("value")?
                .as_f64()
                .ok_or("trajectory row: value is not a number")?,
            commit: field("commit")?
                .as_str()
                .ok_or("trajectory row: commit is not a string")?
                .to_string(),
        })
    }
}

/// Serializes rows to the schema above.
#[must_use]
pub fn trajectory_json(rows: &[Row]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA_NAME.into())),
        ("version", Json::Int(SCHEMA_VERSION)),
        ("rows", Json::Arr(rows.iter().map(Row::to_json).collect())),
    ])
}

/// Reads a trajectory file; a missing file is an empty trajectory (the
/// first run of a fresh clone has no history yet).
///
/// # Errors
///
/// Returns a human-readable message on parse or schema failures.
pub fn read_trajectory(path: &Path) -> Result<Vec<Row>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match json.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA_NAME => {}
        other => {
            return Err(format!(
                "{}: schema is {other:?}, expected {SCHEMA_NAME:?}",
                path.display()
            ))
        }
    }
    match json.get("version").and_then(Json::as_i64) {
        Some(v) if v == SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "{}: version is {other:?}, expected {SCHEMA_VERSION}",
                path.display()
            ))
        }
    }
    json.get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{}: missing rows array", path.display()))?
        .iter()
        .map(Row::from_json)
        .collect()
}

/// Appends rows to a trajectory file, creating it if missing.
///
/// # Errors
///
/// Propagates read/parse errors from [`read_trajectory`] and filesystem
/// errors on the write.
pub fn append_rows(path: &Path, new_rows: &[Row]) -> Result<usize, String> {
    let mut rows = read_trajectory(path)?;
    rows.extend_from_slice(new_rows);
    std::fs::write(path, trajectory_json(&rows).to_pretty())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(rows.len())
}

/// Verdict of a tolerance-band comparison against a baseline value.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the band (or improved).
    Ok,
    /// Regressed beyond the band; the message names the numbers.
    Regressed(String),
}

/// Compares `current` against `baseline` for a higher-is-better metric:
/// a drop of more than `tolerance` (a fraction, e.g. `0.3` allows −30%)
/// regresses. Run-to-run variance on shared CI runners is real — the
/// band, not equality, is the contract.
#[must_use]
pub fn compare(key: &str, current: f64, baseline: f64, tolerance: f64) -> Verdict {
    let floor = baseline * (1.0 - tolerance);
    if current >= floor {
        Verdict::Ok
    } else {
        Verdict::Regressed(format!(
            "{key}: {current:.3e} is below {floor:.3e} \
             (baseline {baseline:.3e} − {:.0}% tolerance)",
            tolerance * 100.0
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bench: &str, key: &str, value: f64) -> Row {
        Row {
            bench: bench.into(),
            key: key.into(),
            value,
            commit: "abc1234".into(),
        }
    }

    #[test]
    fn rows_roundtrip_through_the_schema() {
        let dir = std::env::temp_dir().join("beep-bench-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TRAJECTORY.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_trajectory(&path).unwrap(), vec![]);
        let first = vec![row("e8", "node_rounds_per_sec_n100000", 2.1e10)];
        assert_eq!(append_rows(&path, &first).unwrap(), 1);
        let second = vec![row("e9", "node_rounds_per_sec_n1000000", 4.0e9)];
        assert_eq!(append_rows(&path, &second).unwrap(), 2);
        let rows = read_trajectory(&path).unwrap();
        assert_eq!(rows, vec![first[0].clone(), second[0].clone()]);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join("beep-bench-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TRAJECTORY_bad.json");
        std::fs::write(
            &path,
            "{\"schema\": \"other\", \"version\": 1, \"rows\": []}",
        )
        .unwrap();
        assert!(read_trajectory(&path).unwrap_err().contains("schema"));
    }

    #[test]
    fn tolerance_band_flags_only_real_regressions() {
        assert_eq!(compare("k", 100.0, 100.0, 0.3), Verdict::Ok);
        assert_eq!(compare("k", 150.0, 100.0, 0.3), Verdict::Ok); // improved
        assert_eq!(compare("k", 71.0, 100.0, 0.3), Verdict::Ok); // inside band
        assert!(matches!(
            compare("k", 69.0, 100.0, 0.3),
            Verdict::Regressed(_)
        ));
        assert!(matches!(
            compare("k", 0.0, 100.0, 0.3),
            Verdict::Regressed(_)
        ));
    }
}
