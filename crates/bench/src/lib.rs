#![warn(missing_docs)]

//! Experiment harness for the `noisy-beeps` reproduction.
//!
//! One function per experiment in DESIGN.md §5 / EXPERIMENTS.md, each
//! returning a printable [`Table`] whose rows regenerate the corresponding
//! quantitative claim of the paper. The `tables` binary prints them:
//!
//! ```sh
//! cargo run --release -p beep-bench --bin tables -- all
//! cargo run --release -p beep-bench --bin tables -- e5
//! ```
//!
//! Wall-clock performance (encode/decode/simulation throughput) lives in
//! the Criterion benches (`cargo bench`); the engine benches additionally
//! emit machine-readable `BENCH_*.json` metric files (see [`perfjson`])
//! that CI's perf bars parse and archives as the perf trajectory.
//!
//! Scenario sweeps are driven by the `campaign` binary (a thin CLI over
//! `beep-scenarios`):
//!
//! ```sh
//! cargo run --release -p beep-bench --bin campaign -- --spec scenarios/smoke.toml
//! ```

pub mod experiments;
pub mod perfjson;
mod table;
pub mod trajectory;

pub use table::Table;
