//! E7, E11: the maximal matching application (Section 6).

use super::fmt_f;
use crate::Table;
use beep_apps::maximal_matching;
use beep_core::baseline::{log_star, matching_beeps_ours, matching_beeps_prior};
use beep_net::topology;

/// E7 — Lemma 20 + Theorem 21: matching scales as `O(log n)` Broadcast
/// CONGEST rounds and `O(Δ log² n)` noisy beep rounds.
///
/// Runs the complete pipeline (Algorithm 3 → Algorithm 1 → noisy engine)
/// on cycles of doubling size at ε = 0.05; every output is validated for
/// symmetry and maximality before the row is emitted.
#[must_use]
pub fn e7_matching_scaling(seed: u64) -> Table {
    let eps = 0.05;
    let mut t = Table::new(
        "E7 (Thm 21): maximal matching over noisy beeps (ε = 0.05), cycles",
        &[
            "n",
            "Δ",
            "BC rounds",
            "BC/log₂n",
            "beep/BC",
            "total beeps rounds",
            "valid",
        ],
    );
    for n in [8usize, 16, 32, 64] {
        let graph = topology::cycle(n).expect("valid cycle");
        let result =
            maximal_matching(&graph, eps, seed + n as u64).expect("matching succeeds w.h.p.");
        let log_n = (n as f64).log2();
        t.push(vec![
            n.to_string(),
            graph.max_degree().to_string(),
            result.report.congest_rounds.to_string(),
            fmt_f(result.report.congest_rounds as f64 / log_n),
            result.report.beep_rounds_per_congest_round.to_string(),
            result.report.beep_rounds.to_string(),
            "true".into(), // validation already enforced by maximal_matching
        ]);
    }
    t.set_note(
        "BC/log₂n stays bounded (Lemma 20's O(log n) iterations, 4 communication rounds \
each); beep/BC is the Θ(Δ log n) Theorem 11 overhead (message width B = Θ(log n) grows \
with n). Total = product: the Θ(Δ log² n) of Theorem 21.",
    );
    t
}

/// E7b — Theorem 22: matching needs `Ω(Δ log n)` beep rounds, and our
/// pipeline sits within an `O(c³ log n)` factor of that bound.
///
/// Runs the full matching pipeline on the theorem's hard topology
/// `K_{Δ,Δ}` and compares measured beep rounds to the `Δ·log₂ n` bound.
#[must_use]
pub fn e7b_matching_lower_bound(seed: u64) -> Table {
    let mut t = Table::new(
        "E7b (Thm 22): matching on K_{Δ,Δ} vs the Ω(Δ log n) lower bound (ε = 0)",
        &[
            "Δ",
            "n",
            "measured beep rounds",
            "Δ·log₂n bound",
            "ratio",
            "ratio/(c³·log₂n)",
        ],
    );
    for delta in [2usize, 3, 4, 6] {
        let graph = topology::complete_bipartite(delta, delta).expect("valid");
        let n = graph.node_count();
        let result = maximal_matching(&graph, 0.0, seed + delta as u64).expect("matching succeeds");
        let log_n = (n as f64).log2();
        let bound = delta as f64 * log_n;
        let ratio = result.report.beep_rounds as f64 / bound;
        // The calibrated profile uses c = 3 at ε = 0 ⇒ c³ = 27.
        let normalized = ratio / (27.0 * log_n);
        t.push(vec![
            delta.to_string(),
            n.to_string(),
            result.report.beep_rounds.to_string(),
            fmt_f(bound),
            fmt_f(ratio),
            fmt_f(normalized),
        ]);
    }
    t.set_note(
        "Theorem 22 proves Ω(Δ log n) rounds are necessary for matching even without noise; \
Theorem 21 achieves O(Δ log² n). The measured ratio over the lower bound, normalized by the \
implementation constant c³ and the extra log n, stays bounded — the upper and lower bounds \
sandwich the pipeline to within the paper's log n gap.",
    );
    t
}

/// E11 — Section 6's improvement claim: `≈ Δ³/log n` over the prior
/// state of the art (the `O(Δ + log* n)` CONGEST matching of \[26\] under
/// \[4\]'s simulation), in the closed-form cost models.
#[must_use]
pub fn e11_matching_cost_crossover() -> Table {
    let n = 1 << 16;
    let mut t = Table::new(
        "E11 (§6): matching cost models, n = 2^16 (unit constants; shapes only)",
        &[
            "Δ",
            "prior [4]+[26]",
            "ours (Thm 21)",
            "improvement",
            "≈ Δ³/log n",
        ],
    );
    for delta in [2usize, 4, 8, 16, 32, 64, 128] {
        let prior = matching_beeps_prior(delta, n);
        let ours = matching_beeps_ours(delta, n);
        let predicted = (delta as f64).powi(3) / (n as f64).log2();
        t.push(vec![
            delta.to_string(),
            fmt_f(prior),
            fmt_f(ours),
            fmt_f(prior / ours),
            fmt_f(predicted),
        ]);
    }
    t.set_note(&format!(
        "improvement tracks the paper's ≈ Δ³/log n factor as Δ grows (log* n = {} here); \
absolute values are unit-constant models, only the shape is meaningful.",
        log_star(n as f64)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_bc_rounds_grow_sublinearly() {
        let t = e7_matching_scaling(8);
        let rounds: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let ns: Vec<f64> = t.rows.iter().map(|r| r[0].parse().unwrap()).collect();
        // 8× growth in n must not produce 8× growth in BC rounds.
        let growth = rounds.last().unwrap() / rounds.first().unwrap();
        let n_growth = ns.last().unwrap() / ns.first().unwrap();
        assert!(
            growth < n_growth / 2.0,
            "rounds grew {growth}× for {n_growth}× nodes"
        );
    }

    #[test]
    fn e7b_normalized_ratio_is_bounded() {
        let t = e7b_matching_lower_bound(21);
        let normalized: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        let max = normalized.iter().cloned().fold(0.0, f64::max);
        let min = normalized.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 8.0,
            "normalized ratios {normalized:?} not bounded"
        );
    }

    #[test]
    fn e11_improvement_is_monotone_in_delta() {
        let t = e11_matching_cost_crossover();
        let improvements: Vec<f64> = t
            .rows
            .iter()
            .map(|r| {
                r[3].parse::<f64>().unwrap_or_else(|_| {
                    // fmt_f may have used scientific notation
                    r[3].parse::<f64>().unwrap()
                })
            })
            .collect();
        for pair in improvements.windows(2) {
            assert!(pair[1] > pair[0], "{improvements:?}");
        }
    }
}
