//! E7, E11: the maximal matching application (Section 6).

use super::{campaign_metric, fmt_f, run_thin_campaign};
use crate::Table;
use beep_apps::{maximal_matching, Protocol};
use beep_core::baseline::{log_star, matching_beeps_ours, matching_beeps_prior};
use beep_net::topology;
use beep_scenarios::{TopologyFamily, TopologySpec};

/// E7 — Lemma 20 + Theorem 21: matching scales as `O(log n)` Broadcast
/// CONGEST rounds and `O(Δ log² n)` noisy beep rounds.
///
/// A *thin campaign spec*: the sweep (cycles of doubling size × ε = 0.05
/// × matching) is declared and handed to the scenario layer, which runs
/// the complete pipeline (Algorithm 3 → Algorithm 1 → noisy engine) per
/// cell and validates every output for symmetry and maximality.
#[must_use]
pub fn e7_matching_scaling(seed: u64) -> Table {
    let report = run_thin_campaign(
        "e7-matching-scaling",
        vec![TopologySpec {
            family: TopologyFamily::Cycle,
            sizes: vec![8, 16, 32, 64],
        }],
        vec![0.05],
        vec![Protocol::Matching],
        seed,
    );
    let mut t = Table::new(
        "E7 (Thm 21): maximal matching over noisy beeps (ε = 0.05), cycles",
        &[
            "n",
            "Δ",
            "BC rounds",
            "BC/log₂n",
            "beep/BC",
            "total beeps rounds",
            "valid",
        ],
    );
    for cell in &report.cells {
        let log_n = (cell.n as f64).log2();
        let bc_rounds = campaign_metric(cell, "congest_rounds");
        t.push(vec![
            cell.n.to_string(),
            cell.max_degree.to_string(),
            format!("{bc_rounds:.0}"),
            fmt_f(bc_rounds / log_n),
            format!(
                "{:.0}",
                campaign_metric(cell, "beep_rounds_per_congest_round")
            ),
            cell.rounds.to_string(),
            cell.success.to_string(),
        ]);
    }
    t.set_note(
        "BC/log₂n stays bounded (Lemma 20's O(log n) iterations, 4 communication rounds \
each); beep/BC is the Θ(Δ log n) Theorem 11 overhead (message width B = Θ(log n) grows \
with n). Total = product: the Θ(Δ log² n) of Theorem 21. Rows are campaign cells (the \
sweep is a declarative spec over the scenario layer).",
    );
    t
}

/// E7b — Theorem 22: matching needs `Ω(Δ log n)` beep rounds, and our
/// pipeline sits within an `O(c³ log n)` factor of that bound.
///
/// Runs the full matching pipeline on the theorem's hard topology
/// `K_{Δ,Δ}` and compares measured beep rounds to the `Δ·log₂ n` bound.
#[must_use]
pub fn e7b_matching_lower_bound(seed: u64) -> Table {
    let mut t = Table::new(
        "E7b (Thm 22): matching on K_{Δ,Δ} vs the Ω(Δ log n) lower bound (ε = 0)",
        &[
            "Δ",
            "n",
            "measured beep rounds",
            "Δ·log₂n bound",
            "ratio",
            "ratio/(c³·log₂n)",
        ],
    );
    for delta in [2usize, 3, 4, 6] {
        let graph = topology::complete_bipartite(delta, delta).expect("valid");
        let n = graph.node_count();
        let result = maximal_matching(&graph, 0.0, seed + delta as u64).expect("matching succeeds");
        let log_n = (n as f64).log2();
        let bound = delta as f64 * log_n;
        let ratio = result.report.beep_rounds as f64 / bound;
        // The calibrated profile uses c = 3 at ε = 0 ⇒ c³ = 27.
        let normalized = ratio / (27.0 * log_n);
        t.push(vec![
            delta.to_string(),
            n.to_string(),
            result.report.beep_rounds.to_string(),
            fmt_f(bound),
            fmt_f(ratio),
            fmt_f(normalized),
        ]);
    }
    t.set_note(
        "Theorem 22 proves Ω(Δ log n) rounds are necessary for matching even without noise; \
Theorem 21 achieves O(Δ log² n). The measured ratio over the lower bound, normalized by the \
implementation constant c³ and the extra log n, stays bounded — the upper and lower bounds \
sandwich the pipeline to within the paper's log n gap.",
    );
    t
}

/// E11 — Section 6's improvement claim: `≈ Δ³/log n` over the prior
/// state of the art (the `O(Δ + log* n)` CONGEST matching of \[26\] under
/// \[4\]'s simulation), in the closed-form cost models.
#[must_use]
pub fn e11_matching_cost_crossover() -> Table {
    let n = 1 << 16;
    let mut t = Table::new(
        "E11 (§6): matching cost models, n = 2^16 (unit constants; shapes only)",
        &[
            "Δ",
            "prior [4]+[26]",
            "ours (Thm 21)",
            "improvement",
            "≈ Δ³/log n",
        ],
    );
    for delta in [2usize, 4, 8, 16, 32, 64, 128] {
        let prior = matching_beeps_prior(delta, n);
        let ours = matching_beeps_ours(delta, n);
        let predicted = (delta as f64).powi(3) / (n as f64).log2();
        t.push(vec![
            delta.to_string(),
            fmt_f(prior),
            fmt_f(ours),
            fmt_f(prior / ours),
            fmt_f(predicted),
        ]);
    }
    t.set_note(&format!(
        "improvement tracks the paper's ≈ Δ³/log n factor as Δ grows (log* n = {} here); \
absolute values are unit-constant models, only the shape is meaningful.",
        log_star(n as f64)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_bc_rounds_grow_sublinearly() {
        let t = e7_matching_scaling(8);
        let rounds: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let ns: Vec<f64> = t.rows.iter().map(|r| r[0].parse().unwrap()).collect();
        // 8× growth in n must not produce 8× growth in BC rounds.
        let growth = rounds.last().unwrap() / rounds.first().unwrap();
        let n_growth = ns.last().unwrap() / ns.first().unwrap();
        assert!(
            growth < n_growth / 2.0,
            "rounds grew {growth}× for {n_growth}× nodes"
        );
    }

    #[test]
    fn e7b_normalized_ratio_is_bounded() {
        let t = e7b_matching_lower_bound(21);
        let normalized: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        let max = normalized.iter().cloned().fold(0.0, f64::max);
        let min = normalized.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 8.0,
            "normalized ratios {normalized:?} not bounded"
        );
    }

    #[test]
    fn e11_improvement_is_monotone_in_delta() {
        let t = e11_matching_cost_crossover();
        let improvements: Vec<f64> = t
            .rows
            .iter()
            .map(|r| {
                r[3].parse::<f64>().unwrap_or_else(|_| {
                    // fmt_f may have used scientific notation
                    r[3].parse::<f64>().unwrap()
                })
            })
            .collect();
        for pair in improvements.windows(2) {
            assert!(pair[1] > pair[0], "{improvements:?}");
        }
    }
}
