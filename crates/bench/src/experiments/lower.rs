//! E8: the Lemma 14 / Corollary 16 lower-bound census.

use super::fmt_f;
use crate::Table;
use beep_core::lower_bound::transcript::tdma_local_broadcast_census;

/// E8 — Lemma 14: the `2^{T−Δ²B}` success ceiling, measured.
///
/// Runs the rate-optimal TDMA reference protocol on `K_{Δ,Δ}` through the
/// real engine with shrinking round budgets, recording the right part's
/// OR-transcript, and compares the measured full-recovery rate to the
/// information-theoretic ceiling.
#[must_use]
pub fn e8_lower_bound_census(seed: u64) -> Table {
    let delta = 2;
    let message_bits = 4;
    let input_bits = delta * delta * message_bits;
    let trials = 600;
    let mut t = Table::new(
        "E8 (Lemma 14): transcript counting on K_{2,2}, B = 4 (Δ²B = 16 input bits)",
        &[
            "T (rounds)",
            "conveyed bits",
            "distinct transcripts",
            "ceiling 2^(T−Δ²B)",
            "measured success",
        ],
    );
    for budget in [
        input_bits + 4,
        input_bits,
        input_bits - 1,
        input_bits - 2,
        input_bits - 3,
        input_bits - 6,
        input_bits / 2,
    ] {
        let report = tdma_local_broadcast_census(delta, message_bits, budget, trials, seed);
        let ceiling = if report.ceiling_log2 >= 0 {
            1.0
        } else {
            2f64.powi(i32::try_from(report.ceiling_log2).expect("small exponent"))
        };
        t.push(vec![
            report.rounds_budget.to_string(),
            report.recovered_bits.to_string(),
            report.distinct_transcripts.to_string(),
            fmt_f(ceiling),
            fmt_f(report.success_rate),
        ]);
    }
    t.set_note(
        "each missing round halves the best achievable success probability, exactly matching \
the 2^(T−Δ²B) counting bound; with T ≥ Δ²B recovery is total. Hence Ω(Δ²B) rounds are \
necessary (Lemma 14) and Corollary 12's O(Δ²·log n) simulation is optimal (Corollary 16).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_full_budget_row_is_perfect() {
        let t = e8_lower_bound_census(9);
        // Row with T = Δ²B (second row) must be fully successful.
        assert_eq!(t.rows[1][4], "1.00");
        assert_eq!(t.rows[1][1], "16");
    }

    #[test]
    fn e8_truncated_rows_track_ceiling() {
        let t = e8_lower_bound_census(10);
        // T = Δ²B − 2 row: ceiling 0.25, measured within binomial noise.
        let row = &t.rows[3];
        let ceiling: f64 = row[3].parse().unwrap();
        let measured: f64 = row[4].parse().unwrap();
        assert!((ceiling - 0.25).abs() < 1e-9);
        assert!((measured - ceiling).abs() < 0.1, "{measured} vs {ceiling}");
    }
}
