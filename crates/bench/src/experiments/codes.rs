//! E1, E2, E9: code-level experiments (paper Section 2 and Figure 1).

use super::fmt_f;
use crate::Table;
use beep_bits::{superimpose, BitVec};
use beep_codes::{
    verify, BeepCode, BeepCodeParams, CombinedCode, DistanceCode, DistanceCodeParams,
    KautzSingleton, SetDecoder,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// E1 — Theorem 4 versus the classical Kautz–Singleton construction.
///
/// For `a = 16` input bits, sweeping `k` and the expansion `c`: the
/// Definition 3 bad-event rate on random size-`k` subsets, the decoder
/// false-positive rate, and the length comparison against the classical
/// `(a,k)`-superimposed code. The paper's claim: beep codes of length
/// `Θ(ka)` suffice for random superimpositions, where the classical
/// guarantee needs `Θ(k²a)`.
#[must_use]
pub fn e1_beep_code_vs_classical(seed: u64) -> Table {
    let a = 16;
    let trials = 1000;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "E1 (Thm 4 + §1.4): beep codes vs classical superimposed codes, a = 16",
        &[
            "k",
            "c",
            "beep len",
            "def3 fail",
            "decoder FP",
            "KS len",
            "KS/beep",
        ],
    );
    for k in [4usize, 8, 16] {
        let ks = KautzSingleton::new(a, k).expect("valid params");
        let ks_len = ks.params().length();
        for c in [2usize, 3, 5, 7] {
            let params = BeepCodeParams::new(a, k, c).expect("valid params");
            let code = BeepCode::with_seed(params, seed);
            let check = verify::check_beep_code(&code, trials, &mut rng);
            // Decoder false positives at ε = 0: outsiders accepted against
            // a random size-k superimposition.
            let decoder = SetDecoder::new(&code, 0.0);
            let mut fp = 0usize;
            let fp_trials = 300;
            for _ in 0..fp_trials {
                let inputs: Vec<BitVec> = (0..=k)
                    .map(|_| BitVec::random_uniform(a, &mut rng))
                    .collect();
                let words: Vec<BitVec> = inputs[..k].iter().map(|r| code.encode(r)).collect();
                let sup = superimpose(&words).expect("k ≥ 1");
                if decoder.accepts(&inputs[k], &sup) {
                    fp += 1;
                }
            }
            t.push(vec![
                k.to_string(),
                c.to_string(),
                params.length().to_string(),
                fmt_f(check.failure_rate()),
                fmt_f(fp as f64 / fp_trials as f64),
                ks_len.to_string(),
                fmt_f(ks_len as f64 / params.length() as f64),
            ]);
        }
    }
    t.set_note(
        "def3 fail = rate of the Definition 3 bad event on random subsets (→ 0 for c ≥ 3); \
decoder FP = non-member acceptance rate at ε = 0 (needs c ≥ 3 to vanish); KS/beep = length \
advantage over the classical code, growing ≈ linearly in k as §1.4 predicts.",
    );
    t
}

/// E2 — Lemma 6: random codes hit the `δ = 1/3` distance target.
///
/// Sweeps the rate expansion `c_δ`; Lemma 6's sufficient condition is
/// `c_δ ≥ 108`, but the construction works empirically far below it —
/// the calibration headroom `beep-core` exploits.
#[must_use]
pub fn e2_distance_code(seed: u64) -> Table {
    let message_bits = 16;
    let pairs = 2000;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "E2 (Lemma 6): random distance codes, B = 16, target δ = 1/3",
        &[
            "c_δ",
            "len",
            "min d/b",
            "mean d/b",
            "violations",
            "Lemma 6 ok",
        ],
    );
    for expansion in [2usize, 4, 9, 16, 36, 108] {
        let params = DistanceCodeParams::new(message_bits, expansion).expect("valid params");
        let code = DistanceCode::with_seed(params, seed);
        let check = verify::check_distance_code(&code, 1.0 / 3.0, pairs, &mut rng);
        t.push(vec![
            expansion.to_string(),
            params.length().to_string(),
            fmt_f(check.min_distance as f64 / params.length() as f64),
            fmt_f(check.mean_distance / params.length() as f64),
            check.violations.to_string(),
            params.meets_lemma6_condition(1.0 / 3.0).to_string(),
        ]);
    }
    t.set_note(
        "mean distance concentrates at b/2; the δ = 1/3 target holds with zero violations \
well below Lemma 6's c_δ ≥ 108 requirement — the Chernoff constant is the slack the \
calibrated profile uses.",
    );
    t
}

/// E9 — Figure 1: the combined code `CD(r, m)`, rendered and checked.
///
/// Uses deliberately tiny parameters so the construction is readable:
/// beep code `(a=4, k=2, c=3)` → length 72, weight 12; distance code
/// 4-bit messages → 12 bits.
#[must_use]
pub fn e9_combined_code_figure(seed: u64) -> Table {
    let beep = BeepCode::with_seed(BeepCodeParams::new(4, 2, 3).expect("valid"), seed);
    let dist = DistanceCode::with_seed(
        DistanceCodeParams::with_length(4, beep.params().weight()).expect("valid"),
        seed,
    );
    let combined = CombinedCode::new(beep.clone(), dist.clone()).expect("weights match");
    let mut rng = StdRng::seed_from_u64(seed);
    let r = BitVec::from_u64_lsb(rng.random_range(0..16), 4);
    let m = BitVec::from_u64_lsb(rng.random_range(0..16), 4);
    let carrier = beep.encode(&r);
    let payload = dist.encode(&m);
    let cd = combined.encode(&r, &m);

    let mut t = Table::new(
        "E9 (Figure 1): combined code construction CD(r, m)",
        &["object", "bits"],
    );
    t.push(vec![format!("r = {r}"), String::new()]);
    t.push(vec![format!("m = {m}"), String::new()]);
    t.push(vec!["C(r)".into(), carrier.to_string()]);
    t.push(vec!["D(m)".into(), payload.to_string()]);
    t.push(vec!["CD(r,m)".into(), cd.to_string()]);
    // Structural checks (Notation 7): payload readable at carrier 1s,
    // zero elsewhere.
    let projected = CombinedCode::project(&cd, &carrier).expect("same length");
    let structure_ok = projected == payload && cd.is_subset_of(&carrier);
    t.push(vec!["structure valid".into(), structure_ok.to_string()]);
    t.set_note(
        "CD writes the i-th bit of D(m) at the position of the i-th 1 of C(r); projecting the \
last row onto the 1-positions of C(r) recovers D(m) exactly (Figure 1 / Notation 7).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_and_trends() {
        let t = e1_beep_code_vs_classical(1);
        assert_eq!(t.rows.len(), 12);
        // At c = 7 the decoder FP column must be ~0 for every k.
        for row in t.rows.iter().filter(|r| r[1] == "7") {
            let fp: f64 = row[4].parse().unwrap();
            assert!(fp < 0.02, "c=7 FP {fp}");
        }
    }

    #[test]
    fn e2_no_violations_at_high_rate() {
        let t = e2_distance_code(2);
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "108");
        assert_eq!(last[4], "0");
        assert_eq!(last[5], "true");
    }

    #[test]
    fn e9_structure_always_valid() {
        for seed in 0..5 {
            let t = e9_combined_code_figure(seed);
            assert_eq!(t.rows.last().unwrap()[1], "true", "seed {seed}");
        }
    }
}
