//! E3, E4: the Section 4 decoding lemmas under noise.

use super::fmt_f;
use crate::Table;
use beep_bits::{superimpose, BitVec};
use beep_codes::SetDecoder;
use beep_congest::{Message, MessageWriter};
use beep_core::{BroadcastSimulator, SimulationParams};
use beep_net::{topology, BeepNetwork, Noise};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS_SWEEP: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];

/// E3 — Lemmas 8–9: phase-1 set decoding under channel noise.
///
/// For each noise rate, builds the calibrated beep code for `(B = 16,
/// Δ = 6)`, superimposes `Δ+1` random codewords (a full inclusive
/// neighborhood), pushes the result through the binary symmetric channel,
/// and measures false-negative / false-positive rates of the threshold
/// decoder. The paper's claim: both vanish w.h.p. for every `ε < ½`.
#[must_use]
pub fn e3_phase1_decoding(seed: u64) -> Table {
    let message_bits = 16;
    let delta = 6;
    let trials = 300;
    let outsiders = 20;
    let mut t = Table::new(
        "E3 (Lemmas 8-9): phase-1 set decoding, B = 16, Δ = 6, calibrated c_ε",
        &["ε", "c_ε", "code len", "threshold", "FN rate", "FP rate"],
    );
    for eps in EPS_SWEEP {
        let params = SimulationParams::calibrated(eps);
        let codes = params.codes_for(message_bits, delta).expect("valid");
        let decoder = SetDecoder::new(&codes.beep, eps);
        let a = codes.beep.params().input_bits();
        let mut rng = StdRng::seed_from_u64(seed ^ (eps * 1000.0) as u64);
        let (mut fn_events, mut fn_total) = (0usize, 0usize);
        let (mut fp_events, mut fp_total) = (0usize, 0usize);
        for _ in 0..trials {
            let members: Vec<BitVec> = (0..=delta)
                .map(|_| BitVec::random_uniform(a, &mut rng))
                .collect();
            let clean = superimpose(
                members
                    .iter()
                    .map(|r| codes.beep.encode(r))
                    .collect::<Vec<_>>()
                    .iter(),
            )
            .expect("non-empty");
            let heard = clean.flipped_with_noise(eps, &mut rng);
            for r in &members {
                fn_total += 1;
                if !decoder.accepts(r, &heard) {
                    fn_events += 1;
                }
            }
            for _ in 0..outsiders {
                fp_total += 1;
                if decoder.accepts(&BitVec::random_uniform(a, &mut rng), &heard) {
                    fp_events += 1;
                }
            }
        }
        t.push(vec![
            format!("{eps:.2}"),
            params.expansion.to_string(),
            codes.beep.params().length().to_string(),
            decoder.threshold().to_string(),
            fmt_f(fn_events as f64 / fn_total as f64),
            fmt_f(fp_events as f64 / fp_total as f64),
        ]);
    }
    t.set_note(
        "FN = transmitted codeword rejected, FP = fresh random codeword accepted — the two bad \
events of Lemma 9. Both stay ≈ 0 across the whole noise range once c_ε is sized for ε, \
reproducing the paper's claim that noise costs no asymptotic overhead.",
    );
    t
}

/// E4 — Lemma 10: end-to-end message decoding through both phases.
///
/// Runs the full Algorithm 1 round on a star `K_{1,Δ}` (the center decodes
/// `Δ` simultaneous messages) over the real noisy engine, and measures
/// per-round perfection and message-error rates.
#[must_use]
pub fn e4_phase2_decoding(seed: u64) -> Table {
    let message_bits = 16;
    let delta = 6;
    let trials = 30;
    let mut t = Table::new(
        "E4 (Lemma 10): full two-phase round on K_{1,Δ}, B = 16, Δ = 6",
        &[
            "ε",
            "beep rounds",
            "msg errors",
            "FN",
            "FP(decoy)",
            "perfect rounds",
        ],
    );
    for eps in EPS_SWEEP {
        let params = SimulationParams::calibrated(eps).with_decoys(8);
        let graph = topology::star(delta + 1).expect("valid star");
        let sim = BroadcastSimulator::new(params, message_bits, delta).expect("valid");
        let noise = if eps == 0.0 {
            Noise::Noiseless
        } else {
            // The fallible constructor keeps a bad sweep entry an error
            // message instead of a panic deep inside the engine.
            Noise::try_bernoulli(eps).expect("EPS_SWEEP rates lie in the paper's (0, ½)")
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE4 ^ (eps * 1000.0) as u64);
        let mut stats = beep_core::RoundStats::default();
        for trial in 0..trials {
            let mut net = BeepNetwork::new(graph.clone(), noise, seed + trial);
            let outgoing: Vec<Option<Message>> = (0..=delta as u64)
                .map(|v| {
                    Some(
                        MessageWriter::new()
                            .push_uint(v * 31 + 1, 16)
                            .finish(message_bits),
                    )
                })
                .collect();
            let outcome = sim
                .simulate_round(&mut net, &outgoing, &mut rng)
                .expect("round");
            stats.merge(&outcome.stats);
        }
        t.push(vec![
            format!("{eps:.2}"),
            sim.rounds_per_congest_round().to_string(),
            stats.message_errors.to_string(),
            stats.false_negatives.to_string(),
            format!("{}/{}", stats.decoy_acceptances, stats.decoys_scored),
            format!("{}/{}", stats.rounds - stats.imperfect_rounds, stats.rounds),
        ]);
    }
    t.set_note(
        "Every row runs 30 complete Algorithm 1 rounds through the bit-level noisy engine. \
Perfect rounds deliver exactly what direct Broadcast CONGEST would — the Theorem 11 guarantee.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_rates_are_low_everywhere() {
        let t = e3_phase1_decoding(3);
        for row in &t.rows {
            let fn_rate: f64 = row[4].parse().unwrap();
            let fp_rate: f64 = row[5].parse().unwrap();
            assert!(fn_rate < 0.05, "ε = {}: FN {fn_rate}", row[0]);
            assert!(fp_rate < 0.05, "ε = {}: FP {fp_rate}", row[0]);
        }
    }

    #[test]
    fn e4_mostly_perfect_at_low_noise() {
        let t = e4_phase2_decoding(4);
        // ε = 0 row must be fully perfect.
        let first = &t.rows[0];
        assert_eq!(first[5], "30/30");
        assert_eq!(first[2], "0");
    }
}
