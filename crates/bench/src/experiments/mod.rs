//! The experiments of DESIGN.md §5, one function per table.
//!
//! Every function is deterministic given its seed and scaled to finish in
//! seconds on a laptop; EXPERIMENTS.md records reference output and the
//! paper claim each table checks.

mod codes;
mod decoding;
mod lower;
mod matching;
mod overhead;

pub use codes::{e1_beep_code_vs_classical, e2_distance_code, e9_combined_code_figure};
pub use decoding::{e3_phase1_decoding, e4_phase2_decoding};
pub use lower::e8_lower_bound_census;
pub use matching::{e11_matching_cost_crossover, e7_matching_scaling, e7b_matching_lower_bound};
pub use overhead::{
    e10_noise_independence, e5_broadcast_overhead, e5b_setup_cost, e6_congest_overhead,
};

use crate::Table;

/// Runs every experiment in order, returning all tables.
#[must_use]
pub fn all(seed: u64) -> Vec<Table> {
    vec![
        e1_beep_code_vs_classical(seed),
        e2_distance_code(seed),
        e3_phase1_decoding(seed),
        e4_phase2_decoding(seed),
        e5_broadcast_overhead(seed),
        e5b_setup_cost(seed),
        e6_congest_overhead(seed),
        e7_matching_scaling(seed),
        e7b_matching_lower_bound(seed),
        e8_lower_bound_census(seed),
        e9_combined_code_figure(seed),
        e10_noise_independence(seed),
        e11_matching_cost_crossover(),
    ]
}

/// Looks an experiment up by id (`"e1"` … `"e11"` or `"all"`).
#[must_use]
pub fn by_name(name: &str, seed: u64) -> Option<Vec<Table>> {
    Some(match name {
        "all" => all(seed),
        "e1" => vec![e1_beep_code_vs_classical(seed)],
        "e2" => vec![e2_distance_code(seed)],
        "e3" => vec![e3_phase1_decoding(seed)],
        "e4" => vec![e4_phase2_decoding(seed)],
        "e5" => vec![e5_broadcast_overhead(seed), e5b_setup_cost(seed)],
        "e6" => vec![e6_congest_overhead(seed)],
        "e7" => vec![e7_matching_scaling(seed), e7b_matching_lower_bound(seed)],
        "e8" => vec![e8_lower_bound_census(seed)],
        "e9" => vec![e9_combined_code_figure(seed)],
        "e10" => vec![e10_noise_independence(seed)],
        "e11" => vec![e11_matching_cost_crossover()],
        _ => return None,
    })
}

/// Runs a single-seed campaign for an experiment table and asserts every
/// cell executed — experiments are reference output, so a failed or
/// skipped cell is a bug, not data. The ported experiments (E6, E7) are
/// *thin specs*: they declare the sweep and let the scenario layer drive
/// the engine.
pub(crate) fn run_thin_campaign(
    name: &str,
    topologies: Vec<beep_scenarios::TopologySpec>,
    epsilons: Vec<f64>,
    protocols: Vec<beep_apps::Protocol>,
    seed: u64,
) -> beep_scenarios::CampaignReport {
    let spec = beep_scenarios::CampaignSpec {
        name: name.into(),
        topologies,
        epsilons,
        channels: vec![],
        faults: vec![],
        protocols,
        seeds: vec![seed],
    };
    let report = beep_scenarios::run_campaign(&spec, &beep_scenarios::RunOptions::default())
        .expect("experiment sweeps are non-empty");
    for cell in &report.cells {
        assert_eq!(
            cell.status,
            beep_scenarios::CellStatus::Ok,
            "cell {} did not run: {}",
            cell.id,
            cell.detail
        );
    }
    report
}

/// Looks a protocol metric up on a campaign cell (0 when absent).
pub(crate) fn campaign_metric(cell: &beep_scenarios::CellResult, key: &str) -> f64 {
    cell.metrics
        .iter()
        .find(|(k, _)| k == key)
        .map_or(0.0, |(_, v)| *v)
}

pub(crate) fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.3e}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}
