//! E5, E6, E10: the overhead claims (Theorem 11, Corollary 12, §1.3).

use super::{campaign_metric, fmt_f, run_thin_campaign};
use crate::Table;
use beep_apps::Protocol;
use beep_core::baseline::{
    agl_broadcast_overhead, beauquier_per_round, distance2_coloring, num_colors, TdmaSimulator,
};
use beep_core::lower_bound::lemma14_round_lower_bound;
use beep_core::SimulationParams;
use beep_net::topology;
use beep_scenarios::{TopologyFamily, TopologySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E5 — Theorem 11: Broadcast CONGEST overhead is `Θ(Δ·B)`, versus the
/// `Θ(min{n, Δ²}·B)` of the G²-coloring baselines.
///
/// Sweeps Δ on sparse random graphs (`n = 256`, expected degree Δ), where
/// distance-2 neighborhoods genuinely reach `Θ(Δ²)`: our overhead grows
/// linearly in Δ while the TDMA slot count grows quadratically.
#[must_use]
pub fn e5_broadcast_overhead(seed: u64) -> Table {
    let n = 256;
    let message_bits = 16;
    let params = SimulationParams::calibrated(0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let eps = 0.1;
    let noisy_params = SimulationParams::calibrated(eps);
    let mut t = Table::new(
        "E5 (Thm 11): Broadcast CONGEST overhead per round, n = 256, B = 16",
        &[
            "target Δ",
            "measured Δ",
            "G² colors",
            "ours ε=0",
            "TDMA ε=0",
            "ratio",
            "ours ε=.1",
            "TDMA ε=.1",
            "ratio",
            "AGL model",
            "[7] model",
        ],
    );
    for target_delta in [4usize, 8, 16, 32] {
        let p = target_delta as f64 / (n as f64 - 1.0);
        let graph = topology::gnp(n, p, &mut rng).expect("valid p");
        let delta = graph.max_degree();
        let ours0 = params.rounds_per_broadcast_round(message_bits, delta);
        let colors = num_colors(&distance2_coloring(&graph));
        let tdma0 = TdmaSimulator::new(&graph, message_bits, 0.0).rounds_per_congest_round();
        let ours_n = noisy_params.rounds_per_broadcast_round(message_bits, delta);
        let tdma_n = TdmaSimulator::new(&graph, message_bits, eps).rounds_per_congest_round();
        t.push(vec![
            target_delta.to_string(),
            delta.to_string(),
            colors.to_string(),
            ours0.to_string(),
            tdma0.to_string(),
            fmt_f(tdma0 as f64 / ours0 as f64),
            ours_n.to_string(),
            tdma_n.to_string(),
            fmt_f(tdma_n as f64 / ours_n as f64),
            fmt_f(agl_broadcast_overhead(delta, n)),
            fmt_f(beauquier_per_round(delta, n)),
        ]);
    }
    t.set_note(
        "ours = 2·c³·(Δ+1)·B grows linearly in Δ; the TDMA baseline needs one slot per G² \
color (→ Θ(Δ²) on sparse graphs), so the TDMA/ours ratio grows ≈ linearly in Δ — the \
paper's Θ(min{n/Δ, Δ}) improvement. At ε = 0 our constant c³ dominates at small Δ \
(ratio < 1); under noise (ε = 0.1) the baseline also pays ρ = Θ(log n) repetition and \
ours wins outright, with the gap still growing in Δ. Model columns use unit constants.",
    );
    t
}

/// E5b — the setup-phase gap: Algorithm 1 needs **zero** setup, while the
/// TDMA baselines must first distance-2-color `G²` distributedly.
///
/// Runs the workspace's distributed `Distance2Coloring` (CONGEST) on
/// random-regular graphs, measures its round count, and converts it to
/// beep rounds at the Corollary 12 rate — the *cheapest conceivable*
/// distributed setup, already orders of magnitude above our zero (the
/// real \[7\]/\[4\] protocols pay the model columns).
#[must_use]
pub fn e5b_setup_cost(seed: u64) -> Table {
    use beep_congest::algorithms::Distance2Coloring;
    use beep_congest::CongestRunner;
    use beep_core::baseline::{agl_setup, beauquier_setup};
    let n = 48;
    let params = SimulationParams::calibrated(0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "E5b: baseline setup cost (distributed G² coloring), n = 48 random-regular",
        &[
            "Δ",
            "CONGEST rounds",
            "beep rounds via Cor 12",
            "[4] setup model",
            "[7] setup model",
            "ours",
        ],
    );
    for delta in [3usize, 4, 6, 8] {
        let graph = topology::random_regular(n, delta, &mut rng).expect("valid degree");
        let bits = Distance2Coloring::required_message_bits(delta);
        let iters = Distance2Coloring::suggested_iterations(n);
        let runner = CongestRunner::new(&graph, bits, seed + delta as u64);
        let mut algos: Vec<Box<Distance2Coloring>> = (0..n)
            .map(|v| {
                Box::new(Distance2Coloring::new(
                    delta,
                    graph.neighbors(v).to_vec(),
                    iters,
                ))
            })
            .collect();
        let report = runner
            .run_to_completion(&mut algos, Distance2Coloring::rounds_for(iters))
            .expect("coloring converges");
        let per_congest_round = delta
            * params.rounds_per_broadcast_round(2 * beep_congest::id_bits_for(n) + bits, delta);
        t.push(vec![
            delta.to_string(),
            report.rounds.to_string(),
            (report.rounds * per_congest_round).to_string(),
            fmt_f(agl_setup(delta, n)),
            fmt_f(beauquier_setup(delta)),
            "0".into(),
        ]);
    }
    t.set_note(
        "the baseline cannot transmit a single message before its G² schedule exists; even our \
generously efficient distributed coloring costs tens of thousands of beep rounds via \
Corollary 12, and the real [7]/[4] setup protocols are worse (models shown). Algorithm 1 \
needs no schedule at all — the paper's 'no setup cost' claim.",
    );
    t
}

/// E6 — Corollary 12 + Lemma 14 optimality: CONGEST simulation measured
/// against the `Ω(Δ²B)` lower bound.
///
/// A *thin campaign spec*: the sweep (`K_{Δ,Δ}` for Δ ∈ {2, 3, 4} ×
/// ε = 0 × the registry's `local_broadcast` protocol) is handed to the
/// scenario layer, which solves B-bit Local Broadcast end-to-end (CONGEST
/// solver → Corollary 12 wrapper → Algorithm 1 → noiseless beeping
/// engine) per cell. The table divides the measured beep rounds by the
/// Lemma 14 bound: the ratio is a constant, i.e. the simulation is
/// optimal up to constants.
#[must_use]
pub fn e6_congest_overhead(seed: u64) -> Table {
    let report = run_thin_campaign(
        "e6-congest-overhead",
        vec![TopologySpec {
            family: TopologyFamily::CompleteBipartite,
            sizes: vec![4, 6, 8], // K_{Δ,Δ} for Δ = 2, 3, 4
        }],
        vec![0.0],
        vec![Protocol::LocalBroadcast],
        seed,
    );
    let mut t = Table::new(
        "E6 (Cor 12): CONGEST local broadcast on K_{Δ,Δ}, B = 8, measured on the engine",
        &["Δ", "beep rounds", "Ω(Δ²B/2) bound", "ratio", "all decoded"],
    );
    for cell in &report.cells {
        let delta = cell.max_degree;
        // The payload width comes from the run itself, so the bound can
        // never drift from what the registry actually transmitted.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let message_bits = campaign_metric(cell, "message_bits") as usize;
        assert!(message_bits > 0, "local_broadcast reports its width");
        let bound = lemma14_round_lower_bound(delta, message_bits).max(1);
        t.push(vec![
            delta.to_string(),
            cell.rounds.to_string(),
            bound.to_string(),
            fmt_f(cell.rounds as f64 / bound as f64),
            cell.success.to_string(),
        ]);
    }
    t.set_note(
        "ratio = measured beep rounds / information-theoretic lower bound. It stays bounded \
as Δ grows (the calibrated constant c³ and the id-field overhead make up the constant), \
witnessing Corollary 12's optimality (Corollary 16). Rows are campaign cells (the sweep \
is a declarative spec over the scenario layer).",
    );
    t
}

/// E10 — §1.3: noise does not asymptotically increase the overhead.
///
/// At fixed `(n, Δ, B)`, our per-round cost changes only through the
/// calibrated constant `c_ε` (bounded for bounded ε), while the
/// repetition-based TDMA baseline pays an extra `Θ(log n)` factor that
/// *grows* with ε.
#[must_use]
pub fn e10_noise_independence(seed: u64) -> Table {
    let message_bits = 16;
    let graph = topology::cycle(12).expect("valid cycle");
    let delta = graph.max_degree();
    let mut t = Table::new(
        "E10 (§1.3): overhead vs noise at fixed n = 12 cycle, B = 16",
        &[
            "ε",
            "ours/round",
            "vs ε=0",
            "TDMA ρ",
            "TDMA/round",
            "vs ε=0",
        ],
    );
    let ours0 = SimulationParams::calibrated(0.0).rounds_per_broadcast_round(message_bits, delta);
    let tdma0 = TdmaSimulator::new(&graph, message_bits, 0.0).rounds_per_congest_round();
    for eps in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let params = SimulationParams::calibrated(eps);
        let ours = params.rounds_per_broadcast_round(message_bits, delta);
        let tdma = TdmaSimulator::new(&graph, message_bits, eps);
        t.push(vec![
            format!("{eps:.2}"),
            ours.to_string(),
            fmt_f(ours as f64 / ours0 as f64),
            tdma.repetition().to_string(),
            tdma.rounds_per_congest_round().to_string(),
            fmt_f(tdma.rounds_per_congest_round() as f64 / tdma0 as f64),
        ]);
    }
    let _ = seed;
    t.set_note(
        "ours grows only through the bounded calibrated constant c_ε (the paper: noise does \
not change the asymptotics at all); the TDMA baseline must repeat every bit ρ = Θ(log n) \
times and ρ diverges as ε → ½.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_gap_grows_with_delta() {
        let t = e5_broadcast_overhead(5);
        // Noiseless ratio (col 5) and noisy ratio (col 8) both grow with Δ.
        for col in [5usize, 8] {
            let first: f64 = t.rows.first().unwrap()[col].parse().unwrap();
            let last: f64 = t.rows.last().unwrap()[col].parse().unwrap();
            assert!(
                last > first,
                "col {col}: TDMA/ours should grow with Δ: {first} → {last}"
            );
        }
        // Under noise the simulation beats the baseline outright at scale.
        let noisy_last: f64 = t.rows.last().unwrap()[8].parse().unwrap();
        assert!(noisy_last > 1.0, "noisy ratio {noisy_last}");
    }

    #[test]
    fn e5b_setup_costs_are_nonzero_and_ours_is_zero() {
        let t = e5b_setup_cost(11);
        for row in &t.rows {
            let congest_rounds: usize = row[1].parse().unwrap();
            assert!(congest_rounds > 0);
            assert_eq!(row[5], "0");
        }
    }

    #[test]
    fn e6_all_decoded_and_ratio_bounded() {
        let t = e6_congest_overhead(6);
        for row in &t.rows {
            assert_eq!(row[4], "true", "Δ = {}", row[0]);
        }
        // Ratios stay within a constant band (no Δ-growth).
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 6.0, "ratios {ratios:?} drift too much");
    }

    #[test]
    fn e10_ours_flat_tdma_grows() {
        let t = e10_noise_independence(7);
        let ours_growth: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        let tdma_growth: f64 = t.rows.last().unwrap()[5].parse().unwrap();
        assert!(
            ours_growth < tdma_growth,
            "ours {ours_growth} vs TDMA {tdma_growth}"
        );
    }
}
