//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// A titled table with a header row and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-text reading guide printed under the table.
    pub note: String,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Sets the reading note.
    pub fn set_note(&mut self, note: &str) {
        self.note = note.to_string();
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} ", w = w)?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        if !self.note.is_empty() {
            writeln!(f, "note: {}", self.note)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "x".into()]);
        t.set_note("reading guide");
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("long_header"));
        assert!(s.contains("note: reading guide"));
        // Alignment: every rendered row has the same width.
        let lines: Vec<&str> = s.lines().skip(1).take(4).collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }
}
