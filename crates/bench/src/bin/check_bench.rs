//! Enforces a CI perf bar against a `BENCH_*.json` metrics file.
//!
//! Replaces the old `grep -oP` over human bench text: the engine benches
//! emit `beep-bench-metrics` JSON (see `beep_bench::perfjson`) and this
//! binary asserts a named metric clears a floor.
//!
//! ```sh
//! check_bench target/bench-json/BENCH_e8.json --key speedup_n100000 --min 5
//! check_bench target/bench-json/BENCH_e9.json --key speedup_n1000000 --min 2 --min-cores 4
//! ```
//!
//! `--min-cores N` scopes the bar to measurements taken with ≥ N cores
//! (thread speedups don't exist where threads don't): the core count is
//! read from the file's own `cores` metric when the bench recorded one
//! (so the waiver travels with the measurement), falling back to this
//! process's core count. Below the threshold the metric must still
//! *exist* — the bench ran — but its value is not enforced.
//! Exit codes: 0 pass, 1 bar missed, 2 usage/schema error.

use beep_bench::perfjson::read_bench_json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut key: Option<String> = None;
    let mut min: Option<f64> = None;
    let mut min_cores = 0usize;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--key" => key = Some(take("--key")),
            "--min" => {
                min = Some(
                    take("--min")
                        .parse()
                        .unwrap_or_else(|_| die("--min needs a number")),
                );
            }
            "--min-cores" => {
                min_cores = take("--min-cores")
                    .parse()
                    .unwrap_or_else(|_| die("--min-cores needs an integer"));
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| die("usage: check_bench <json> --key K --min X"));
    let key = key.unwrap_or_else(|| die("--key is required"));
    let min = min.unwrap_or_else(|| die("--min is required"));

    let metrics = read_bench_json(std::path::Path::new(&path)).unwrap_or_else(|e| die(&e));
    let value = metrics
        .iter()
        .find(|(k, _)| k == &key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| {
            die(&format!(
                "{path}: no metric {key:?} (have: {})",
                metrics
                    .iter()
                    .map(|(k, _)| k.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        });

    // The machine that *measured* decides the waiver: prefer the "cores"
    // metric recorded in the file (the e9 bench writes it) so a file
    // produced on a small box doesn't spuriously fail the bar when
    // checked on a bigger one. Fall back to this process's core count.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let cores = metrics
        .iter()
        .find(|(k, _)| k == "cores")
        .map(|(_, v)| *v as usize)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    if cores < min_cores {
        println!(
            "{path}: {key} = {value} (bar ≥ {min} waived: {cores} cores < {min_cores} required)"
        );
        return;
    }
    if value >= min {
        println!("{path}: {key} = {value} ≥ {min}: ok");
    } else {
        eprintln!("{path}: {key} = {value} below the required {min}");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("check_bench: {msg}");
    std::process::exit(2);
}
