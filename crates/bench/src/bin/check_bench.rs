//! Enforces a CI perf bar against a `BENCH_*.json` metrics file.
//!
//! Replaces the old `grep -oP` over human bench text: the engine benches
//! emit `beep-bench-metrics` JSON (see `beep_bench::perfjson`) and this
//! binary asserts a named metric clears a floor, compares against a
//! previous run within a tolerance band, and appends to the perf
//! trajectory (see `beep_bench::trajectory`).
//!
//! ```sh
//! # Absolute floor (the classic perf bar):
//! check_bench target/bench-json/BENCH_e8.json --key speedup_n100000 --min 5
//! check_bench target/bench-json/BENCH_e9.json --key speedup_n1000000 --min 2 --min-cores 4
//!
//! # Trajectory gate: every node_rounds_per_sec_* metric must stay within
//! # 40% of the previous run's artifact (missing baseline ⇒ note + pass):
//! check_bench target/bench-json/BENCH_e8.json --key-prefix node_rounds_per_sec \
//!     --baseline baseline/BENCH_e8.json --tolerance 0.4
//!
//! # Append the selected metrics to the trajectory file:
//! check_bench target/bench-json/BENCH_e8.json --key-prefix node_rounds_per_sec \
//!     --trajectory BENCH_TRAJECTORY.json --commit "$GITHUB_SHA"
//! ```
//!
//! Selection: `--key K` names one metric exactly; `--key-prefix P` selects
//! every metric starting with `P` (at least one must exist). Exactly one
//! of the two is required, and at least one of `--min`, `--baseline`,
//! `--trajectory` must be given.
//!
//! `--min-cores N` scopes `--min` bars to measurements taken with ≥ N
//! cores (thread speedups don't exist where threads don't): the core
//! count is read from the file's own `cores` metric when the bench
//! recorded one (so the waiver travels with the measurement), falling
//! back to this process's core count. Below the threshold the metric must
//! still *exist* — the bench ran — but its value is not enforced.
//!
//! Exit codes: 0 pass, 1 bar missed or band regressed, 2 usage/schema
//! error.

use beep_bench::perfjson::{read_bench_file, read_bench_json};
use beep_bench::trajectory::{append_rows, compare, Row, Verdict};

/// Default tolerance band for `--baseline`: shared CI runners jitter, so
/// only a drop past 40% of the previous run is a trajectory break.
const DEFAULT_TOLERANCE: f64 = 0.4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut key: Option<String> = None;
    let mut key_prefix: Option<String> = None;
    let mut min: Option<f64> = None;
    let mut min_cores = 0usize;
    let mut baseline: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut trajectory: Option<String> = None;
    let mut commit = "local".to_string();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--key" => key = Some(take("--key")),
            "--key-prefix" => key_prefix = Some(take("--key-prefix")),
            "--min" => {
                min = Some(
                    take("--min")
                        .parse()
                        .unwrap_or_else(|_| die("--min needs a number")),
                );
            }
            "--min-cores" => {
                min_cores = take("--min-cores")
                    .parse()
                    .unwrap_or_else(|_| die("--min-cores needs an integer"));
            }
            "--baseline" => baseline = Some(take("--baseline")),
            "--tolerance" => {
                tolerance = take("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance needs a number"));
                if !(0.0..1.0).contains(&tolerance) {
                    die("--tolerance must be a fraction in [0, 1)");
                }
            }
            "--trajectory" => trajectory = Some(take("--trajectory")),
            "--commit" => commit = take("--commit"),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| {
        die("usage: check_bench <json> (--key K | --key-prefix P) [--min X] [--baseline OLD] [--trajectory FILE]")
    });
    if key.is_some() == key_prefix.is_some() {
        die("exactly one of --key / --key-prefix is required");
    }
    if min.is_none() && baseline.is_none() && trajectory.is_none() {
        die("nothing to do: give --min, --baseline, or --trajectory");
    }

    let (bench, metrics) = read_bench_file(std::path::Path::new(&path)).unwrap_or_else(|e| die(&e));
    let selected: Vec<(String, f64)> = match (&key, &key_prefix) {
        (Some(k), _) => metrics
            .iter()
            .filter(|(name, _)| name == k)
            .cloned()
            .collect(),
        (_, Some(p)) => metrics
            .iter()
            .filter(|(name, _)| name.starts_with(p.as_str()))
            .cloned()
            .collect(),
        _ => unreachable!("one selector enforced above"),
    };
    if selected.is_empty() {
        die(&format!(
            "{path}: no metric matches {} (have: {})",
            key.as_deref().or(key_prefix.as_deref()).unwrap_or(""),
            metrics
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    let mut failed = false;

    if let Some(min) = min {
        // The machine that *measured* decides the waiver: prefer the
        // "cores" metric recorded in the file (the e9 bench writes it) so
        // a file produced on a small box doesn't spuriously fail the bar
        // when checked on a bigger one.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cores = metrics
            .iter()
            .find(|(k, _)| k == "cores")
            .map(|(_, v)| *v as usize)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        for (k, value) in &selected {
            if cores < min_cores {
                println!(
                    "{path}: {k} = {value} (bar ≥ {min} waived: {cores} cores < {min_cores} \
                     required)"
                );
            } else if *value >= min {
                println!("{path}: {k} = {value} ≥ {min}: ok");
            } else {
                eprintln!("{path}: {k} = {value} below the required {min}");
                failed = true;
            }
        }
    }

    if let Some(baseline) = baseline {
        let baseline_path = std::path::Path::new(&baseline);
        if baseline_path.exists() {
            let old = read_bench_json(baseline_path).unwrap_or_else(|e| die(&e));
            for (k, value) in &selected {
                match old.iter().find(|(name, _)| name == k) {
                    Some((_, old_value)) => match compare(k, *value, *old_value, tolerance) {
                        Verdict::Ok => println!(
                            "{path}: {k} = {value:.3e} within {:.0}% of baseline {old_value:.3e}",
                            tolerance * 100.0
                        ),
                        Verdict::Regressed(msg) => {
                            eprintln!("{path}: {msg}");
                            failed = true;
                        }
                    },
                    None => println!("{path}: {k} is new (no baseline value); skipping band"),
                }
            }
        } else {
            // First run, expired artifact, fresh fork: no history is not
            // a failure, or the gate could never bootstrap.
            println!("{path}: baseline {baseline} not found; skipping trajectory band");
        }
    }

    if let Some(trajectory) = trajectory {
        let rows: Vec<Row> = selected
            .iter()
            .map(|(k, v)| Row {
                bench: bench.clone(),
                key: k.clone(),
                value: *v,
                commit: commit.clone(),
            })
            .collect();
        let total =
            append_rows(std::path::Path::new(&trajectory), &rows).unwrap_or_else(|e| die(&e));
        println!(
            "{trajectory}: appended {} row(s) for {bench}@{commit} ({total} total)",
            rows.len()
        );
    }

    if failed {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("check_bench: {msg}");
    std::process::exit(2);
}
