//! Runs (or validates) a scenario campaign: the CLI over `beep-scenarios`.
//!
//! ```sh
//! # From a checked-in spec file:
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --spec scenarios/smoke.toml --out campaign_smoke.json
//!
//! # Inline, without a spec file:
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --topologies cycle,torus,rgg --sizes 16,32 \
//!     --epsilons 0.0,0.05 --protocols matching,round_sim --seeds 1,2
//!
//! # Validate an existing report against the schema (CI smoke):
//! cargo run --release -p beep-bench --bin campaign -- --check report.json
//! ```
//!
//! The human table always prints to stdout (suppress with `--quiet`);
//! `--out` additionally writes the schema-versioned JSON report.
//! `--no-timing` strips the wall-clock fields, making the JSON a pure
//! function of the spec (the golden-fixture form).

use beep_scenarios::json::Json;
use beep_scenarios::{
    run_campaign, validate_report, CampaignSpec, RunOptions, TopologyFamily, TopologySpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut threads = 0usize;
    let mut include_timing = true;
    let mut quiet = false;
    let mut name: Option<String> = None;
    let mut topologies: Option<Vec<String>> = None;
    let mut sizes: Option<Vec<usize>> = None;
    let mut epsilons: Option<Vec<f64>> = None;
    let mut protocols: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--spec" => spec_path = Some(take("--spec")),
            "--check" => check_path = Some(take("--check")),
            "--out" => out_path = Some(take("--out")),
            "--name" => name = Some(take("--name")),
            "--threads" => threads = parse_or_die(&take("--threads"), "--threads"),
            "--no-timing" => include_timing = false,
            "--quiet" => quiet = true,
            "--topologies" => topologies = Some(split_list(&take("--topologies"))),
            "--sizes" => {
                sizes = Some(
                    split_list(&take("--sizes"))
                        .iter()
                        .map(|s| parse_or_die(s, "--sizes"))
                        .collect(),
                );
            }
            "--epsilons" => {
                epsilons = Some(
                    split_list(&take("--epsilons"))
                        .iter()
                        .map(|s| parse_or_die(s, "--epsilons"))
                        .collect(),
                );
            }
            "--protocols" => protocols = Some(split_list(&take("--protocols"))),
            "--seeds" => {
                // Parsed as i64 so every seed fits the JSON report's
                // integer fields (spec files get the same bound).
                seeds = Some(
                    split_list(&take("--seeds"))
                        .iter()
                        .map(|s| {
                            let v: i64 = parse_or_die(s, "--seeds");
                            u64::try_from(v)
                                .unwrap_or_else(|_| die(&format!("seed {v} must be non-negative")))
                        })
                        .collect(),
                );
            }
            other => die(&format!("unknown flag {other:?} (see the module docs)")),
        }
    }

    if let Some(path) = check_path {
        check(&path);
        return;
    }

    let spec = match spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            CampaignSpec::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
        }
        None => inline_spec(name, topologies, sizes, epsilons, protocols, seeds),
    };

    let report = run_campaign(&spec, &RunOptions { threads })
        .unwrap_or_else(|e| die(&format!("campaign failed: {e}")));
    if !quiet {
        print!("{}", report.render_table());
    }
    if let Some(path) = out_path {
        let json = report.to_json(include_timing).to_pretty();
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        if !quiet {
            println!("report written to {path}");
        }
    }
    // A campaign where cells *failed* (as opposed to being skipped as
    // structurally inapplicable) exits nonzero so CI notices.
    let summary = report.summary();
    if summary.failed > 0 {
        eprintln!("campaign: {} cell(s) failed", summary.failed);
        std::process::exit(1);
    }
}

/// `--check`: parse + schema-validate an existing report, print its
/// summary line, and exit 0 (valid) or 2 (invalid/empty).
fn check(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let json = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    validate_report(&json).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let cells = json
        .get("cells")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    let campaign = json
        .get("campaign")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>");
    println!("{path}: valid {campaign:?} report, {cells} cells");
}

fn inline_spec(
    name: Option<String>,
    topologies: Option<Vec<String>>,
    sizes: Option<Vec<usize>>,
    epsilons: Option<Vec<f64>>,
    protocols: Option<Vec<String>>,
    seeds: Option<Vec<u64>>,
) -> CampaignSpec {
    let topologies =
        topologies.unwrap_or_else(|| die("need --spec FILE or --topologies + --protocols"));
    let sizes = sizes.unwrap_or_else(|| vec![16, 32]);
    let topologies = topologies
        .iter()
        .map(|name| TopologySpec {
            family: TopologyFamily::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown topology family {name:?}"))),
            sizes: sizes.clone(),
        })
        .collect();
    let protocols = protocols
        .unwrap_or_else(|| die("need --protocols (e.g. matching,round_sim)"))
        .iter()
        .map(|name| {
            beep_apps::Protocol::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown protocol {name:?}")))
        })
        .collect();
    let epsilons = epsilons.unwrap_or_else(|| vec![0.0]);
    for &eps in &epsilons {
        // Same domain check spec files get in CampaignSpec::parse — a
        // typo'd ε must be a usage error, not an all-skipped green sweep.
        if !(0.0..0.5).contains(&eps) {
            die(&format!("epsilon {eps} outside the paper's [0, ½)"));
        }
    }
    CampaignSpec {
        name: name.unwrap_or_else(|| "cli".into()),
        topologies,
        epsilons,
        // Richer channel families ([[channel]] tables) are a spec-file
        // feature — inline flags cover only the iid ε sweep.
        channels: vec![],
        faults: vec![],
        protocols,
        seeds: seeds.unwrap_or_else(|| vec![1]),
    }
}

fn split_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ToString::to_string)
        .collect()
}

fn parse_or_die<T: std::str::FromStr>(text: &str, what: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| die(&format!("{what}: cannot parse {text:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}
