//! Runs (or validates) a scenario campaign: the CLI over `beep-scenarios`.
//!
//! ```sh
//! # From a checked-in spec file:
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --spec scenarios/smoke.toml --out campaign_smoke.json
//!
//! # Inline, without a spec file:
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --topologies cycle,torus,rgg --sizes 16,32 \
//!     --epsilons 0.0,0.05 --protocols matching,round_sim --seeds 1,2
//!
//! # Checkpointed / resumable (re-run the same command to finish an
//! # interrupted campaign; the journal replays completed cells):
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --spec scenarios/smoke.toml --checkpoint smoke.ck.jsonl \
//!     --out campaign_smoke.json
//!
//! # Validate an existing report against the schema (CI smoke); add
//! # --schema-version to print and assert the expected version from
//! # beep-scenarios (the one source of truth — CI uses this instead of
//! # grepping the report for a hardcoded number):
//! cargo run --release -p beep-bench --bin campaign -- --check report.json --schema-version
//! ```
//!
//! The human table always prints to stdout (suppress with `--quiet`);
//! `--out` additionally writes the schema-versioned JSON report.
//! `--no-timing` strips the wall-clock fields, making the JSON a pure
//! function of the spec (the golden-fixture form). `--max-cells N`
//! (requires `--checkpoint`) stops after N cells — the deterministic
//! "interruption" the CI resume smoke uses.
//!
//! Conflicting flags are usage errors (exit 2), not silent drops:
//! `--check` takes no flags other than `--schema-version` (which in turn
//! requires `--check`), and `--spec` excludes the inline axis flags
//! (`--name`/`--topologies`/`--sizes`/`--epsilons`/`--protocols`/
//! `--seeds`).

use beep_scenarios::json::Json;
use beep_scenarios::{
    run_campaign, run_campaign_resumable, validate_report, CampaignSpec, RunOptions,
    TopologyFamily, TopologySpec,
};
use std::path::Path;

/// What the CLI was asked to do.
#[derive(Debug)]
enum Mode {
    /// `--check PATH`: schema-validate an existing report. With
    /// `--schema-version`, also print and assert the expected version
    /// from `beep-scenarios`.
    Check { path: String, schema_version: bool },
    /// Everything else: run a campaign.
    Run(RunConfig),
}

/// A validated run invocation.
#[derive(Debug)]
struct RunConfig {
    source: SpecSource,
    out: Option<String>,
    threads: usize,
    include_timing: bool,
    quiet: bool,
    checkpoint: Option<String>,
    max_cells: Option<usize>,
}

/// Where the campaign spec comes from.
#[derive(Debug)]
enum SpecSource {
    File(String),
    Inline {
        name: Option<String>,
        topologies: Option<Vec<String>>,
        sizes: Option<Vec<usize>>,
        epsilons: Option<Vec<f64>>,
        protocols: Option<Vec<String>>,
        seeds: Option<Vec<u64>>,
    },
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_args(&args).unwrap_or_else(|e| die(&e));
    match mode {
        Mode::Check {
            path,
            schema_version,
        } => check(&path, schema_version),
        Mode::Run(config) => run(&config),
    }
}

/// Parses and cross-validates the argument list. Pure (no I/O, no
/// exits) so the conflict rules are unit-testable; `main` turns the
/// `Err` into a usage error (exit 2).
fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut spec: Option<String> = None;
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut threads = 0usize;
    let mut threads_set = false;
    let mut include_timing = true;
    let mut quiet = false;
    let mut checkpoint: Option<String> = None;
    let mut max_cells: Option<usize> = None;
    let mut name: Option<String> = None;
    let mut topologies: Option<Vec<String>> = None;
    let mut sizes: Option<Vec<usize>> = None;
    let mut epsilons: Option<Vec<f64>> = None;
    let mut protocols: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut schema_version = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--spec" => spec = Some(take("--spec")?),
            "--check" => check = Some(take("--check")?),
            "--schema-version" => schema_version = true,
            "--out" => out = Some(take("--out")?),
            "--name" => name = Some(take("--name")?),
            "--threads" => {
                threads = parse_value(&take("--threads")?, "--threads")?;
                threads_set = true;
            }
            "--no-timing" => include_timing = false,
            "--quiet" => quiet = true,
            "--checkpoint" => checkpoint = Some(take("--checkpoint")?),
            "--max-cells" => max_cells = Some(parse_value(&take("--max-cells")?, "--max-cells")?),
            "--topologies" => topologies = Some(split_list(&take("--topologies")?)),
            "--sizes" => {
                sizes = Some(parse_list(&take("--sizes")?, "--sizes")?);
            }
            "--epsilons" => {
                epsilons = Some(parse_list(&take("--epsilons")?, "--epsilons")?);
            }
            "--protocols" => protocols = Some(split_list(&take("--protocols")?)),
            "--seeds" => {
                // Parsed as i64 so every seed fits the JSON report's
                // integer fields (spec files get the same bound).
                let raw: Vec<i64> = parse_list(&take("--seeds")?, "--seeds")?;
                let mut list = Vec::with_capacity(raw.len());
                for v in raw {
                    list.push(
                        u64::try_from(v).map_err(|_| format!("seed {v} must be non-negative"))?,
                    );
                }
                seeds = Some(list);
            }
            other => return Err(format!("unknown flag {other:?} (see the module docs)")),
        }
    }

    let inline_axes = name.is_some()
        || topologies.is_some()
        || sizes.is_some()
        || epsilons.is_some()
        || protocols.is_some()
        || seeds.is_some();
    if let Some(path) = check {
        // `--check` validates an existing report; combining it with run
        // flags used to silently drop them — now it's a usage error.
        // `--schema-version` is the one compatible flag.
        let run_flags = spec.is_some()
            || out.is_some()
            || threads_set
            || !include_timing
            || quiet
            || checkpoint.is_some()
            || max_cells.is_some()
            || inline_axes;
        if run_flags {
            return Err("--check validates an existing report and takes no flags \
                 other than --schema-version"
                .into());
        }
        return Ok(Mode::Check {
            path,
            schema_version,
        });
    }
    if schema_version {
        return Err("--schema-version asserts a report's schema and requires --check".into());
    }
    if spec.is_some() && inline_axes {
        // A spec file defines the whole matrix; inline axis flags used
        // to be silently ignored next to it — now it's a usage error.
        return Err("--spec conflicts with the inline axis flags \
             (--name/--topologies/--sizes/--epsilons/--protocols/--seeds)"
            .into());
    }
    if max_cells.is_some() && checkpoint.is_none() {
        return Err("--max-cells stops a run early and requires --checkpoint \
                    (otherwise the partial progress is lost)"
            .into());
    }
    let source = match spec {
        Some(path) => SpecSource::File(path),
        None => SpecSource::Inline {
            name,
            topologies,
            sizes,
            epsilons,
            protocols,
            seeds,
        },
    };
    Ok(Mode::Run(RunConfig {
        source,
        out,
        threads,
        include_timing,
        quiet,
        checkpoint,
        max_cells,
    }))
}

fn run(config: &RunConfig) {
    let spec = match &config.source {
        SpecSource::File(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            CampaignSpec::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
        }
        SpecSource::Inline {
            name,
            topologies,
            sizes,
            epsilons,
            protocols,
            seeds,
        } => inline_spec(
            name.clone(),
            topologies.clone(),
            sizes.clone(),
            epsilons.clone(),
            protocols.clone(),
            seeds.clone(),
        ),
    };
    let options = RunOptions {
        threads: config.threads,
        max_cells: config.max_cells,
    };

    let report = if let Some(path) = &config.checkpoint {
        let outcome = run_campaign_resumable(&spec, &options, Path::new(path))
            .unwrap_or_else(|e| die(&format!("campaign failed: {e}")));
        if !config.quiet {
            println!(
                "checkpoint {path}: {} cell(s) replayed, {} executed, {} total",
                outcome.replayed, outcome.executed, outcome.total
            );
        }
        match outcome.report {
            Some(report) => report,
            None => {
                // A --max-cells cut: the journal holds the progress.
                // Intentional partial runs exit 0 so the CI resume
                // smoke can chain them.
                println!(
                    "campaign partial: {}/{} cells done; re-run with --checkpoint {path} to finish",
                    outcome.replayed + outcome.executed,
                    outcome.total
                );
                return;
            }
        }
    } else {
        run_campaign(&spec, &options).unwrap_or_else(|e| die(&format!("campaign failed: {e}")))
    };

    if !config.quiet {
        print!("{}", report.render_table());
    }
    if let Some(path) = &config.out {
        let json = report.to_json(config.include_timing).to_pretty();
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        if !config.quiet {
            println!("report written to {path}");
        }
    }
    // A campaign where cells *failed* (as opposed to being skipped as
    // structurally inapplicable) exits nonzero so CI notices.
    let summary = report.summary();
    if summary.failed > 0 {
        eprintln!("campaign: {} cell(s) failed", summary.failed);
        std::process::exit(1);
    }
}

/// `--check`: parse + schema-validate an existing report, print its
/// summary line, and exit 0 (valid) or 2 (invalid/empty). With
/// `schema_version`, additionally print and assert the expected version
/// from `beep-scenarios` — CI's replacement for grepping the report for
/// a hardcoded version number.
fn check(path: &str, schema_version: bool) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let json = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    validate_report(&json).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let cells = json
        .get("cells")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    let campaign = json
        .get("campaign")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>");
    println!("{path}: valid {campaign:?} report, {cells} cells");
    if schema_version {
        // validate_report already rejected any mismatch; the explicit
        // assert + print makes the contract visible in the CI log and
        // keeps the expected number in exactly one place.
        let version = json.get("version").and_then(Json::as_i64);
        assert_eq!(
            version,
            Some(beep_scenarios::SCHEMA_VERSION),
            "validate_report accepted a version it should reject"
        );
        println!("{path}: schema version {}", beep_scenarios::SCHEMA_VERSION);
    }
}

fn inline_spec(
    name: Option<String>,
    topologies: Option<Vec<String>>,
    sizes: Option<Vec<usize>>,
    epsilons: Option<Vec<f64>>,
    protocols: Option<Vec<String>>,
    seeds: Option<Vec<u64>>,
) -> CampaignSpec {
    let topologies =
        topologies.unwrap_or_else(|| die("need --spec FILE or --topologies + --protocols"));
    let sizes = sizes.unwrap_or_else(|| vec![16, 32]);
    let topologies = topologies
        .iter()
        .map(|name| TopologySpec {
            family: TopologyFamily::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown topology family {name:?}"))),
            sizes: sizes.clone(),
        })
        .collect();
    let protocols = protocols
        .unwrap_or_else(|| die("need --protocols (e.g. matching,round_sim)"))
        .iter()
        .map(|name| {
            beep_apps::Protocol::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown protocol {name:?}")))
        })
        .collect();
    let epsilons = epsilons.unwrap_or_else(|| vec![0.0]);
    for &eps in &epsilons {
        // Same domain check spec files get in CampaignSpec::parse — a
        // typo'd ε must be a usage error, not an all-skipped green sweep.
        if !(0.0..0.5).contains(&eps) {
            die(&format!("epsilon {eps} outside the paper's [0, ½)"));
        }
    }
    CampaignSpec {
        name: name.unwrap_or_else(|| "cli".into()),
        topologies,
        epsilons,
        // Richer channel families ([[channel]] tables) are a spec-file
        // feature — inline flags cover only the iid ε sweep.
        channels: vec![],
        faults: vec![],
        protocols,
        seeds: seeds.unwrap_or_else(|| vec![1]),
    }
}

fn split_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ToString::to_string)
        .collect()
}

fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Result<Vec<T>, String> {
    split_list(text)
        .iter()
        .map(|s| parse_value(s, what))
        .collect()
}

fn parse_value<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{what}: cannot parse {text:?}"))
}

fn die(msg: &str) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn check_alone_parses() {
        let mode = parse_args(&args(&["--check", "report.json"])).unwrap();
        assert!(matches!(
            mode,
            Mode::Check {
                path,
                schema_version: false,
            } if path == "report.json"
        ));
    }

    #[test]
    fn check_combines_with_schema_version() {
        let mode = parse_args(&args(&["--check", "report.json", "--schema-version"])).unwrap();
        assert!(matches!(
            mode,
            Mode::Check {
                path,
                schema_version: true,
            } if path == "report.json"
        ));
    }

    #[test]
    fn schema_version_requires_check() {
        let err = parse_args(&args(&["--schema-version"])).unwrap_err();
        assert!(err.contains("--check"), "{err}");
        let err = parse_args(&args(&["--spec", "s.toml", "--schema-version"])).unwrap_err();
        assert!(err.contains("--check"), "{err}");
    }

    #[test]
    fn check_rejects_every_run_flag() {
        for extra in [
            ["--out", "x.json"],
            ["--spec", "s.toml"],
            ["--threads", "2"],
            ["--checkpoint", "ck.jsonl"],
            ["--topologies", "cycle"],
        ] {
            let mut a = args(&["--check", "report.json"]);
            a.extend(args(&extra));
            let err = parse_args(&a).unwrap_err();
            assert!(err.contains("--check"), "{extra:?}: {err}");
        }
        // Valueless flags conflict too.
        for extra in ["--quiet", "--no-timing"] {
            let err = parse_args(&args(&["--check", "r.json", extra])).unwrap_err();
            assert!(err.contains("--check"), "{extra}: {err}");
        }
    }

    #[test]
    fn spec_rejects_inline_axis_flags() {
        for extra in [
            ["--topologies", "cycle"],
            ["--sizes", "8"],
            ["--epsilons", "0.05"],
            ["--protocols", "wave"],
            ["--seeds", "1"],
            ["--name", "x"],
        ] {
            let mut a = args(&["--spec", "s.toml"]);
            a.extend(args(&extra));
            let err = parse_args(&a).unwrap_err();
            assert!(err.contains("--spec conflicts"), "{extra:?}: {err}");
        }
    }

    #[test]
    fn spec_still_combines_with_run_flags() {
        let mode = parse_args(&args(&[
            "--spec",
            "s.toml",
            "--out",
            "r.json",
            "--threads",
            "2",
            "--no-timing",
            "--quiet",
            "--checkpoint",
            "ck.jsonl",
            "--max-cells",
            "3",
        ]))
        .unwrap();
        let Mode::Run(config) = mode else {
            panic!("expected a run");
        };
        assert!(matches!(&config.source, SpecSource::File(p) if p == "s.toml"));
        assert_eq!(config.out.as_deref(), Some("r.json"));
        assert_eq!(config.threads, 2);
        assert!(!config.include_timing);
        assert!(config.quiet);
        assert_eq!(config.checkpoint.as_deref(), Some("ck.jsonl"));
        assert_eq!(config.max_cells, Some(3));
    }

    #[test]
    fn max_cells_requires_checkpoint() {
        let err = parse_args(&args(&["--spec", "s.toml", "--max-cells", "3"])).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
    }

    #[test]
    fn unknown_flags_and_missing_values_are_errors() {
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--spec"])).is_err());
        assert!(parse_args(&args(&["--threads", "many"])).is_err());
        assert!(parse_args(&args(&["--seeds", "-1", "--topologies", "cycle"])).is_err());
    }
}
