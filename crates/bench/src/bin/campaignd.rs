//! `campaignd`: a minimal campaign daemon over the scenario executor.
//!
//! Serves hand-rolled HTTP/1.1 on `std::net::TcpListener` — no web
//! framework, matching the workspace's zero-dependency stance. Three
//! endpoints:
//!
//! | Method + path            | Meaning                                  |
//! |--------------------------|------------------------------------------|
//! | `POST /campaigns`        | Body = TOML campaign spec; queues it and  |
//! |                          | returns `{"id", "status": "queued", …}`.  |
//! | `GET /campaigns/<id>`    | Job status with per-cell progress counts. |
//! | `GET /campaigns/<id>/report` | The schema-versioned JSON report once |
//! |                          | done (409 while queued/running).          |
//!
//! ```sh
//! cargo run --release -p beep-bench --bin campaignd -- --addr 127.0.0.1:7077
//! curl -sS --data-binary @scenarios/smoke.toml http://127.0.0.1:7077/campaigns
//! curl -sS http://127.0.0.1:7077/campaigns/c1
//! curl -sS http://127.0.0.1:7077/campaigns/c1/report > report.json
//! ```
//!
//! One worker thread drains the queue (campaigns already parallelize
//! internally across cells, so queued campaigns run one at a time), and
//! a process-wide [`InstanceCache`] carries built topology instances
//! across campaigns: two specs touching the same
//! `family × size × sweep-seed` group share one graph build, exactly as
//! cells within a campaign do. Responses close the connection
//! (`Connection: close`) — every exchange is one request, one response.

use beep_scenarios::json::Json;
use beep_scenarios::{
    run_campaign_with_sink, CampaignSpec, CellResult, FnSink, InstanceCache, MemorySink,
    RunOptions, TeeSink,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Where a submitted campaign is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobStatus {
    fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One submitted campaign.
struct Job {
    name: String,
    status: JobStatus,
    total: usize,
    /// Completed-cell counter, bumped by the executor's progress sink —
    /// readable without the jobs lock while the campaign runs.
    completed: Arc<AtomicUsize>,
    /// The pretty-printed schema-v3 report, once done.
    report: Option<String>,
    error: Option<String>,
}

/// Daemon state shared by the HTTP handlers and the worker thread.
struct Daemon {
    jobs: Mutex<HashMap<String, Job>>,
    queue: Mutex<VecDeque<(String, CampaignSpec)>>,
    ready: Condvar,
    /// Topology instances shared across every campaign this daemon runs.
    cache: InstanceCache,
    next_id: AtomicUsize,
    options: RunOptions,
}

impl Daemon {
    fn new(options: RunOptions) -> Daemon {
        Daemon {
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cache: InstanceCache::new(),
            next_id: AtomicUsize::new(1),
            options,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7077".to_string();
    let mut threads = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--threads" => {
                threads = take("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads: cannot parse"));
            }
            other => die(&format!("unknown flag {other:?} (see the module docs)")),
        }
    }
    let listener =
        TcpListener::bind(&addr).unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    let daemon = Arc::new(Daemon::new(RunOptions {
        threads,
        max_cells: None,
    }));
    {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || worker(&daemon));
    }
    println!(
        "campaignd listening on {}",
        listener.local_addr().map_or(addr, |a| a.to_string())
    );
    serve(&listener, &daemon);
}

fn die(msg: &str) -> ! {
    eprintln!("campaignd: {msg}");
    std::process::exit(2);
}

/// The accept loop: one thread per connection (each exchange is a
/// single request/response, so connections are short-lived).
fn serve(listener: &TcpListener, daemon: &Arc<Daemon>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let daemon = Arc::clone(daemon);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &daemon);
        });
    }
}

/// The queue drain: campaigns run one at a time (each already
/// parallelizes across cells), sharing the daemon's instance cache.
fn worker(daemon: &Arc<Daemon>) {
    loop {
        let (id, spec) = {
            let mut queue = daemon.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = daemon.ready.wait(queue).expect("queue lock");
            }
        };
        let (total, completed) = {
            let mut jobs = daemon.jobs.lock().expect("jobs lock");
            let job = jobs.get_mut(&id).expect("queued job exists");
            job.status = JobStatus::Running;
            (job.total, Arc::clone(&job.completed))
        };
        let start = Instant::now();
        let mut memory = MemorySink::new(spec.name.clone(), total);
        let counter = Arc::clone(&completed);
        let outcome = {
            let mut tee = TeeSink(
                &mut memory,
                FnSink(move |_, _: &CellResult| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
            );
            run_campaign_with_sink(&spec, &daemon.options, &daemon.cache, &mut tee)
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut jobs = daemon.jobs.lock().expect("jobs lock");
        let job = jobs.get_mut(&id).expect("running job exists");
        match outcome {
            Ok(_) => match memory.try_into_report(wall_ms) {
                Some(report) => {
                    job.status = JobStatus::Done;
                    job.report = Some(report.to_json(true).to_pretty());
                }
                None => {
                    job.status = JobStatus::Failed;
                    job.error = Some("executor finished with missing cells".into());
                }
            },
            Err(e) => {
                job.status = JobStatus::Failed;
                job.error = Some(e.to_string());
            }
        }
    }
}

/// A parsed HTTP request: just enough of HTTP/1.1 for the three routes.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, body: &Json) -> Response {
        Response {
            status,
            reason,
            body: body.to_pretty(),
        }
    }

    fn error(status: u16, reason: &'static str, detail: &str) -> Response {
        Response::json(
            status,
            reason,
            &Json::Obj(vec![("error".into(), Json::Str(detail.into()))]),
        )
    }
}

fn handle_connection(mut stream: TcpStream, daemon: &Arc<Daemon>) -> std::io::Result<()> {
    let response = match read_request(&mut stream) {
        Ok(request) => route(daemon, &request),
        Err(detail) => Response::error(400, "Bad Request", &detail),
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.reason,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

/// Reads request line + headers + `Content-Length` body. Anything
/// malformed is a 400 with the detail.
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts
        .next()
        .ok_or("request line missing a path")?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("headers: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Request { method, path, body })
}

fn route(daemon: &Arc<Daemon>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaigns") => post_campaign(daemon, &request.body),
        ("GET", path) => match path.strip_prefix("/campaigns/") {
            Some(rest) => match rest.strip_suffix("/report") {
                Some(id) if !id.is_empty() && !id.contains('/') => get_report(daemon, id),
                None if !rest.is_empty() && !rest.contains('/') => get_status(daemon, rest),
                _ => Response::error(404, "Not Found", "no such route"),
            },
            None => Response::error(404, "Not Found", "no such route"),
        },
        (method, _) => Response::error(
            405,
            "Method Not Allowed",
            &format!("unsupported method {method:?}"),
        ),
    }
}

/// `POST /campaigns`: parse the TOML spec, validate it expands, queue
/// it. 202 with the assigned id.
fn post_campaign(daemon: &Arc<Daemon>, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "Bad Request", "spec is not UTF-8"),
    };
    let spec = match CampaignSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, "Bad Request", &e.to_string()),
    };
    let total = match spec.expand() {
        Ok(cells) => cells.len(),
        Err(e) => return Response::error(400, "Bad Request", &e.to_string()),
    };
    let id = format!("c{}", daemon.next_id.fetch_add(1, Ordering::Relaxed));
    daemon.jobs.lock().expect("jobs lock").insert(
        id.clone(),
        Job {
            name: spec.name.clone(),
            status: JobStatus::Queued,
            total,
            completed: Arc::new(AtomicUsize::new(0)),
            report: None,
            error: None,
        },
    );
    daemon
        .queue
        .lock()
        .expect("queue lock")
        .push_back((id.clone(), spec));
    daemon.ready.notify_one();
    let body = Json::Obj(vec![
        ("id".into(), Json::Str(id)),
        ("status".into(), Json::Str("queued".into())),
        ("cells".into(), Json::Int(int(total))),
    ]);
    Response::json(202, "Accepted", &body)
}

/// `GET /campaigns/<id>`: queued/running/done/failed with progress.
fn get_status(daemon: &Arc<Daemon>, id: &str) -> Response {
    let jobs = daemon.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.get(id) else {
        return Response::error(404, "Not Found", &format!("no campaign {id:?}"));
    };
    let mut fields = vec![
        ("id".into(), Json::Str(id.into())),
        ("name".into(), Json::Str(job.name.clone())),
        ("status".into(), Json::Str(job.status.label().into())),
        (
            "completed".into(),
            Json::Int(int(job.completed.load(Ordering::Relaxed))),
        ),
        ("total".into(), Json::Int(int(job.total))),
    ];
    if let Some(error) = &job.error {
        fields.push(("error".into(), Json::Str(error.clone())));
    }
    Response::json(200, "OK", &Json::Obj(fields))
}

/// `GET /campaigns/<id>/report`: the schema-v3 report once done.
fn get_report(daemon: &Arc<Daemon>, id: &str) -> Response {
    let jobs = daemon.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.get(id) else {
        return Response::error(404, "Not Found", &format!("no campaign {id:?}"));
    };
    match (job.status, &job.report) {
        (JobStatus::Done, Some(report)) => Response {
            status: 200,
            reason: "OK",
            body: report.clone(),
        },
        (JobStatus::Failed, _) => Response::error(
            500,
            "Internal Server Error",
            job.error.as_deref().unwrap_or("campaign failed"),
        ),
        _ => Response::error(
            409,
            "Conflict",
            &format!(
                "campaign {id:?} is {} ({}/{} cells)",
                job.status.label(),
                job.completed.load(Ordering::Relaxed),
                job.total
            ),
        ),
    }
}

#[allow(clippy::cast_possible_wrap)]
fn int(v: usize) -> i64 {
    v as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_scenarios::{validate_report, SCHEMA_VERSION};
    use std::time::Duration;

    /// Boots a daemon on an ephemeral port; returns its address and
    /// state (threads are detached — they die with the test process).
    fn start() -> (std::net::SocketAddr, Arc<Daemon>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let daemon = Arc::new(Daemon::new(RunOptions {
            threads: 2,
            max_cells: None,
        }));
        {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || worker(&daemon));
        }
        {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || serve(&listener, &daemon));
        }
        (addr, daemon)
    }

    /// One raw HTTP exchange; returns (status, body).
    fn exchange(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    const SPEC: &str = r#"
        name = "daemon-smoke"
        epsilons = [0.0]
        protocols = ["wave", "round_sim"]
        seeds = [1]
        [[topology]]
        family = "cycle"
        sizes = [8]
    "#;

    fn submit(addr: std::net::SocketAddr) -> String {
        let (status, body) = post(addr, "/campaigns", SPEC);
        assert_eq!(status, 202, "{body}");
        let json = Json::parse(&body).expect("valid JSON");
        assert_eq!(json.get("status").and_then(Json::as_str), Some("queued"));
        assert_eq!(json.get("cells").and_then(Json::as_i64), Some(2));
        json.get("id").and_then(Json::as_str).expect("id").into()
    }

    fn poll_done(addr: std::net::SocketAddr, id: &str) {
        for _ in 0..200 {
            let (status, body) = get(addr, &format!("/campaigns/{id}"));
            assert_eq!(status, 200, "{body}");
            let json = Json::parse(&body).expect("valid JSON");
            match json.get("status").and_then(Json::as_str) {
                Some("done") => {
                    assert_eq!(json.get("completed").and_then(Json::as_i64), Some(2));
                    assert_eq!(json.get("total").and_then(Json::as_i64), Some(2));
                    return;
                }
                Some("failed") => panic!("campaign failed: {body}"),
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        panic!("campaign {id} never finished");
    }

    #[test]
    fn post_poll_report_round_trip() {
        let (addr, _daemon) = start();
        let id = submit(addr);
        poll_done(addr, &id);
        let (status, body) = get(addr, &format!("/campaigns/{id}/report"));
        assert_eq!(status, 200, "{body}");
        let report = Json::parse(&body).expect("valid report JSON");
        validate_report(&report).expect("schema-valid report");
        assert_eq!(
            report.get("version").and_then(Json::as_i64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            report.get("campaign").and_then(Json::as_str),
            Some("daemon-smoke")
        );
    }

    #[test]
    fn instance_cache_is_shared_across_campaigns() {
        let (addr, daemon) = start();
        let first = submit(addr);
        poll_done(addr, &first);
        let groups = daemon.cache.len();
        assert_eq!(groups, 1, "one cycle/n8 instance group");
        // A second identical campaign reuses the cached instance.
        let second = submit(addr);
        poll_done(addr, &second);
        assert_eq!(daemon.cache.len(), groups);
        let (_, a) = get(addr, &format!("/campaigns/{first}/report"));
        let (_, b) = get(addr, &format!("/campaigns/{second}/report"));
        // Same spec ⇒ same cells (wall_ms is the one nondeterministic
        // field, so compare ids + statuses).
        let cells = |text: &str| -> Vec<(String, String)> {
            Json::parse(text)
                .expect("valid report")
                .get("cells")
                .and_then(Json::as_array)
                .expect("cells")
                .iter()
                .map(|c| {
                    (
                        c.get("id").and_then(Json::as_str).expect("id").to_string(),
                        c.get("status")
                            .and_then(Json::as_str)
                            .expect("status")
                            .to_string(),
                    )
                })
                .collect()
        };
        assert_eq!(cells(&a), cells(&b));
    }

    #[test]
    fn malformed_specs_and_unknown_routes_are_client_errors() {
        let (addr, _daemon) = start();
        let (status, body) = post(addr, "/campaigns", "not = valid = toml");
        assert_eq!(status, 400, "{body}");
        let (status, _) = get(addr, "/campaigns/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/campaigns/nope/report");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/elsewhere");
        assert_eq!(status, 404);
        let (status, _) = exchange(addr, "DELETE /campaigns HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
    }
}
