//! Prints the experiment tables of DESIGN.md §5 / EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p beep-bench --bin tables -- all
//! cargo run --release -p beep-bench --bin tables -- e5 e7
//! cargo run --release -p beep-bench --bin tables -- e3 --seed 7
//! ```

use beep_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 2023; // the paper's year, for reproducible defaults
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--seed" {
            seed = iter
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die("--seed needs an integer"));
        } else {
            names.push(arg.clone());
        }
    }
    if names.is_empty() {
        names.push("all".into());
    }
    for name in &names {
        match experiments::by_name(name, seed) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                }
            }
            None => die(&format!(
                "unknown experiment {name:?}; expected e1..e11 or all"
            )),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tables: {msg}");
    std::process::exit(2);
}
