//! Machine-readable bench metrics (`beep-bench-metrics`, version 1).
//!
//! The engine benches print human-oriented criterion text *and* write a
//! small JSON metrics file per bench — `BENCH_e8.json`, `BENCH_e9.json` —
//! that CI's perf bars parse (`ci/check_bench.sh` → the `check_bench`
//! binary) instead of grepping the text, and that gets uploaded as a
//! workflow artifact so the perf trajectory is queryable over time.
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "beep-bench-metrics",
//!   "version": 1,
//!   "bench": "e8_engine",
//!   "metrics": { "speedup_n100000": 210.5, … }
//! }
//! ```
//!
//! Files land in `$BENCH_JSON_DIR` (default `target/bench-json`).

use beep_scenarios::json::Json;
use std::path::PathBuf;

/// Schema identifier of a bench metrics file.
pub const SCHEMA_NAME: &str = "beep-bench-metrics";
/// Current schema version.
pub const SCHEMA_VERSION: i64 = 1;

/// The output directory: `$BENCH_JSON_DIR`, defaulting to the
/// workspace-root `target/bench-json` (cargo runs benches with the
/// *package* directory as CWD, so a relative default would scatter the
/// files).
#[must_use]
pub fn output_dir() -> PathBuf {
    std::env::var_os("BENCH_JSON_DIR").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
                .join("bench-json")
        },
        PathBuf::from,
    )
}

/// Serializes a metrics map to the schema above.
#[must_use]
pub fn metrics_json(bench: &str, metrics: &[(String, f64)]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA_NAME.into())),
        ("version", Json::Int(SCHEMA_VERSION)),
        ("bench", Json::Str(bench.into())),
        (
            "metrics",
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Float(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Writes `BENCH_{bench}.json` into [`output_dir`], returning the path.
///
/// # Errors
///
/// Propagates filesystem errors (missing permissions, full disk, …).
pub fn write_bench_json(bench: &str, metrics: &[(String, f64)]) -> std::io::Result<PathBuf> {
    let dir = output_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, metrics_json(bench, metrics).to_pretty())?;
    Ok(path)
}

/// Reads a metrics file back, validating schema and version.
///
/// # Errors
///
/// Returns a human-readable message on IO, parse, or schema failures.
pub fn read_bench_json(path: &std::path::Path) -> Result<Vec<(String, f64)>, String> {
    read_bench_file(path).map(|(_, metrics)| metrics)
}

/// Like [`read_bench_json`], but also returns the `bench` id recorded in
/// the file (`e8`, `e9`, …) — the trajectory rows carry it.
///
/// # Errors
///
/// Returns a human-readable message on IO, parse, or schema failures.
pub fn read_bench_file(path: &std::path::Path) -> Result<(String, Vec<(String, f64)>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match json.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA_NAME => {}
        other => {
            return Err(format!(
                "{}: schema is {other:?}, expected {SCHEMA_NAME:?}",
                path.display()
            ))
        }
    }
    match json.get("version").and_then(Json::as_i64) {
        Some(v) if v == SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "{}: version is {other:?}, expected {SCHEMA_VERSION}",
                path.display()
            ))
        }
    }
    let bench = json
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: missing bench id", path.display()))?
        .to_string();
    let metrics = json
        .get("metrics")
        .ok_or_else(|| format!("{}: missing metrics object", path.display()))?;
    match metrics {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| format!("{}: metric {k:?} is not a number", path.display()))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(|m| (bench, m)),
        _ => Err(format!("{}: metrics is not an object", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip_through_the_schema() {
        let metrics = vec![("speedup_n100000".to_string(), 42.5), ("cores".into(), 8.0)];
        let json = metrics_json("e8_engine", &metrics);
        assert_eq!(json.get("schema").unwrap().as_str(), Some(SCHEMA_NAME));
        let dir = std::env::temp_dir().join("beep-bench-perfjson-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, json.to_pretty()).unwrap();
        let back = read_bench_json(&path).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join("beep-bench-perfjson-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "{\"schema\": \"other\", \"version\": 1}").unwrap();
        assert!(read_bench_json(&path).unwrap_err().contains("schema"));
    }
}
