//! Output validators: independent checkers for the properties the
//! algorithms must guarantee. Tests and experiments validate every run with
//! these rather than trusting algorithm-internal state.

use beep_net::{Graph, NodeId};

/// A matching failure found by [`check_matching`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchingViolation {
    /// Node `v` output partner `u` but `{u,v}` is not an edge.
    NotAnEdge {
        /// The node whose output is invalid.
        v: NodeId,
        /// The claimed partner.
        partner: NodeId,
    },
    /// Node `v` output `u` but `u` did not output `v` (the paper's
    /// Symmetry condition).
    Asymmetric {
        /// The node whose output is unreciprocated.
        v: NodeId,
        /// The claimed partner.
        partner: NodeId,
    },
    /// Edge `{u,v}` has both endpoints unmatched (the paper's Maximality
    /// condition).
    NotMaximal {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// Checks the paper's Section 6 conditions for a maximal matching:
/// Symmetry (outputs pair up along edges) and Maximality (no edge has both
/// endpoints unmatched). `output[v]` is `Some(partner)` or `None` for
/// Unmatched.
///
/// Returns all violations (empty = valid).
///
/// # Panics
///
/// Panics if `output.len() != graph.node_count()`.
#[must_use]
pub fn check_matching(graph: &Graph, output: &[Option<NodeId>]) -> Vec<MatchingViolation> {
    assert_eq!(output.len(), graph.node_count(), "one output per node");
    let mut violations = Vec::new();
    for (v, &out) in output.iter().enumerate() {
        if let Some(u) = out {
            if u >= graph.node_count() || !graph.has_edge(v, u) {
                violations.push(MatchingViolation::NotAnEdge { v, partner: u });
            } else if output[u] != Some(v) {
                violations.push(MatchingViolation::Asymmetric { v, partner: u });
            }
        }
    }
    for (u, v) in graph.edges() {
        if output[u].is_none() && output[v].is_none() {
            violations.push(MatchingViolation::NotMaximal { u, v });
        }
    }
    violations
}

/// An MIS failure found by [`check_mis`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MisViolation {
    /// Adjacent nodes `u`, `v` are both in the set.
    NotIndependent {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Node `v` is outside the set and has no neighbor inside it.
    NotMaximal {
        /// The uncovered node.
        v: NodeId,
    },
}

/// Checks that `in_set` marks a maximal independent set.
///
/// # Panics
///
/// Panics if `in_set.len() != graph.node_count()`.
#[must_use]
pub fn check_mis(graph: &Graph, in_set: &[bool]) -> Vec<MisViolation> {
    assert_eq!(in_set.len(), graph.node_count(), "one flag per node");
    let mut violations = Vec::new();
    for (u, v) in graph.edges() {
        if in_set[u] && in_set[v] {
            violations.push(MisViolation::NotIndependent { u, v });
        }
    }
    for v in 0..graph.node_count() {
        if !in_set[v] && !graph.neighbors(v).iter().any(|&u| in_set[u]) {
            violations.push(MisViolation::NotMaximal { v });
        }
    }
    violations
}

/// A coloring failure found by [`check_coloring`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColoringViolation {
    /// Adjacent nodes `u`, `v` share a color.
    Monochrome {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The shared color.
        color: u64,
    },
    /// Node `v` was never colored.
    Uncolored {
        /// The uncolored node.
        v: NodeId,
    },
    /// Node `v`'s color exceeds the palette bound `Δ+1` (colors are
    /// `0..=Δ`).
    OutOfPalette {
        /// The offending node.
        v: NodeId,
        /// Its out-of-palette color.
        color: u64,
    },
}

/// Checks a (Δ+1)-coloring: total, proper, and within the palette
/// `{0, …, Δ}`.
///
/// # Panics
///
/// Panics if `colors.len() != graph.node_count()`.
#[must_use]
pub fn check_coloring(graph: &Graph, colors: &[Option<u64>]) -> Vec<ColoringViolation> {
    assert_eq!(colors.len(), graph.node_count(), "one color per node");
    let mut violations = Vec::new();
    let palette = graph.max_degree() as u64;
    for (v, &c) in colors.iter().enumerate() {
        match c {
            None => violations.push(ColoringViolation::Uncolored { v }),
            Some(c) if c > palette => {
                violations.push(ColoringViolation::OutOfPalette { v, color: c })
            }
            Some(_) => {}
        }
    }
    for (u, v) in graph.edges() {
        if let (Some(cu), Some(cv)) = (colors[u], colors[v]) {
            if cu == cv {
                violations.push(ColoringViolation::Monochrome { u, v, color: cu });
            }
        }
    }
    violations
}

/// Checks a distance-2 (G²) coloring: total, and no two nodes within
/// distance ≤ 2 share a color. Returns violating node pairs / uncolored
/// nodes as strings (empty = valid).
///
/// # Panics
///
/// Panics if `colors.len() != graph.node_count()`.
#[must_use]
pub fn check_distance2_coloring(graph: &Graph, colors: &[Option<u64>]) -> Vec<String> {
    assert_eq!(colors.len(), graph.node_count(), "one color per node");
    let mut violations = Vec::new();
    for (v, c) in colors.iter().enumerate() {
        if c.is_none() {
            violations.push(format!("node {v} uncolored"));
        }
    }
    for v in 0..graph.node_count() {
        for &u in graph.neighbors(v) {
            if u > v && colors[u].is_some() && colors[u] == colors[v] {
                violations.push(format!("adjacent {v},{u} share color {:?}", colors[v]));
            }
            for &w in graph.neighbors(u) {
                if w > v && colors[w].is_some() && colors[w] == colors[v] {
                    violations.push(format!("distance-2 {v},{w} share color {:?}", colors[v]));
                }
            }
        }
    }
    violations.sort_unstable();
    violations.dedup();
    violations
}

/// Checks a BFS tree rooted at `root`: every reachable node's distance
/// matches true BFS distance and its parent is a neighbor one step closer.
/// Returns human-readable violation strings (empty = valid).
///
/// # Panics
///
/// Panics on length mismatches.
#[must_use]
pub fn check_bfs_tree(
    graph: &Graph,
    root: NodeId,
    dist: &[Option<usize>],
    parent: &[Option<NodeId>],
) -> Vec<String> {
    assert_eq!(dist.len(), graph.node_count());
    assert_eq!(parent.len(), graph.node_count());
    let truth = graph.bfs_distances(root);
    let mut violations = Vec::new();
    for v in 0..graph.node_count() {
        if dist[v] != truth[v] {
            violations.push(format!(
                "node {v}: claimed distance {:?}, true {:?}",
                dist[v], truth[v]
            ));
        }
        match (dist[v], parent[v]) {
            (Some(0), None) if v == root => {}
            (Some(0), _) if v != root => violations.push(format!("node {v} claims distance 0")),
            (Some(d), Some(p)) => {
                if !graph.has_edge(v, p) {
                    violations.push(format!("node {v}: parent {p} not a neighbor"));
                } else if dist[p] != Some(d - 1) {
                    violations.push(format!("node {v}: parent {p} not one step closer"));
                }
            }
            (Some(d), None) if d > 0 => {
                violations.push(format!("node {v}: distance {d} but no parent"))
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    #[test]
    fn valid_matching_passes() {
        let g = topology::path(4).unwrap(); // 0-1-2-3
        let output = vec![Some(1), Some(0), Some(3), Some(2)];
        assert!(check_matching(&g, &output).is_empty());
    }

    #[test]
    fn matching_detects_asymmetry() {
        let g = topology::path(3).unwrap();
        let output = vec![Some(1), None, None];
        let v = check_matching(&g, &output);
        assert!(v.contains(&MatchingViolation::Asymmetric { v: 0, partner: 1 }));
    }

    #[test]
    fn matching_detects_non_edge() {
        let g = topology::path(3).unwrap();
        let output = vec![Some(2), None, Some(0)];
        let v = check_matching(&g, &output);
        assert!(v
            .iter()
            .any(|x| matches!(x, MatchingViolation::NotAnEdge { .. })));
    }

    #[test]
    fn matching_detects_non_maximality() {
        let g = topology::path(4).unwrap();
        let output = vec![None, None, Some(3), Some(2)];
        let v = check_matching(&g, &output);
        assert_eq!(v, vec![MatchingViolation::NotMaximal { u: 0, v: 1 }]);
    }

    #[test]
    fn empty_matching_on_edgeless_graph_is_valid() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert!(check_matching(&g, &[None, None, None]).is_empty());
    }

    #[test]
    fn valid_mis_passes() {
        let g = topology::path(5).unwrap();
        assert!(check_mis(&g, &[true, false, true, false, true]).is_empty());
    }

    #[test]
    fn mis_detects_dependence_and_non_maximality() {
        let g = topology::path(3).unwrap();
        let v = check_mis(&g, &[true, true, false]);
        assert!(v.contains(&MisViolation::NotIndependent { u: 0, v: 1 }));
        let v = check_mis(&g, &[true, false, false]);
        assert_eq!(v, vec![MisViolation::NotMaximal { v: 2 }]);
    }

    #[test]
    fn valid_coloring_passes() {
        let g = topology::cycle(4).unwrap();
        let colors = vec![Some(0), Some(1), Some(0), Some(1)];
        assert!(check_coloring(&g, &colors).is_empty());
    }

    #[test]
    fn coloring_detects_violations() {
        let g = topology::cycle(4).unwrap(); // Δ = 2, palette {0,1,2}
        let v = check_coloring(&g, &[Some(0), Some(0), Some(1), Some(1)]);
        assert!(v
            .iter()
            .any(|x| matches!(x, ColoringViolation::Monochrome { .. })));
        let v = check_coloring(&g, &[None, Some(1), Some(0), Some(1)]);
        assert_eq!(v, vec![ColoringViolation::Uncolored { v: 0 }]);
        let v = check_coloring(&g, &[Some(9), Some(1), Some(0), Some(1)]);
        assert!(v
            .iter()
            .any(|x| matches!(x, ColoringViolation::OutOfPalette { color: 9, .. })));
    }

    #[test]
    fn valid_bfs_tree_passes() {
        let g = topology::path(4).unwrap();
        let dist = vec![Some(0), Some(1), Some(2), Some(3)];
        let parent = vec![None, Some(0), Some(1), Some(2)];
        assert!(check_bfs_tree(&g, 0, &dist, &parent).is_empty());
    }

    #[test]
    fn bfs_tree_detects_wrong_distance() {
        let g = topology::path(3).unwrap();
        let dist = vec![Some(0), Some(1), Some(1)];
        let parent = vec![None, Some(0), Some(1)];
        assert!(!check_bfs_tree(&g, 0, &dist, &parent).is_empty());
    }
}
