//! Fixed-width message payloads and bit-level packing helpers.

use beep_bits::BitVec;

/// An `O(log n)`-bit message payload.
///
/// The models in this crate fix one exact message width per run (the
/// paper's `γ·log n`); [`MessageWriter`] packs structured fields into that
/// width and [`MessageReader`] unpacks them. Messages order
/// lexicographically by bit content, which the runners use to deliver
/// receptions in a canonical order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Message {
    bits: Vec<bool>,
}

impl Message {
    /// Wraps raw bits as a message.
    #[must_use]
    pub fn from_bits(bits: &BitVec) -> Self {
        Message {
            bits: bits.iter_bits().collect(),
        }
    }

    /// A zero message of the given width.
    #[must_use]
    pub fn zero(width: usize) -> Self {
        Message {
            bits: vec![false; width],
        }
    }

    /// The message width in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the message has zero width.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The payload as a [`BitVec`] (what actually crosses the channel).
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        BitVec::from_bools(&self.bits)
    }

    /// Begins reading structured fields from the front of the message.
    #[must_use]
    pub fn reader(&self) -> MessageReader<'_> {
        MessageReader {
            bits: &self.bits,
            cursor: 0,
        }
    }
}

/// Packs unsigned integer fields into a fixed-width [`Message`],
/// little-endian within each field, fields in push order from bit 0.
#[derive(Debug, Default)]
pub struct MessageWriter {
    bits: Vec<bool>,
}

impl MessageWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        MessageWriter::default()
    }

    /// Appends `width` bits encoding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits (a message-format
    /// bug, not a runtime condition).
    pub fn push_uint(&mut self, value: u64, width: usize) -> &mut Self {
        assert!(
            width >= 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.bits.push(i < 64 && value & (1u64 << i) != 0);
        }
        self
    }

    /// Appends a single flag bit.
    pub fn push_bit(&mut self, bit: bool) -> &mut Self {
        self.bits.push(bit);
        self
    }

    /// Finishes into a message of exactly `width` bits, zero-padding the
    /// tail.
    ///
    /// # Panics
    ///
    /// Panics if more than `width` bits were pushed.
    #[must_use]
    pub fn finish(&self, width: usize) -> Message {
        assert!(
            self.bits.len() <= width,
            "packed {} bits into a {width}-bit message",
            self.bits.len()
        );
        let mut bits = self.bits.clone();
        bits.resize(width, false);
        Message { bits }
    }
}

/// Reads fields back out of a [`Message`] in push order.
#[derive(Debug)]
pub struct MessageReader<'a> {
    bits: &'a [bool],
    cursor: usize,
}

impl MessageReader<'_> {
    /// Reads a `width`-bit unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics on reading past the end of the message.
    pub fn read_uint(&mut self, width: usize) -> u64 {
        assert!(
            self.cursor + width <= self.bits.len(),
            "message read out of bounds"
        );
        let mut value = 0u64;
        for i in 0..width {
            if self.bits[self.cursor + i] && i < 64 {
                value |= 1u64 << i;
            }
        }
        self.cursor += width;
        value
    }

    /// Reads a single flag bit.
    ///
    /// # Panics
    ///
    /// Panics on reading past the end of the message.
    pub fn read_bit(&mut self) -> bool {
        assert!(self.cursor < self.bits.len(), "message read out of bounds");
        let b = self.bits[self.cursor];
        self.cursor += 1;
        b
    }

    /// Bits remaining after the cursor.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let msg = MessageWriter::new()
            .push_uint(5, 4)
            .push_bit(true)
            .push_uint(1000, 12)
            .finish(32);
        assert_eq!(msg.len(), 32);
        let mut r = msg.reader();
        assert_eq!(r.read_uint(4), 5);
        assert!(r.read_bit());
        assert_eq!(r.read_uint(12), 1000);
        assert_eq!(r.remaining(), 15);
        // Padding reads back as zero.
        assert_eq!(r.read_uint(15), 0);
    }

    #[test]
    fn bitvec_roundtrip() {
        let bv = BitVec::from_u64_lsb(0xA5, 8);
        let msg = Message::from_bits(&bv);
        assert_eq!(msg.to_bitvec(), bv);
    }

    #[test]
    fn zero_message() {
        let z = Message::zero(16);
        assert_eq!(z.len(), 16);
        assert_eq!(z.to_bitvec().count_ones(), 0);
        assert!(!z.is_empty());
        assert!(Message::zero(0).is_empty());
    }

    #[test]
    fn ordering_is_lexicographic_by_bits() {
        let a = MessageWriter::new().push_uint(0, 4).finish(4);
        let b = MessageWriter::new().push_uint(1, 4).finish(4);
        assert!(a < b); // bit 0 set sorts after unset at first differing position
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_field_panics() {
        MessageWriter::new().push_uint(16, 4);
    }

    #[test]
    #[should_panic(expected = "packed")]
    fn overfull_message_panics() {
        let _ = MessageWriter::new().push_uint(0, 40).finish(32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let msg = Message::zero(4);
        msg.reader().read_uint(5);
    }
}
