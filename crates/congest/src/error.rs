//! Error type for model execution.

use std::error::Error;
use std::fmt;

/// Errors from running a CONGEST / Broadcast CONGEST algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A node emitted a message whose width differs from the model's fixed
    /// message size (the `O(log n)`-bit bound, made exact so the beeping
    /// simulation's distance code has a fixed block length).
    MessageWidth {
        /// The run's fixed message width in bits.
        expected: usize,
        /// The emitted message's width.
        actual: usize,
        /// The emitting node.
        node: usize,
    },
    /// The number of algorithm instances differs from the node count.
    NodeCount {
        /// Expected instances (= nodes).
        expected: usize,
        /// Provided instances.
        actual: usize,
    },
    /// A CONGEST node addressed a message to a non-neighbor.
    NotANeighbor {
        /// The sender.
        from: usize,
        /// The invalid addressee.
        to: usize,
    },
    /// The run did not complete within its round budget.
    RoundBudgetExhausted {
        /// The exhausted budget.
        budget: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::MessageWidth {
                expected,
                actual,
                node,
            } => write!(
                f,
                "node {node} emitted a {actual}-bit message; the model fixes {expected} bits"
            ),
            CongestError::NodeCount { expected, actual } => {
                write!(f, "got {actual} algorithm instances for {expected} nodes")
            }
            CongestError::NotANeighbor { from, to } => {
                write!(f, "node {from} addressed a message to non-neighbor {to}")
            }
            CongestError::RoundBudgetExhausted { budget } => {
                write!(f, "algorithm did not complete within {budget} rounds")
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = CongestError::MessageWidth {
            expected: 32,
            actual: 40,
            node: 3,
        };
        for needle in ["32", "40", "3"] {
            assert!(e.to_string().contains(needle));
        }
        assert!(CongestError::NotANeighbor { from: 1, to: 2 }
            .to_string()
            .contains("non-neighbor"));
    }
}
