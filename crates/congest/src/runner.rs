//! Native (direct-delivery) runners for the two models.
//!
//! These execute algorithms under the models *as defined* — they are both
//! the reference semantics the beeping simulation must reproduce and the
//! baseline for round-count comparisons (a Broadcast CONGEST round here
//! costs 1; under beep simulation it costs `Θ(Δ log n)`).

use crate::error::CongestError;
use crate::message::Message;
use crate::model::{BroadcastAlgorithm, CongestAlgorithm, NodeCtx};
use beep_net::Graph;

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Communication rounds executed.
    pub rounds: usize,
    /// Total messages delivered (sum over rounds and receivers).
    pub deliveries: u64,
}

/// Executes [`BroadcastAlgorithm`]s with direct message delivery.
#[derive(Debug)]
pub struct BroadcastRunner<'g> {
    graph: &'g Graph,
    message_bits: usize,
    seed: u64,
}

impl<'g> BroadcastRunner<'g> {
    /// Creates a runner over `graph` with the given exact message width and
    /// randomness seed (node `v`'s algorithm receives seed `seed ⊕ mix(v)`
    /// via its [`NodeCtx`]).
    #[must_use]
    pub fn new(graph: &'g Graph, message_bits: usize, seed: u64) -> Self {
        BroadcastRunner {
            graph,
            message_bits,
            seed,
        }
    }

    /// The fixed message width.
    #[must_use]
    pub fn message_bits(&self) -> usize {
        self.message_bits
    }

    /// Initializes every node's algorithm with its context.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCount`] on an instance-count mismatch.
    pub fn init<A: BroadcastAlgorithm + ?Sized>(
        &self,
        algorithms: &mut [Box<A>],
    ) -> Result<(), CongestError> {
        let n = self.graph.node_count();
        if algorithms.len() != n {
            return Err(CongestError::NodeCount {
                expected: n,
                actual: algorithms.len(),
            });
        }
        for (v, algo) in algorithms.iter_mut().enumerate() {
            algo.init(&self.node_ctx(v));
        }
        Ok(())
    }

    /// The context the runner hands node `v`.
    #[must_use]
    pub fn node_ctx(&self, v: usize) -> NodeCtx {
        NodeCtx {
            node: v,
            n: self.graph.node_count(),
            degree: self.graph.degree(v),
            message_bits: self.message_bits,
            seed: self.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Runs one communication round: collect, validate, deliver.
    /// Returns the number of messages delivered.
    ///
    /// # Errors
    ///
    /// * [`CongestError::NodeCount`] on an instance-count mismatch.
    /// * [`CongestError::MessageWidth`] if a node emits a message that is
    ///   not exactly `message_bits` wide.
    pub fn run_round<A: BroadcastAlgorithm + ?Sized>(
        &self,
        round: usize,
        algorithms: &mut [Box<A>],
    ) -> Result<u64, CongestError> {
        let n = self.graph.node_count();
        if algorithms.len() != n {
            return Err(CongestError::NodeCount {
                expected: n,
                actual: algorithms.len(),
            });
        }
        let mut outgoing: Vec<Option<Message>> = Vec::with_capacity(n);
        for (v, algo) in algorithms.iter_mut().enumerate() {
            let msg = algo.round_message(round);
            if let Some(m) = &msg {
                if m.len() != self.message_bits {
                    return Err(CongestError::MessageWidth {
                        expected: self.message_bits,
                        actual: m.len(),
                        node: v,
                    });
                }
            }
            outgoing.push(msg);
        }
        let mut delivered = 0u64;
        for (v, algo) in algorithms.iter_mut().enumerate() {
            let mut inbox: Vec<Message> = self
                .graph
                .neighbors(v)
                .iter()
                .filter_map(|&u| outgoing[u].clone())
                .collect();
            // Canonical order: reception is an anonymous multiset.
            inbox.sort_unstable();
            delivered += inbox.len() as u64;
            algo.on_receive(round, &inbox);
        }
        Ok(delivered)
    }

    /// Initializes and runs until every node is done or the budget is hit.
    ///
    /// # Errors
    ///
    /// Propagates per-round errors, plus
    /// [`CongestError::RoundBudgetExhausted`] if the algorithms never all
    /// finish.
    pub fn run_to_completion<A: BroadcastAlgorithm + ?Sized>(
        &self,
        algorithms: &mut [Box<A>],
        max_rounds: usize,
    ) -> Result<RunReport, CongestError> {
        self.init(algorithms)?;
        let mut deliveries = 0u64;
        for round in 0..max_rounds {
            if algorithms.iter().all(|a| a.is_done()) {
                return Ok(RunReport {
                    rounds: round,
                    deliveries,
                });
            }
            deliveries += self.run_round(round, algorithms)?;
        }
        if algorithms.iter().all(|a| a.is_done()) {
            Ok(RunReport {
                rounds: max_rounds,
                deliveries,
            })
        } else {
            Err(CongestError::RoundBudgetExhausted { budget: max_rounds })
        }
    }
}

/// Executes [`CongestAlgorithm`]s with direct per-neighbor delivery.
#[derive(Debug)]
pub struct CongestRunner<'g> {
    graph: &'g Graph,
    message_bits: usize,
    seed: u64,
}

impl<'g> CongestRunner<'g> {
    /// Creates a runner over `graph` with the given exact message width.
    #[must_use]
    pub fn new(graph: &'g Graph, message_bits: usize, seed: u64) -> Self {
        CongestRunner {
            graph,
            message_bits,
            seed,
        }
    }

    /// The context the runner hands node `v`.
    #[must_use]
    pub fn node_ctx(&self, v: usize) -> NodeCtx {
        NodeCtx {
            node: v,
            n: self.graph.node_count(),
            degree: self.graph.degree(v),
            message_bits: self.message_bits,
            seed: self.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Initializes and runs until every node is done or the budget is hit.
    ///
    /// # Errors
    ///
    /// * [`CongestError::NodeCount`], [`CongestError::MessageWidth`],
    ///   [`CongestError::NotANeighbor`] per round.
    /// * [`CongestError::RoundBudgetExhausted`] at the budget.
    pub fn run_to_completion<A: CongestAlgorithm + ?Sized>(
        &self,
        algorithms: &mut [Box<A>],
        max_rounds: usize,
    ) -> Result<RunReport, CongestError> {
        let n = self.graph.node_count();
        if algorithms.len() != n {
            return Err(CongestError::NodeCount {
                expected: n,
                actual: algorithms.len(),
            });
        }
        for (v, algo) in algorithms.iter_mut().enumerate() {
            algo.init(&self.node_ctx(v));
        }
        let mut deliveries = 0u64;
        for round in 0..max_rounds {
            if algorithms.iter().all(|a| a.is_done()) {
                return Ok(RunReport {
                    rounds: round,
                    deliveries,
                });
            }
            let mut inboxes: Vec<Vec<(usize, Message)>> = vec![Vec::new(); n];
            for (v, algo) in algorithms.iter_mut().enumerate() {
                for (to, msg) in algo.round_messages(round) {
                    if !self.graph.has_edge(v, to) {
                        return Err(CongestError::NotANeighbor { from: v, to });
                    }
                    if msg.len() != self.message_bits {
                        return Err(CongestError::MessageWidth {
                            expected: self.message_bits,
                            actual: msg.len(),
                            node: v,
                        });
                    }
                    inboxes[to].push((v, msg));
                }
            }
            for (v, algo) in algorithms.iter_mut().enumerate() {
                let mut inbox = std::mem::take(&mut inboxes[v]);
                inbox.sort_unstable();
                deliveries += inbox.len() as u64;
                algo.on_receive(round, &inbox);
            }
        }
        if algorithms.iter().all(|a| a.is_done()) {
            Ok(RunReport {
                rounds: max_rounds,
                deliveries,
            })
        } else {
            Err(CongestError::RoundBudgetExhausted { budget: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageWriter;
    use beep_net::topology;

    /// Broadcast test algorithm: every node broadcasts its id once in round
    /// 0, records everything it hears, then is done.
    struct IdOnce {
        ctx: Option<NodeCtx>,
        heard: Vec<u64>,
        done: bool,
    }
    impl IdOnce {
        fn new() -> Self {
            IdOnce {
                ctx: None,
                heard: Vec::new(),
                done: false,
            }
        }
    }
    impl BroadcastAlgorithm for IdOnce {
        fn init(&mut self, ctx: &NodeCtx) {
            self.ctx = Some(*ctx);
        }
        fn round_message(&mut self, round: usize) -> Option<Message> {
            let ctx = self.ctx.as_ref().expect("init called first");
            (round == 0).then(|| {
                MessageWriter::new()
                    .push_uint(ctx.node as u64, ctx.id_bits())
                    .finish(ctx.message_bits)
            })
        }
        fn on_receive(&mut self, _round: usize, received: &[Message]) {
            let bits = self.ctx.as_ref().unwrap().id_bits();
            for m in received {
                self.heard.push(m.reader().read_uint(bits));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn broadcast_delivers_neighbor_ids() {
        let g = topology::path(4).unwrap();
        let runner = BroadcastRunner::new(&g, 16, 0);
        let mut algos: Vec<Box<IdOnce>> = (0..4).map(|_| Box::new(IdOnce::new())).collect();
        let report = runner.run_to_completion(&mut algos, 10).unwrap();
        assert_eq!(report.rounds, 1);
        assert_eq!(algos[0].heard, vec![1]);
        assert_eq!(algos[1].heard, vec![0, 2]);
        assert_eq!(algos[2].heard, vec![1, 3]);
        assert_eq!(algos[3].heard, vec![2]);
        assert_eq!(report.deliveries, 6);
    }

    #[test]
    fn silent_nodes_deliver_nothing() {
        struct Silent {
            done: bool,
            inbox_sizes: Vec<usize>,
        }
        impl BroadcastAlgorithm for Silent {
            fn init(&mut self, _ctx: &NodeCtx) {}
            fn round_message(&mut self, _round: usize) -> Option<Message> {
                None
            }
            fn on_receive(&mut self, _round: usize, received: &[Message]) {
                self.inbox_sizes.push(received.len());
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = topology::complete(3).unwrap();
        let runner = BroadcastRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<Silent>> = (0..3)
            .map(|_| {
                Box::new(Silent {
                    done: false,
                    inbox_sizes: Vec::new(),
                })
            })
            .collect();
        let report = runner.run_to_completion(&mut algos, 5).unwrap();
        assert_eq!(report.deliveries, 0);
        assert!(algos.iter().all(|a| a.inbox_sizes == vec![0]));
    }

    #[test]
    fn message_width_enforced() {
        struct WrongWidth;
        impl BroadcastAlgorithm for WrongWidth {
            fn init(&mut self, _ctx: &NodeCtx) {}
            fn round_message(&mut self, _round: usize) -> Option<Message> {
                Some(Message::zero(7))
            }
            fn on_receive(&mut self, _round: usize, _received: &[Message]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = topology::path(2).unwrap();
        let runner = BroadcastRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<WrongWidth>> = vec![Box::new(WrongWidth), Box::new(WrongWidth)];
        assert_eq!(
            runner.run_to_completion(&mut algos, 5),
            Err(CongestError::MessageWidth {
                expected: 8,
                actual: 7,
                node: 0
            })
        );
    }

    #[test]
    fn node_count_enforced() {
        let g = topology::path(3).unwrap();
        let runner = BroadcastRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<IdOnce>> = vec![Box::new(IdOnce::new())];
        assert_eq!(
            runner.run_to_completion(&mut algos, 5),
            Err(CongestError::NodeCount {
                expected: 3,
                actual: 1
            })
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        struct Never;
        impl BroadcastAlgorithm for Never {
            fn init(&mut self, _ctx: &NodeCtx) {}
            fn round_message(&mut self, _round: usize) -> Option<Message> {
                None
            }
            fn on_receive(&mut self, _round: usize, _received: &[Message]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = topology::path(2).unwrap();
        let runner = BroadcastRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<Never>> = vec![Box::new(Never), Box::new(Never)];
        assert_eq!(
            runner.run_to_completion(&mut algos, 3),
            Err(CongestError::RoundBudgetExhausted { budget: 3 })
        );
    }

    /// CONGEST test algorithm: node v sends its id to each neighbor with a
    /// per-neighbor tweak, verifying addressed delivery.
    struct Addressed {
        ctx: Option<NodeCtx>,
        heard: Vec<(usize, u64)>,
        done: bool,
    }
    impl CongestAlgorithm for Addressed {
        fn init(&mut self, ctx: &NodeCtx) {
            self.ctx = Some(*ctx);
        }
        fn round_messages(&mut self, round: usize) -> Vec<(usize, Message)> {
            if round > 0 {
                return Vec::new();
            }
            let ctx = self.ctx.as_ref().unwrap();
            let me = ctx.node;
            // On a path, neighbors are me±1.
            let mut out = Vec::new();
            for to in [me.wrapping_sub(1), me + 1] {
                if to < ctx.n {
                    let payload = (me as u64) * 100 + to as u64;
                    out.push((to, MessageWriter::new().push_uint(payload, 16).finish(16)));
                }
            }
            out
        }
        fn on_receive(&mut self, _round: usize, received: &[(usize, Message)]) {
            for (from, m) in received {
                self.heard.push((*from, m.reader().read_uint(16)));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn congest_addressed_delivery() {
        let g = topology::path(3).unwrap();
        let runner = CongestRunner::new(&g, 16, 0);
        let mut algos: Vec<Box<Addressed>> = (0..3)
            .map(|_| {
                Box::new(Addressed {
                    ctx: None,
                    heard: Vec::new(),
                    done: false,
                })
            })
            .collect();
        runner.run_to_completion(&mut algos, 5).unwrap();
        // Node 1 hears from 0 (payload 0*100+1) and from 2 (payload 2*100+1).
        assert_eq!(algos[1].heard, vec![(0, 1), (2, 201)]);
        assert_eq!(algos[0].heard, vec![(1, 100)]);
        assert_eq!(algos[2].heard, vec![(1, 102)]);
    }

    #[test]
    fn congest_rejects_non_neighbor() {
        struct BadAddress;
        impl CongestAlgorithm for BadAddress {
            fn init(&mut self, _ctx: &NodeCtx) {}
            fn round_messages(&mut self, _round: usize) -> Vec<(usize, Message)> {
                vec![(2, Message::zero(8))]
            }
            fn on_receive(&mut self, _round: usize, _received: &[(usize, Message)]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = topology::path(3).unwrap(); // 0-1-2: 0 and 2 not adjacent
        let runner = CongestRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<BadAddress>> = vec![
            Box::new(BadAddress),
            Box::new(BadAddress),
            Box::new(BadAddress),
        ];
        assert_eq!(
            runner.run_to_completion(&mut algos, 5),
            Err(CongestError::NotANeighbor { from: 0, to: 2 })
        );
    }
}
