//! The algorithm-facing model traits.

use crate::message::Message;
use beep_net::NodeId;

/// Per-node static context handed to an algorithm at initialization.
///
/// Node IDs are the graph indices `0..n` (the paper's "unique identifier
/// `ID_v ∈ [n]`", Definition 13). Experiments that need larger ID spaces
/// (e.g. Theorem 22's IDs from `[n⁴]`) draw them internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's index / identifier.
    pub node: NodeId,
    /// Total number of nodes `n`.
    pub n: usize,
    /// This node's degree.
    pub degree: usize,
    /// The run's fixed message width in bits (the paper's `γ·log n`).
    pub message_bits: usize,
    /// Seed for this node's private randomness (already node-separated by
    /// the runner).
    pub seed: u64,
}

impl NodeCtx {
    /// Bits needed to address any node id in `[n]` (`⌈log₂ n⌉`, min 1).
    #[must_use]
    pub fn id_bits(&self) -> usize {
        id_bits_for(self.n)
    }
}

/// `⌈log₂ n⌉` (min 1): the width of one node id field.
#[must_use]
pub fn id_bits_for(n: usize) -> usize {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as usize
}

/// A node-local Broadcast CONGEST algorithm.
///
/// The runner drives each round as: `round_message` on every node →
/// delivery → `on_receive` on every node with the sorted multiset of
/// neighbor messages. Returning `None` from `round_message` means staying
/// silent that round (neighbors simply receive nothing from this node).
pub trait BroadcastAlgorithm {
    /// Called once before round 0.
    fn init(&mut self, ctx: &NodeCtx);

    /// This round's broadcast, or `None` to stay silent. Must be exactly
    /// `ctx.message_bits` wide when present.
    fn round_message(&mut self, round: usize) -> Option<Message>;

    /// Receives the canonical-sorted multiset of messages the node's
    /// neighbors broadcast this round (no sender identity — see the crate
    /// docs).
    fn on_receive(&mut self, round: usize, received: &[Message]);

    /// Whether this node has terminated (stopped acting and producing
    /// output). The runner stops when all nodes are done.
    fn is_done(&self) -> bool;
}

/// A node-local CONGEST algorithm: per-neighbor messages.
///
/// Reception is a sorted list of `(sender, message)` pairs — CONGEST's
/// usual port knowledge.
pub trait CongestAlgorithm {
    /// Called once before round 0.
    fn init(&mut self, ctx: &NodeCtx);

    /// This round's outgoing messages, each addressed to a neighbor.
    /// An empty vector means silence.
    fn round_messages(&mut self, round: usize) -> Vec<(NodeId, Message)>;

    /// Receives `(sender, message)` pairs sorted by sender.
    fn on_receive(&mut self, round: usize, received: &[(NodeId, Message)]);

    /// Whether this node has terminated.
    fn is_done(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits() {
        assert_eq!(id_bits_for(0), 1);
        assert_eq!(id_bits_for(1), 1);
        assert_eq!(id_bits_for(2), 1);
        assert_eq!(id_bits_for(3), 2);
        assert_eq!(id_bits_for(4), 2);
        assert_eq!(id_bits_for(5), 3);
        assert_eq!(id_bits_for(1024), 10);
        assert_eq!(id_bits_for(1025), 11);
    }

    #[test]
    fn ctx_id_bits() {
        let ctx = NodeCtx {
            node: 0,
            n: 100,
            degree: 3,
            message_bits: 64,
            seed: 1,
        };
        assert_eq!(ctx.id_bits(), 7);
    }
}
