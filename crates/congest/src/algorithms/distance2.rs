//! Distributed distance-2 coloring in CONGEST.
//!
//! This is the *setup primitive* behind the prior-work simulations the
//! paper improves on (\[7\], \[4\]): before their TDMA schedules can run, the
//! network must color `G²` so that no two nodes within distance 2 share a
//! color. Computing such a coloring distributedly is exactly where those
//! works pay `Δ⁶` / `Δ⁴ log n` setup rounds; this module provides a
//! randomized CONGEST version so the workspace can *run* (not just model)
//! a distributed setup and feed the result to the TDMA baseline.
//!
//! # Protocol (3 CONGEST rounds per iteration)
//!
//! 1. **Candidate** — every uncolored node draws a color uniformly from
//!    `[2(Δ²+1)]` minus its neighbors' finalized colors and sends it to
//!    all neighbors.
//! 2. **Report** — every node answers each candidate individually (this
//!    is where per-neighbor CONGEST messages are essential): "your color
//!    collides with something I can see" — the witness's own candidate or
//!    final, or any *other* neighbor's candidate or final. A common
//!    neighbor therefore catches every distance-2 collision.
//! 3. **Finalize** — candidates with no direct collision and no conflict
//!    report lock their color and announce it.
//!
//! Safety is unconditional (a witness vetoes every distance-2 collision
//! before it can finalize); with palette `2(Δ²+1)` and at most `Δ²`
//! blocked colors, each attempt succeeds with probability `> ½`, so all
//! nodes finish in `O(log n)` iterations w.h.p.

use crate::message::{Message, MessageWriter};
use crate::model::{CongestAlgorithm, NodeCtx};
use beep_net::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

const TAG_CAND: u64 = 0;
const TAG_REPORT: u64 = 1;
const TAG_FINAL: u64 = 2;

/// Per-node state of the distributed distance-2 coloring.
#[derive(Debug)]
pub struct Distance2Coloring {
    ctx: Option<NodeCtx>,
    rng: Option<StdRng>,
    /// Global maximum degree Δ (a model parameter all nodes know).
    delta: usize,
    /// This node's neighbor ids (CONGEST port knowledge).
    neighbors: Vec<NodeId>,
    /// This iteration's candidate color.
    candidate: Option<u64>,
    /// Withdrawn by a direct collision this iteration.
    withdrawn: bool,
    /// Conflict report received this iteration.
    vetoed: bool,
    /// Neighbor candidates seen this iteration (for witnessing).
    neighbor_candidates: Vec<(NodeId, u64)>,
    /// Finalized colors of neighbors.
    neighbor_finals: HashMap<NodeId, u64>,
    /// Our final color.
    color: Option<u64>,
    /// Whether we have announced our final color.
    announced: bool,
    max_iterations: usize,
}

impl Distance2Coloring {
    /// Creates a node instance. `delta` must be the graph's maximum
    /// degree; `neighbors` is the node's adjacency list (standard CONGEST
    /// port knowledge — equivalently obtainable by one initial id
    /// exchange, as the Corollary 12 wrapper does); `max_iterations`
    /// bounds the retry loop (use
    /// [`suggested_iterations`](Self::suggested_iterations)).
    #[must_use]
    pub fn new(delta: usize, neighbors: Vec<NodeId>, max_iterations: usize) -> Self {
        Distance2Coloring {
            ctx: None,
            rng: None,
            delta,
            neighbors,
            candidate: None,
            withdrawn: false,
            vetoed: false,
            neighbor_candidates: Vec::new(),
            neighbor_finals: HashMap::new(),
            color: None,
            announced: false,
            max_iterations,
        }
    }

    /// `8·⌈log₂ n⌉ + 8` iterations — far above the w.h.p. bound.
    #[must_use]
    pub fn suggested_iterations(n: usize) -> usize {
        8 * crate::model::id_bits_for(n) + 8
    }

    /// Palette size `2(Δ²+1)`.
    #[must_use]
    pub fn palette_size(delta: usize) -> u64 {
        2 * (delta as u64 * delta as u64 + 1)
    }

    /// Bits of one color field.
    fn color_bits(delta: usize) -> usize {
        (64 - (Self::palette_size(delta) - 1).leading_zeros()).max(1) as usize
    }

    /// The CONGEST message width this algorithm needs: a 2-bit tag plus
    /// one color field.
    #[must_use]
    pub fn required_message_bits(delta: usize) -> usize {
        2 + Self::color_bits(delta)
    }

    /// Total CONGEST rounds for an iteration budget (3 per iteration).
    #[must_use]
    pub fn rounds_for(iterations: usize) -> usize {
        3 * iterations
    }

    /// The final color, or `None` while running.
    #[must_use]
    pub fn output(&self) -> Option<u64> {
        self.color
    }

    fn ctx(&self) -> &NodeCtx {
        self.ctx.as_ref().expect("init() must run before rounds")
    }

    fn pack(&self, tag: u64, payload: u64) -> Message {
        let ctx = self.ctx();
        MessageWriter::new()
            .push_uint(tag, 2)
            .push_uint(payload, Self::color_bits(self.delta))
            .finish(ctx.message_bits)
    }

    fn unpack(&self, m: &Message) -> (u64, u64) {
        let mut r = m.reader();
        (r.read_uint(2), r.read_uint(Self::color_bits(self.delta)))
    }

    /// Everything this witness can see of color usage, *excluding* the
    /// asker `u`: own candidate/final, other neighbors' candidates and
    /// finals.
    fn conflicts_with_view(&self, asker: NodeId, color: u64) -> bool {
        if self.candidate == Some(color) || self.color == Some(color) {
            return true;
        }
        if self
            .neighbor_candidates
            .iter()
            .any(|&(w, c)| w != asker && c == color)
        {
            return true;
        }
        self.neighbor_finals
            .iter()
            .any(|(&w, &c)| w != asker && c == color)
    }
}

impl CongestAlgorithm for Distance2Coloring {
    fn init(&mut self, ctx: &NodeCtx) {
        self.rng = Some(StdRng::seed_from_u64(ctx.seed));
        self.ctx = Some(*ctx);
        if ctx.degree == 0 {
            self.color = Some(0);
            self.announced = true;
        }
    }

    fn round_messages(&mut self, round: usize) -> Vec<(NodeId, Message)> {
        let _ = *self.ctx(); // assert init ran
        match round % 3 {
            0 => {
                // Candidate round.
                self.neighbor_candidates.clear();
                self.withdrawn = false;
                self.vetoed = false;
                if self.color.is_some() {
                    return Vec::new();
                }
                let taken: Vec<u64> = self.neighbor_finals.values().copied().collect();
                let palette: Vec<u64> = (0..Self::palette_size(self.delta))
                    .filter(|c| !taken.contains(c))
                    .collect();
                let rng = self.rng.as_mut().expect("seeded");
                let candidate = palette[rng.random_range(0..palette.len())];
                self.candidate = Some(candidate);
                self.neighbors
                    .clone()
                    .into_iter()
                    .map(|u| (u, self.pack(TAG_CAND, candidate)))
                    .collect()
            }
            1 => {
                // Report round: answer each candidate individually.
                let answers: Vec<(NodeId, bool)> = self
                    .neighbor_candidates
                    .iter()
                    .map(|&(u, c)| (u, self.conflicts_with_view(u, c)))
                    .collect();
                answers
                    .into_iter()
                    .filter(|&(_, conflict)| conflict)
                    .map(|(u, _)| (u, self.pack(TAG_REPORT, 1)))
                    .collect()
            }
            2 => {
                // Finalize round.
                if self.color.is_none() && !self.withdrawn && !self.vetoed {
                    if let Some(c) = self.candidate {
                        self.color = Some(c);
                        self.announced = true;
                        self.candidate = None;
                        return self
                            .neighbors
                            .clone()
                            .into_iter()
                            .map(|u| (u, self.pack(TAG_FINAL, c)))
                            .collect();
                    }
                }
                self.candidate = None;
                // Iteration budget safety net (w.h.p. unreachable).
                if self.color.is_none() && round + 1 >= Self::rounds_for(self.max_iterations) {
                    self.color = Some(0);
                    self.announced = true;
                }
                Vec::new()
            }
            _ => unreachable!("round % 3 ∈ {{0,1,2}}"),
        }
    }

    fn on_receive(&mut self, round: usize, received: &[(NodeId, Message)]) {
        match round % 3 {
            0 => {
                for (from, m) in received {
                    let (tag, color) = self.unpack(m);
                    if tag == TAG_CAND {
                        self.neighbor_candidates.push((*from, color));
                        if self.candidate == Some(color) {
                            self.withdrawn = true; // direct collision
                        }
                    }
                }
            }
            1 => {
                for (_, m) in received {
                    if self.unpack(m).0 == TAG_REPORT {
                        self.vetoed = true;
                    }
                }
            }
            2 => {
                for (from, m) in received {
                    let (tag, color) = self.unpack(m);
                    if tag == TAG_FINAL {
                        self.neighbor_finals.insert(*from, color);
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    fn is_done(&self) -> bool {
        // Done as a *participant* when colored; but keep witnessing while
        // any neighbor is still uncolored.
        self.color.is_some()
            && self.announced
            && self.neighbor_finals.len() == self.ctx.as_ref().map_or(0, |c| c.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CongestRunner;
    use crate::validate::check_distance2_coloring;
    use beep_net::{topology, Graph};

    #[test]
    fn palette_and_widths() {
        assert_eq!(Distance2Coloring::palette_size(0), 2);
        assert_eq!(Distance2Coloring::palette_size(4), 34);
        assert!(Distance2Coloring::required_message_bits(4) >= 2 + 6);
        assert_eq!(Distance2Coloring::rounds_for(5), 15);
    }

    fn run_d2(graph: &Graph, seed: u64) -> Vec<Option<u64>> {
        let n = graph.node_count();
        let delta = graph.max_degree();
        let bits = Distance2Coloring::required_message_bits(delta);
        let iters = Distance2Coloring::suggested_iterations(n);
        let runner = CongestRunner::new(graph, bits, seed);
        let mut algos: Vec<Box<Distance2Coloring>> = (0..n)
            .map(|v| {
                Box::new(Distance2Coloring::new(
                    delta,
                    graph.neighbors(v).to_vec(),
                    iters,
                ))
            })
            .collect();
        runner
            .run_to_completion(&mut algos, Distance2Coloring::rounds_for(iters))
            .unwrap_or_else(|e| panic!("d2 coloring failed: {e}"));
        algos.iter().map(|a| a.output()).collect()
    }

    #[test]
    fn valid_on_standard_topologies() {
        for (name, g) in [
            ("path", topology::path(12).unwrap()),
            ("cycle", topology::cycle(11).unwrap()),
            ("star", topology::star(8).unwrap()),
            ("grid", topology::grid(4, 4).unwrap()),
            ("complete", topology::complete(6).unwrap()),
            ("bipartite", topology::complete_bipartite(4, 4).unwrap()),
        ] {
            for seed in 0..3 {
                let out = run_d2(&g, seed);
                let violations = check_distance2_coloring(&g, &out);
                assert!(violations.is_empty(), "{name} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn valid_on_random_regular_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for d in [3usize, 4] {
            let g = topology::random_regular(20, d, &mut rng).unwrap();
            let out = run_d2(&g, 5);
            let violations = check_distance2_coloring(&g, &out);
            assert!(violations.is_empty(), "d={d}: {violations:?}");
        }
    }

    #[test]
    fn colors_stay_inside_palette() {
        let g = topology::grid(3, 5).unwrap();
        let delta = g.max_degree();
        let out = run_d2(&g, 7);
        for c in out.into_iter().flatten() {
            assert!(c < Distance2Coloring::palette_size(delta));
        }
    }

    #[test]
    fn isolated_nodes_color_immediately() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let out = run_d2(&g, 9);
        assert_eq!(out[2], Some(0));
    }
}
