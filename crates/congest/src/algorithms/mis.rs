//! Luby's maximal independent set in Broadcast CONGEST.
//!
//! The classical `O(log n)`-round algorithm (Luby 1986), of the same family
//! as the paper's Algorithm 2: in each iteration every active node draws a
//! random value; local minima join the MIS and their neighbors drop out.
//! Two communication rounds per iteration (Value, Join).

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const TAG_VALUE: u64 = 0;
const TAG_JOIN: u64 = 1;

/// Per-node state of Luby's MIS.
///
/// Correctness is unconditional: ties are broken by `(value, id)`, a total
/// order, so adjacent nodes can never both be local minima.
#[derive(Debug)]
pub struct LubyMis {
    ctx: Option<NodeCtx>,
    rng: Option<StdRng>,
    active: bool,
    /// Final decision: `Some(true)` in the MIS, `Some(false)` dominated.
    decided: Option<bool>,
    /// This iteration's drawn value.
    my_value: Option<u64>,
    /// Whether this node is the local minimum this iteration.
    is_min: bool,
    max_iterations: usize,
}

impl LubyMis {
    /// Creates a node instance with an iteration budget (use
    /// [`suggested_iterations`](Self::suggested_iterations)).
    #[must_use]
    pub fn new(max_iterations: usize) -> Self {
        LubyMis {
            ctx: None,
            rng: None,
            active: true,
            decided: None,
            my_value: None,
            is_min: false,
            max_iterations,
        }
    }

    /// `8·⌈log₂ n⌉ + 8` iterations: comfortably above Luby's `O(log n)`
    /// w.h.p. bound at every scale we simulate.
    #[must_use]
    pub fn suggested_iterations(n: usize) -> usize {
        8 * crate::model::id_bits_for(n) + 8
    }

    /// The message width this algorithm needs for an `n`-node run:
    /// 1 tag bit, one id field, one `4·⌈log₂ n⌉`-bit value field.
    #[must_use]
    pub fn required_message_bits(n: usize) -> usize {
        let id_bits = crate::model::id_bits_for(n);
        1 + id_bits + Self::value_bits(n)
    }

    fn value_bits(n: usize) -> usize {
        4 * crate::model::id_bits_for(n)
    }

    /// Total communication rounds for an iteration budget.
    #[must_use]
    pub fn rounds_for(iterations: usize) -> usize {
        2 * iterations
    }

    /// `Some(true)` if in the MIS, `Some(false)` if dominated, `None` while
    /// running.
    #[must_use]
    pub fn output(&self) -> Option<bool> {
        self.decided
    }

    fn ctx(&self) -> &NodeCtx {
        self.ctx.as_ref().expect("init() must run before rounds")
    }
}

impl BroadcastAlgorithm for LubyMis {
    fn init(&mut self, ctx: &NodeCtx) {
        self.rng = Some(StdRng::seed_from_u64(ctx.seed));
        self.ctx = Some(*ctx);
        if ctx.degree == 0 {
            // Isolated nodes are trivially in every MIS.
            self.active = false;
            self.decided = Some(true);
        }
    }

    fn round_message(&mut self, round: usize) -> Option<Message> {
        if !self.active {
            return None;
        }
        let ctx = *self.ctx();
        let id_bits = ctx.id_bits();
        if round.is_multiple_of(2) {
            // Value round.
            let bits = Self::value_bits(ctx.n).min(63);
            let value = self
                .rng
                .as_mut()
                .expect("seeded")
                .random_range(0..(1u64 << bits));
            self.my_value = Some(value);
            self.is_min = true; // until a smaller neighbor value arrives
            Some(
                MessageWriter::new()
                    .push_uint(TAG_VALUE, 1)
                    .push_uint(ctx.node as u64, id_bits)
                    .push_uint(value, Self::value_bits(ctx.n))
                    .finish(ctx.message_bits),
            )
        } else {
            // Join round.
            if self.is_min && self.my_value.is_some() {
                self.decided = Some(true);
                self.active = false;
                Some(
                    MessageWriter::new()
                        .push_uint(TAG_JOIN, 1)
                        .push_uint(ctx.node as u64, id_bits)
                        .finish(ctx.message_bits),
                )
            } else {
                None
            }
        }
    }

    fn on_receive(&mut self, round: usize, received: &[Message]) {
        if !self.active {
            return;
        }
        let ctx = *self.ctx();
        let id_bits = ctx.id_bits();
        if round.is_multiple_of(2) {
            // Compare against active neighbors' values; (value, id) order.
            let mine = match self.my_value {
                Some(v) => (v, ctx.node as u64),
                None => return,
            };
            for m in received {
                let mut r = m.reader();
                if r.read_uint(1) != TAG_VALUE {
                    continue;
                }
                let id = r.read_uint(id_bits);
                let value = r.read_uint(Self::value_bits(ctx.n));
                if (value, id) < mine {
                    self.is_min = false;
                }
            }
        } else {
            // Any Join from a neighbor dominates us.
            for m in received {
                let mut r = m.reader();
                if r.read_uint(1) == TAG_JOIN {
                    self.decided = Some(false);
                    self.active = false;
                    return;
                }
            }
            // Iteration budget safety net (unreachable w.h.p. at the
            // suggested budget): undecided nodes give up *into* the set if
            // they have no decided neighbors left — but without global
            // info the safe fallback is to remain out; budget exhaustion
            // is reported by the runner instead.
            if round + 1 >= Self::rounds_for(self.max_iterations) {
                self.active = false;
                self.decided = Some(false);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.decided.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use crate::validate::check_mis;
    use beep_net::{topology, Graph};

    fn run_mis(graph: &Graph, seed: u64) -> Vec<bool> {
        let n = graph.node_count();
        let bits = LubyMis::required_message_bits(n);
        let iters = LubyMis::suggested_iterations(n);
        let runner = BroadcastRunner::new(graph, bits, seed);
        let mut algos: Vec<Box<LubyMis>> = (0..n).map(|_| Box::new(LubyMis::new(iters))).collect();
        runner
            .run_to_completion(&mut algos, LubyMis::rounds_for(iters))
            .unwrap_or_else(|e| panic!("MIS run failed: {e}"));
        algos.iter().map(|a| a.output().expect("done")).collect()
    }

    #[test]
    fn single_edge_picks_exactly_one() {
        let g = topology::path(2).unwrap();
        let out = run_mis(&g, 1);
        assert_eq!(out.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let out = run_mis(&g, 2);
        assert!(out[2] && out[3]);
        assert!(check_mis(&g, &out).is_empty());
    }

    #[test]
    fn complete_graph_picks_exactly_one() {
        for seed in 0..5 {
            let g = topology::complete(10).unwrap();
            let out = run_mis(&g, seed);
            assert_eq!(out.iter().filter(|&&b| b).count(), 1, "seed {seed}");
        }
    }

    #[test]
    fn valid_on_standard_topologies() {
        for (name, g) in [
            ("path", topology::path(20).unwrap()),
            ("cycle", topology::cycle(15).unwrap()),
            ("star", topology::star(12).unwrap()),
            ("grid", topology::grid(5, 5).unwrap()),
            ("tree", topology::binary_tree(31).unwrap()),
            ("hypercube", topology::hypercube(4).unwrap()),
        ] {
            for seed in 0..5 {
                let out = run_mis(&g, seed);
                let violations = check_mis(&g, &out);
                assert!(violations.is_empty(), "{name} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = topology::gnp(40, 0.2, &mut rng).unwrap();
            let out = run_mis(&g, seed);
            let violations = check_mis(&g, &out);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }
}
