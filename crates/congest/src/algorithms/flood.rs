//! Single-source message dissemination (flooding) in Broadcast CONGEST.
//!
//! The source broadcasts its payload in round 0; every node re-broadcasts
//! once upon first reception. After `D` rounds every node in the source's
//! component holds the payload — the message-passing counterpart of the
//! `O(D + b)` beep-wave broadcast the paper cites from \[19\]/\[9\].

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};
use beep_net::NodeId;

/// Per-node state of the flood.
#[derive(Debug)]
pub struct Flood {
    ctx: Option<NodeCtx>,
    source: NodeId,
    /// The payload value carried by the flood (source's input).
    input: u64,
    /// Width of the payload field in bits.
    payload_bits: usize,
    /// The received payload, once known.
    received: Option<u64>,
    /// Whether this node has re-broadcast.
    forwarded: bool,
}

impl Flood {
    /// Creates a node instance. Only the `source`'s `input` matters; other
    /// nodes may pass anything.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not fit in `payload_bits`.
    #[must_use]
    pub fn new(source: NodeId, input: u64, payload_bits: usize) -> Self {
        assert!(
            payload_bits >= 64 || input < (1u64 << payload_bits),
            "payload {input} does not fit in {payload_bits} bits"
        );
        Flood {
            ctx: None,
            source,
            input,
            payload_bits,
            received: None,
            forwarded: false,
        }
    }

    /// The payload this node holds (`None` until the wave arrives).
    #[must_use]
    pub fn output(&self) -> Option<u64> {
        self.received
    }
}

impl BroadcastAlgorithm for Flood {
    fn init(&mut self, ctx: &NodeCtx) {
        self.ctx = Some(*ctx);
        if ctx.node == self.source {
            self.received = Some(self.input);
        }
    }

    fn round_message(&mut self, _round: usize) -> Option<Message> {
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        match self.received {
            Some(payload) if !self.forwarded => {
                self.forwarded = true;
                Some(
                    MessageWriter::new()
                        .push_uint(payload, self.payload_bits)
                        .finish(ctx.message_bits),
                )
            }
            _ => None,
        }
    }

    fn on_receive(&mut self, _round: usize, received: &[Message]) {
        if self.received.is_none() {
            if let Some(m) = received.first() {
                self.received = Some(m.reader().read_uint(self.payload_bits));
            }
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use beep_net::topology;

    #[test]
    fn payload_reaches_everyone() {
        let g = topology::grid(4, 5).unwrap();
        let n = g.node_count();
        let runner = BroadcastRunner::new(&g, 16, 0);
        let mut algos: Vec<Box<Flood>> =
            (0..n).map(|_| Box::new(Flood::new(7, 0xBEE, 16))).collect();
        let report = runner.run_to_completion(&mut algos, n).unwrap();
        assert!(algos.iter().all(|a| a.output() == Some(0xBEE)));
        // Wave takes eccentricity(7) + 1 rounds.
        let ecc = g
            .bfs_distances(7)
            .into_iter()
            .map(|d| d.unwrap())
            .max()
            .unwrap();
        assert_eq!(report.rounds, ecc + 1);
    }

    #[test]
    fn non_source_input_is_ignored() {
        let g = topology::path(3).unwrap();
        let runner = BroadcastRunner::new(&g, 8, 0);
        let mut algos: Vec<Box<Flood>> = (0..3)
            .map(|v| Box::new(Flood::new(0, if v == 0 { 42 } else { 99 }, 8)))
            .collect();
        runner.run_to_completion(&mut algos, 5).unwrap();
        assert!(algos.iter().all(|a| a.output() == Some(42)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_payload_panics() {
        let _ = Flood::new(0, 256, 8);
    }
}
