//! Randomized (Δ+1)-coloring in Broadcast CONGEST.
//!
//! Each uncolored node repeatedly tries a uniformly random color from its
//! remaining palette (its own degree + 1 colors minus those finalized by
//! neighbors); a trial succeeds if no neighbor tried the same color in the
//! same iteration. This folklore algorithm finishes in `O(log n)`
//! iterations w.h.p. and, like everything in this module, only needs
//! anonymous broadcast — so it runs over noisy beeps via the paper's
//! simulation at `O(Δ log² n)` cost.

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

const TAG_TRY: u64 = 0;
const TAG_FINAL: u64 = 1;

/// Per-node state of the randomized (Δ+1)-coloring.
#[derive(Debug)]
pub struct RandomColoring {
    ctx: Option<NodeCtx>,
    rng: Option<StdRng>,
    /// Colors still available: `{0, …, deg}` minus neighbors' finals.
    palette: Vec<u64>,
    /// This iteration's attempted color.
    candidate: Option<u64>,
    /// Whether the attempt survived (no conflicting trial heard).
    survived: bool,
    /// Final color once fixed.
    color: Option<u64>,
    /// Set after the Final announcement has been broadcast.
    announced: bool,
    max_iterations: usize,
}

impl RandomColoring {
    /// Creates a node instance with an iteration budget (use
    /// [`suggested_iterations`](Self::suggested_iterations)).
    #[must_use]
    pub fn new(max_iterations: usize) -> Self {
        RandomColoring {
            ctx: None,
            rng: None,
            palette: Vec::new(),
            candidate: None,
            survived: false,
            color: None,
            announced: false,
            max_iterations,
        }
    }

    /// `8·⌈log₂ n⌉ + 8` iterations — far above the w.h.p. bound.
    #[must_use]
    pub fn suggested_iterations(n: usize) -> usize {
        8 * crate::model::id_bits_for(n) + 8
    }

    /// Message width: 1 tag bit plus one color field (colors fit in an id
    /// field since palettes have at most `Δ+1 ≤ n` entries).
    #[must_use]
    pub fn required_message_bits(n: usize) -> usize {
        1 + crate::model::id_bits_for(n) + 1
    }

    /// Total communication rounds for an iteration budget (2 per
    /// iteration: Try, Final).
    #[must_use]
    pub fn rounds_for(iterations: usize) -> usize {
        2 * iterations
    }

    /// The final color, or `None` while running.
    #[must_use]
    pub fn output(&self) -> Option<u64> {
        self.color
    }

    fn color_bits(n: usize) -> usize {
        crate::model::id_bits_for(n) + 1
    }

    fn ctx(&self) -> &NodeCtx {
        self.ctx.as_ref().expect("init() must run before rounds")
    }
}

impl BroadcastAlgorithm for RandomColoring {
    fn init(&mut self, ctx: &NodeCtx) {
        self.rng = Some(StdRng::seed_from_u64(ctx.seed));
        self.ctx = Some(*ctx);
        self.palette = (0..=ctx.degree as u64).collect();
    }

    fn round_message(&mut self, round: usize) -> Option<Message> {
        let ctx = *self.ctx();
        if round.is_multiple_of(2) {
            // Try round.
            if self.color.is_some() {
                return None;
            }
            let rng = self.rng.as_mut().expect("seeded");
            let candidate = *self
                .palette
                .choose(rng)
                .expect("palette of size deg+1 cannot empty before coloring");
            self.candidate = Some(candidate);
            self.survived = true;
            Some(
                MessageWriter::new()
                    .push_uint(TAG_TRY, 1)
                    .push_uint(candidate, Self::color_bits(ctx.n))
                    .finish(ctx.message_bits),
            )
        } else {
            // Final round: announce a surviving trial.
            match self.color {
                Some(color) if !self.announced => {
                    self.announced = true;
                    Some(
                        MessageWriter::new()
                            .push_uint(TAG_FINAL, 1)
                            .push_uint(color, Self::color_bits(ctx.n))
                            .finish(ctx.message_bits),
                    )
                }
                _ => None,
            }
        }
    }

    fn on_receive(&mut self, round: usize, received: &[Message]) {
        let ctx = *self.ctx();
        let color_bits = Self::color_bits(ctx.n);
        if round.is_multiple_of(2) {
            // Conflict detection.
            if let Some(candidate) = self.candidate {
                for m in received {
                    let mut r = m.reader();
                    if r.read_uint(1) == TAG_TRY && r.read_uint(color_bits) == candidate {
                        self.survived = false;
                    }
                }
                if self.survived && self.color.is_none() {
                    self.color = Some(candidate);
                    // Announced in the next Final round.
                }
                self.candidate = None;
            }
        } else {
            // Remove finalized neighbor colors from the palette.
            for m in received {
                let mut r = m.reader();
                if r.read_uint(1) == TAG_FINAL {
                    let c = r.read_uint(color_bits);
                    self.palette.retain(|&p| p != c);
                }
            }
            // Budget safety net: fall back to a palette color; conflicts
            // are possible only in the (w.h.p. unreachable) fallback.
            if self.color.is_none() && round + 1 >= Self::rounds_for(self.max_iterations) {
                self.color = self.palette.first().copied();
                self.announced = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.color.is_some() && self.announced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use crate::validate::check_coloring;
    use beep_net::{topology, Graph};

    fn run_coloring(graph: &Graph, seed: u64) -> Vec<Option<u64>> {
        let n = graph.node_count();
        let bits = RandomColoring::required_message_bits(n);
        let iters = RandomColoring::suggested_iterations(n);
        let runner = BroadcastRunner::new(graph, bits, seed);
        let mut algos: Vec<Box<RandomColoring>> = (0..n)
            .map(|_| Box::new(RandomColoring::new(iters)))
            .collect();
        runner
            .run_to_completion(&mut algos, RandomColoring::rounds_for(iters))
            .unwrap_or_else(|e| panic!("coloring run failed: {e}"));
        algos.iter().map(|a| a.output()).collect()
    }

    #[test]
    fn isolated_node_takes_color_zero() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(run_coloring(&g, 1), vec![Some(0)]);
    }

    #[test]
    fn edge_endpoints_differ() {
        let g = topology::path(2).unwrap();
        let out = run_coloring(&g, 2);
        assert_ne!(out[0], out[1]);
        assert!(check_coloring(&g, &out).is_empty());
    }

    #[test]
    fn valid_on_standard_topologies() {
        for (name, g) in [
            ("path", topology::path(20).unwrap()),
            ("cycle", topology::cycle(15).unwrap()),
            ("complete", topology::complete(8).unwrap()),
            ("star", topology::star(10).unwrap()),
            ("grid", topology::grid(4, 6).unwrap()),
        ] {
            for seed in 0..5 {
                let out = run_coloring(&g, seed);
                let violations = check_coloring(&g, &out);
                assert!(violations.is_empty(), "{name} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn complete_graph_uses_all_colors() {
        // On K_n a proper coloring needs all n palette colors.
        let g = topology::complete(6).unwrap();
        let out = run_coloring(&g, 9);
        let mut colors: Vec<u64> = out.iter().map(|c| c.unwrap()).collect();
        colors.sort_unstable();
        assert_eq!(colors, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn valid_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = topology::gnp(35, 0.2, &mut rng).unwrap();
            let out = run_coloring(&g, seed);
            let violations = check_coloring(&g, &out);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }
}
