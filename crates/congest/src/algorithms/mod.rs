//! Reference Broadcast CONGEST algorithms.
//!
//! Everything here is written against the anonymous-reception Broadcast
//! CONGEST interface ([`crate::BroadcastAlgorithm`]), so each algorithm
//! runs unchanged under the beeping simulation of `beep-core` — that is
//! the paper's headline use case ("allows a host of graph algorithms to be
//! efficiently implemented in beeping models").
//!
//! * [`MaximalMatching`] — the paper's own contribution (Section 6,
//!   Algorithm 3): Luby-style maximal matching in `O(log n)` Broadcast
//!   CONGEST rounds.
//! * [`LubyMis`] — maximal independent set (Luby 1986).
//! * [`RandomColoring`] — randomized (Δ+1)-coloring by repeated trials.
//! * [`Distance2Coloring`] — distributed G² coloring in CONGEST: the
//!   *setup primitive* of the prior-work TDMA simulations (\[7\], \[4\]).
//! * [`BfsTree`] — breadth-first tree construction by wave flooding.
//! * [`LeaderElection`] — leader election by max-ID flooding.
//! * [`Flood`] — single-source message dissemination.

mod bfs;
mod coloring;
mod distance2;
mod flood;
mod leader;
mod matching;
mod mis;

pub use bfs::BfsTree;
pub use coloring::RandomColoring;
pub use distance2::Distance2Coloring;
pub use flood::Flood;
pub use leader::LeaderElection;
pub use matching::MaximalMatching;
pub use mis::LubyMis;
