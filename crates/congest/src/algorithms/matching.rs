//! The paper's Algorithm 3: maximal matching in Broadcast CONGEST.
//!
//! Luby's algorithm applied to edges (Algorithm 2), implemented with
//! node-level broadcasts. One logical iteration takes four communication
//! rounds — Propose, Reply, Confirm₁, Confirm₂ — preceded by a single
//! round-0 ID exchange. Lemma 20: terminates in `O(log n)` iterations with
//! high probability; under the beeping simulation this yields the
//! `O(Δ log² n)` noisy-beeping matching of Theorem 21.

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};
use beep_net::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Message tags (2 bits).
const TAG_ID: u64 = 0;
const TAG_PROPOSE: u64 = 1;
const TAG_REPLY: u64 = 2;
const TAG_CONFIRM: u64 = 3;

/// An undirected edge as an ordered id pair `(lo, hi)`.
type Edge = (NodeId, NodeId);

fn edge(a: NodeId, b: NodeId) -> Edge {
    (a.min(b), a.max(b))
}

/// Per-node state of Algorithm 3.
///
/// `output()` is `Some(Some(u))` once matched to `u`, `Some(None)` once
/// terminated unmatched, `None` while still running.
///
/// # Message format
///
/// All messages are `2 + 11·⌈log₂ n⌉` bits: a 2-bit tag, two id fields for
/// the edge, and a `9·⌈log₂ n⌉`-bit value field (the paper samples edge
/// values from `[n⁹]` so that all values are distinct w.h.p.;
/// ties are additionally broken by edge identity so the algorithm is
/// deterministic given its randomness). Use
/// [`required_message_bits`](Self::required_message_bits) to size the run.
#[derive(Debug)]
pub struct MaximalMatching {
    ctx: Option<NodeCtx>,
    rng: Option<StdRng>,
    /// Active neighbor ids (the endpoints of `E_v`).
    neighbors: Vec<NodeId>,
    /// Whether this node still participates.
    active: bool,
    /// Final output once decided.
    matched: Option<Option<NodeId>>,
    /// Iteration-local state.
    iter: IterState,
    max_iterations: usize,
}

#[derive(Debug, Default)]
struct IterState {
    /// The edge this node proposed and its value.
    proposed: Option<(Edge, u64)>,
    /// The minimum-value incident proposal received `(value, edge)`.
    best_incident: Option<(u64, Edge)>,
    /// The edge this node replied to.
    replied: Option<Edge>,
    /// Set when a Reply for our proposed edge arrived and we did not reply.
    will_confirm: Option<Edge>,
    /// Set when a Confirm for the edge we replied to arrived.
    will_confirm_back: Option<Edge>,
    /// Confirmed edges seen this iteration (both confirm rounds).
    confirmed: Vec<Edge>,
}

impl MaximalMatching {
    /// Creates a node's instance. `max_iterations` bounds the Luby loop
    /// (the paper uses `4·log n`; [`suggested_iterations`](Self::suggested_iterations)
    /// computes that).
    #[must_use]
    pub fn new(max_iterations: usize) -> Self {
        MaximalMatching {
            ctx: None,
            rng: None,
            neighbors: Vec::new(),
            active: true,
            matched: None,
            iter: IterState::default(),
            max_iterations,
        }
    }

    /// The paper's iteration budget `4·⌈log₂ n⌉ + 4` (Lemma 20 shows `4 log n`
    /// iterations suffice w.h.p.; the +4 covers tiny `n`).
    #[must_use]
    pub fn suggested_iterations(n: usize) -> usize {
        4 * crate::model::id_bits_for(n) + 4
    }

    /// The exact message width this algorithm needs for an `n`-node run.
    #[must_use]
    pub fn required_message_bits(n: usize) -> usize {
        let id_bits = crate::model::id_bits_for(n);
        2 + 2 * id_bits + Self::value_bits(n)
    }

    /// Width of the edge-value field: values are drawn from `[n⁹]`
    /// (Algorithm 2), i.e. `9·⌈log₂ n⌉` bits.
    fn value_bits(n: usize) -> usize {
        9 * crate::model::id_bits_for(n)
    }

    /// Total communication rounds for a given iteration budget: 1 ID round
    /// plus 4 rounds per iteration.
    #[must_use]
    pub fn rounds_for(iterations: usize) -> usize {
        1 + 4 * iterations
    }

    /// The node's final output: `None` while running, `Some(partner)` when
    /// done (`partner = None` means Unmatched).
    #[must_use]
    pub fn output(&self) -> Option<Option<NodeId>> {
        self.matched
    }

    fn ctx(&self) -> &NodeCtx {
        self.ctx.as_ref().expect("init() must run before rounds")
    }

    fn pack(&self, tag: u64, e: Edge, value: u64) -> Message {
        let ctx = self.ctx();
        let id_bits = ctx.id_bits();
        MessageWriter::new()
            .push_uint(tag, 2)
            .push_uint(e.0 as u64, id_bits)
            .push_uint(e.1 as u64, id_bits)
            .push_uint(value, Self::value_bits(ctx.n))
            .finish(ctx.message_bits)
    }

    fn unpack(&self, m: &Message) -> (u64, Edge, u64) {
        let ctx = self.ctx();
        let id_bits = ctx.id_bits();
        let mut r = m.reader();
        let tag = r.read_uint(2);
        let a = r.read_uint(id_bits) as NodeId;
        let b = r.read_uint(id_bits) as NodeId;
        let value = r.read_uint(Self::value_bits(ctx.n));
        (tag, (a, b), value)
    }

    /// Which sub-round of an iteration a communication round is, if any.
    /// Round 0 is the ID exchange; thereafter rounds cycle
    /// Propose(0) / Reply(1) / Confirm₁(2) / Confirm₂(3).
    fn sub_round(round: usize) -> Option<usize> {
        if round == 0 {
            None
        } else {
            Some((round - 1) % 4)
        }
    }

    fn me(&self) -> NodeId {
        self.ctx().node
    }
}

impl BroadcastAlgorithm for MaximalMatching {
    fn init(&mut self, ctx: &NodeCtx) {
        self.rng = Some(StdRng::seed_from_u64(ctx.seed));
        self.ctx = Some(*ctx);
    }

    fn round_message(&mut self, round: usize) -> Option<Message> {
        if round == 0 {
            // "Each node v broadcasts its ID".
            let ctx = self.ctx();
            return Some(
                MessageWriter::new()
                    .push_uint(TAG_ID, 2)
                    .push_uint(ctx.node as u64, ctx.id_bits())
                    .finish(ctx.message_bits),
            );
        }
        if !self.active {
            return None;
        }
        let me = self.me();
        match Self::sub_round(round) {
            Some(0) => {
                // Propose: sample x(e) for each e ∈ H_v, broadcast the
                // unique minimum (H_v = edges where v is the higher id).
                self.iter = IterState::default();
                let n = self.ctx().n;
                let value_bits = Self::value_bits(n).min(63);
                let rng = self.rng.as_mut().expect("init seeds rng");
                let mut samples: Vec<(u64, Edge)> = self
                    .neighbors
                    .iter()
                    .filter(|&&u| u < me)
                    .map(|&u| (rng.random_range(0..(1u64 << value_bits)), edge(me, u)))
                    .collect();
                samples.sort_unstable();
                // Unique minimum by value (paper: "if it exists").
                let unique_min = match samples.as_slice() {
                    [] => None,
                    [only] => Some(*only),
                    [first, second, ..] => (first.0 != second.0).then_some(*first),
                };
                let (value, e) = unique_min?;
                self.iter.proposed = Some((e, value));
                Some(self.pack(TAG_PROPOSE, e, value))
            }
            Some(1) => {
                // Reply to the minimum incident proposal if it beats ours.
                let (value, e) = self.iter.best_incident?;
                let beats_own = match self.iter.proposed {
                    None => true,
                    Some((own_edge, own_value)) => (value, e) < (own_value, own_edge),
                };
                if beats_own {
                    self.iter.replied = Some(e);
                    Some(self.pack(TAG_REPLY, e, 0))
                } else {
                    None
                }
            }
            Some(2) => {
                // Confirm₁: our proposal was replied to and we didn't reply.
                let e = self.iter.will_confirm?;
                let partner = if e.0 == me { e.1 } else { e.0 };
                self.matched = Some(Some(partner));
                self.active = false;
                Some(self.pack(TAG_CONFIRM, e, 0))
            }
            Some(3) => {
                // Confirm₂: the edge we replied to was confirmed.
                let e = self.iter.will_confirm_back?;
                let partner = if e.0 == me { e.1 } else { e.0 };
                self.matched = Some(Some(partner));
                self.active = false;
                Some(self.pack(TAG_CONFIRM, e, 0))
            }
            _ => None,
        }
    }

    fn on_receive(&mut self, round: usize, received: &[Message]) {
        if round == 0 {
            // Learn neighbor ids.
            let id_bits = self.ctx().id_bits();
            self.neighbors = received
                .iter()
                .map(|m| {
                    let mut r = m.reader();
                    let _tag = r.read_uint(2);
                    r.read_uint(id_bits) as NodeId
                })
                .collect();
            self.neighbors.sort_unstable();
            if self.neighbors.is_empty() {
                // Isolated node: trivially done, unmatched.
                self.active = false;
                self.matched = Some(None);
            }
            return;
        }
        if !self.active {
            return;
        }
        let me = self.me();
        match Self::sub_round(round) {
            Some(0) => {
                // Collect the minimum-value *incident* proposal.
                for m in received {
                    let (tag, e, value) = self.unpack(m);
                    if tag == TAG_PROPOSE && (e.0 == me || e.1 == me) {
                        let cand = (value, e);
                        if self.iter.best_incident.is_none_or(|best| cand < best) {
                            self.iter.best_incident = Some(cand);
                        }
                    }
                }
            }
            Some(1) => {
                // Watch for a Reply to our proposal (only valid if we did
                // not ourselves reply).
                if self.iter.replied.is_some() {
                    return;
                }
                if let Some((own_edge, _)) = self.iter.proposed {
                    for m in received {
                        let (tag, e, _) = self.unpack(m);
                        if tag == TAG_REPLY && e == own_edge {
                            self.iter.will_confirm = Some(own_edge);
                        }
                    }
                }
            }
            Some(2) => {
                // First confirm batch: trigger confirm-back, record removals.
                for m in received {
                    let (tag, e, _) = self.unpack(m);
                    if tag == TAG_CONFIRM {
                        self.iter.confirmed.push(e);
                        if self.active && self.iter.replied == Some(e) {
                            self.iter.will_confirm_back = Some(e);
                        }
                    }
                }
            }
            Some(3) => {
                // Second confirm batch, then end-of-iteration bookkeeping.
                for m in received {
                    let (tag, e, _) = self.unpack(m);
                    if tag == TAG_CONFIRM {
                        self.iter.confirmed.push(e);
                    }
                }
                if self.active {
                    // Remove edges to endpoints of confirmed edges.
                    for &(w, z) in &self.iter.confirmed {
                        if w != me && z != me {
                            self.neighbors.retain(|&u| u != w && u != z);
                        }
                    }
                    if self.neighbors.is_empty() {
                        self.active = false;
                        self.matched = Some(None);
                    }
                }
                // Iteration budget: give up (unmatched) if exhausted — the
                // w.h.p. analysis makes this unreachable at the suggested
                // budget, but termination must be unconditional.
                if self.active && round >= Self::rounds_for(self.max_iterations) - 1 {
                    self.active = false;
                    self.matched = Some(None);
                }
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        self.matched.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use crate::validate::check_matching;
    use beep_net::{topology, Graph};

    fn run_matching(graph: &Graph, seed: u64) -> Vec<Option<NodeId>> {
        let n = graph.node_count();
        let bits = MaximalMatching::required_message_bits(n);
        let iters = MaximalMatching::suggested_iterations(n);
        let runner = BroadcastRunner::new(graph, bits, seed);
        let mut algos: Vec<Box<MaximalMatching>> = (0..n)
            .map(|_| Box::new(MaximalMatching::new(iters)))
            .collect();
        runner
            .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
            .unwrap_or_else(|e| panic!("matching run failed: {e}"));
        algos.iter().map(|a| a.output().expect("done")).collect()
    }

    #[test]
    fn single_edge_matches() {
        let g = topology::path(2).unwrap();
        let out = run_matching(&g, 1);
        assert_eq!(out, vec![Some(1), Some(0)]);
    }

    #[test]
    fn isolated_nodes_output_unmatched() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let out = run_matching(&g, 2);
        assert_eq!(out[2], None);
        assert!(check_matching(&g, &out).is_empty());
    }

    #[test]
    fn triangle_matches_one_edge() {
        let g = topology::complete(3).unwrap();
        let out = run_matching(&g, 3);
        assert!(check_matching(&g, &out).is_empty());
        let matched = out.iter().filter(|o| o.is_some()).count();
        assert_eq!(matched, 2, "a triangle matches exactly one edge");
    }

    #[test]
    fn valid_on_standard_topologies() {
        for (name, g) in [
            ("path", topology::path(17).unwrap()),
            ("cycle", topology::cycle(16).unwrap()),
            ("complete", topology::complete(12).unwrap()),
            ("star", topology::star(10).unwrap()),
            ("grid", topology::grid(4, 5).unwrap()),
            ("bipartite", topology::complete_bipartite(6, 6).unwrap()),
            ("tree", topology::binary_tree(15).unwrap()),
        ] {
            for seed in 0..5 {
                let out = run_matching(&g, seed);
                let violations = check_matching(&g, &out);
                assert!(violations.is_empty(), "{name} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = topology::gnp(30, 0.15, &mut rng).unwrap();
            let out = run_matching(&g, seed + 100);
            let violations = check_matching(&g, &out);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn round_count_grows_logarithmically() {
        // Lemma 20: O(log n) iterations. Measure actual rounds on K_n and
        // check they stay within the 4·log n + O(1) budget (they should
        // finish well before it).
        for n in [4usize, 8, 16, 32, 64] {
            let g = topology::complete(n).unwrap();
            let bits = MaximalMatching::required_message_bits(n);
            let iters = MaximalMatching::suggested_iterations(n);
            let runner = BroadcastRunner::new(&g, bits, 7);
            let mut algos: Vec<Box<MaximalMatching>> = (0..n)
                .map(|_| Box::new(MaximalMatching::new(iters)))
                .collect();
            let report = runner
                .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
                .unwrap();
            assert!(
                report.rounds <= MaximalMatching::rounds_for(iters),
                "n={n}: {} rounds",
                report.rounds
            );
            let out: Vec<_> = algos.iter().map(|a| a.output().unwrap()).collect();
            assert!(check_matching(&g, &out).is_empty(), "n={n}");
        }
    }

    #[test]
    fn message_width_formula_matches_packing() {
        // Packing the widest message must exactly fill required_message_bits.
        let n = 100;
        let bits = MaximalMatching::required_message_bits(n);
        let id_bits = crate::model::id_bits_for(n);
        assert_eq!(bits, 2 + 2 * id_bits + 9 * id_bits);
    }
}
