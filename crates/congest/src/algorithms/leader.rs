//! Leader election by max-ID flooding in Broadcast CONGEST.
//!
//! Every node tracks the largest id it has seen and re-broadcasts on
//! improvement; after `D` rounds all nodes agree on the global maximum.
//! Termination uses an explicit round budget supplied by the caller (a
//! diameter bound), as is standard for flooding-style election.

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};

/// Per-node state of max-ID flooding.
#[derive(Debug)]
pub struct LeaderElection {
    ctx: Option<NodeCtx>,
    /// Largest id seen so far (starts as own id).
    best: u64,
    /// Whether `best` improved since our last broadcast.
    dirty: bool,
    /// Rounds to run (callers pass a diameter bound, e.g. `n`).
    rounds: usize,
    elapsed: usize,
}

impl LeaderElection {
    /// Creates a node instance that runs exactly `rounds` communication
    /// rounds (must be at least the graph diameter for correctness).
    #[must_use]
    pub fn new(rounds: usize) -> Self {
        LeaderElection {
            ctx: None,
            best: 0,
            dirty: true,
            rounds,
            elapsed: 0,
        }
    }

    /// Message width: one id field.
    #[must_use]
    pub fn required_message_bits(n: usize) -> usize {
        crate::model::id_bits_for(n)
    }

    /// The elected leader after the run (the largest id this node heard).
    #[must_use]
    pub fn output(&self) -> u64 {
        self.best
    }

    /// Whether this node considers itself the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.ctx
            .as_ref()
            .is_some_and(|c| c.node as u64 == self.best)
    }
}

impl BroadcastAlgorithm for LeaderElection {
    fn init(&mut self, ctx: &NodeCtx) {
        self.ctx = Some(*ctx);
        self.best = ctx.node as u64;
        self.dirty = true;
    }

    fn round_message(&mut self, _round: usize) -> Option<Message> {
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        if self.dirty {
            self.dirty = false;
            Some(
                MessageWriter::new()
                    .push_uint(self.best, ctx.id_bits())
                    .finish(ctx.message_bits),
            )
        } else {
            None
        }
    }

    fn on_receive(&mut self, _round: usize, received: &[Message]) {
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        let id_bits = ctx.id_bits();
        for m in received {
            let id = m.reader().read_uint(id_bits);
            if id > self.best {
                self.best = id;
                self.dirty = true;
            }
        }
        self.elapsed += 1;
    }

    fn is_done(&self) -> bool {
        self.elapsed >= self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use beep_net::{topology, Graph};

    fn run_election(graph: &Graph, rounds: usize) -> Vec<u64> {
        let n = graph.node_count();
        let bits = LeaderElection::required_message_bits(n);
        let runner = BroadcastRunner::new(graph, bits, 0);
        let mut algos: Vec<Box<LeaderElection>> = (0..n)
            .map(|_| Box::new(LeaderElection::new(rounds)))
            .collect();
        runner.run_to_completion(&mut algos, rounds + 1).unwrap();
        algos.iter().map(|a| a.output()).collect()
    }

    #[test]
    fn all_agree_on_max_id() {
        for g in [
            topology::path(10).unwrap(),
            topology::cycle(9).unwrap(),
            topology::complete(7).unwrap(),
            topology::grid(3, 4).unwrap(),
        ] {
            let n = g.node_count();
            let d = g.diameter().unwrap();
            let out = run_election(&g, d + 1);
            assert!(out.iter().all(|&b| b == (n - 1) as u64), "{out:?}");
        }
    }

    #[test]
    fn exactly_one_leader() {
        let g = topology::path(8).unwrap();
        let runner = BroadcastRunner::new(&g, LeaderElection::required_message_bits(8), 0);
        let mut algos: Vec<Box<LeaderElection>> =
            (0..8).map(|_| Box::new(LeaderElection::new(8))).collect();
        runner.run_to_completion(&mut algos, 9).unwrap();
        assert_eq!(algos.iter().filter(|a| a.is_leader()).count(), 1);
        assert!(algos[7].is_leader());
    }

    #[test]
    fn insufficient_rounds_leave_disagreement() {
        // On a long path, 1 round cannot spread the max id to the far end.
        let g = topology::path(10).unwrap();
        let out = run_election(&g, 1);
        assert!(out.iter().any(|&b| b != 9), "{out:?}");
    }
}
