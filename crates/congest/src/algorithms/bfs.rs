//! BFS tree construction by wave flooding in Broadcast CONGEST.
//!
//! Round `r`'s broadcasters are exactly the nodes at distance `r` from the
//! root; an undiscovered node hearing the wave joins at distance `r+1`,
//! taking the smallest heard id as parent. `D+1` rounds on a connected
//! graph — the classic `O(D)` global primitive, and the message-passing
//! analogue of the beep waves the paper cites (\[19\], \[9\]).

use crate::message::{Message, MessageWriter};
use crate::model::{BroadcastAlgorithm, NodeCtx};
use beep_net::NodeId;

/// Per-node state of the BFS wave.
///
/// On disconnected graphs, unreachable nodes never finish; run on a
/// connected component or give the runner a budget of `n` rounds and treat
/// the budget error as "graph disconnected".
#[derive(Debug)]
pub struct BfsTree {
    ctx: Option<NodeCtx>,
    root: NodeId,
    /// Discovered distance from the root.
    dist: Option<usize>,
    /// Parent in the tree (None for the root).
    parent: Option<NodeId>,
    /// Whether this node has broadcast its wave.
    broadcast_done: bool,
}

impl BfsTree {
    /// Creates a node instance for the tree rooted at `root`.
    #[must_use]
    pub fn new(root: NodeId) -> Self {
        BfsTree {
            ctx: None,
            root,
            dist: None,
            parent: None,
            broadcast_done: false,
        }
    }

    /// Message width: one id field.
    #[must_use]
    pub fn required_message_bits(n: usize) -> usize {
        crate::model::id_bits_for(n)
    }

    /// `(distance, parent)` once discovered.
    #[must_use]
    pub fn output(&self) -> (Option<usize>, Option<NodeId>) {
        (self.dist, self.parent)
    }
}

impl BroadcastAlgorithm for BfsTree {
    fn init(&mut self, ctx: &NodeCtx) {
        self.ctx = Some(*ctx);
        if ctx.node == self.root {
            self.dist = Some(0);
        }
    }

    fn round_message(&mut self, round: usize) -> Option<Message> {
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        if self.dist == Some(round) {
            self.broadcast_done = true;
            Some(
                MessageWriter::new()
                    .push_uint(ctx.node as u64, ctx.id_bits())
                    .finish(ctx.message_bits),
            )
        } else {
            None
        }
    }

    fn on_receive(&mut self, round: usize, received: &[Message]) {
        if self.dist.is_some() || received.is_empty() {
            return;
        }
        let ctx = self.ctx.as_ref().expect("init() must run before rounds");
        let id_bits = ctx.id_bits();
        let min_sender = received
            .iter()
            .map(|m| m.reader().read_uint(id_bits) as NodeId)
            .min()
            .expect("non-empty");
        self.dist = Some(round + 1);
        self.parent = Some(min_sender);
    }

    fn is_done(&self) -> bool {
        self.broadcast_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BroadcastRunner;
    use crate::validate::check_bfs_tree;
    use beep_net::{topology, Graph};

    fn run_bfs(
        graph: &Graph,
        root: NodeId,
        seed: u64,
    ) -> (Vec<Option<usize>>, Vec<Option<NodeId>>) {
        let n = graph.node_count();
        let bits = BfsTree::required_message_bits(n);
        let runner = BroadcastRunner::new(graph, bits, seed);
        let mut algos: Vec<Box<BfsTree>> = (0..n).map(|_| Box::new(BfsTree::new(root))).collect();
        runner
            .run_to_completion(&mut algos, n + 1)
            .unwrap_or_else(|e| panic!("bfs run failed: {e}"));
        let dist = algos.iter().map(|a| a.output().0).collect();
        let parent = algos.iter().map(|a| a.output().1).collect();
        (dist, parent)
    }

    #[test]
    fn path_distances_are_exact() {
        let g = topology::path(6).unwrap();
        let (dist, parent) = run_bfs(&g, 0, 1);
        assert_eq!(dist, (0..6).map(Some).collect::<Vec<_>>());
        assert!(check_bfs_tree(&g, 0, &dist, &parent).is_empty());
    }

    #[test]
    fn parent_ties_break_to_min_id() {
        // Node 3 in K4 rooted at 0 has neighbors 1, 2 also at distance 1…
        // wait: in K4 everyone is at distance 1 from 0, so parent is 0.
        let g = topology::complete(4).unwrap();
        let (dist, parent) = run_bfs(&g, 0, 1);
        assert_eq!(dist, vec![Some(0), Some(1), Some(1), Some(1)]);
        assert_eq!(parent, vec![None, Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn valid_on_assorted_graphs() {
        for (name, g, root) in [
            ("cycle", topology::cycle(9).unwrap(), 4),
            ("grid", topology::grid(4, 4).unwrap(), 5),
            ("tree", topology::binary_tree(15).unwrap(), 0),
            ("hypercube", topology::hypercube(4).unwrap(), 7),
        ] {
            let (dist, parent) = run_bfs(&g, root, 3);
            let violations = check_bfs_tree(&g, root, &dist, &parent);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn disconnected_graph_exhausts_budget() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let runner = BroadcastRunner::new(&g, 4, 0);
        let mut algos: Vec<Box<BfsTree>> = (0..3).map(|_| Box::new(BfsTree::new(0))).collect();
        assert!(runner.run_to_completion(&mut algos, 5).is_err());
    }
}
