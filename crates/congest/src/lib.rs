#![warn(missing_docs)]

//! The message-passing models the paper simulates, plus a reference
//! algorithm library.
//!
//! * **Broadcast CONGEST** (Section 1.1): each round, every node may send
//!   one `O(log n)`-bit message heard by *all* of its neighbors.
//! * **CONGEST**: each round, every node may send a *different*
//!   `O(log n)`-bit message to each neighbor.
//!
//! Algorithms implement [`BroadcastAlgorithm`] or [`CongestAlgorithm`] and
//! can be executed two ways with identical observable behavior:
//!
//! 1. natively, by this crate's [`BroadcastRunner`] / [`CongestRunner`]
//!    (direct message delivery — the models as defined);
//! 2. over noisy beeps, by `beep-core`'s simulators (the paper's
//!    Algorithm 1 / Corollary 12).
//!
//! # Anonymous reception
//!
//! Following the paper (footnote 1: a decoding node need not know *which*
//! neighbor a codeword belongs to), Broadcast CONGEST reception here is a
//! **multiset of messages without sender identity**, delivered in a
//! canonical sorted order. Algorithms that need sender identity embed IDs
//! in their payloads — exactly what the paper's Algorithm 3 does. This is
//! the weakest reception interface, so everything written against it runs
//! unchanged under beep simulation.
//!
//! The algorithm library ([`algorithms`]) contains the paper's Broadcast
//! CONGEST maximal matching (Algorithm 3) plus Luby MIS, randomized
//! (Δ+1)-coloring, distributed distance-2 coloring, BFS tree, leader
//! election and flooding — the "host of graph algorithms" the paper's
//! simulation unlocks for beeping networks.
//!
//! # Example
//!
//! ```
//! use beep_congest::{algorithms::MaximalMatching, validate, BroadcastRunner};
//! use beep_net::topology;
//!
//! // The paper's Algorithm 3, run natively on a 12-cycle.
//! let graph = topology::cycle(12).unwrap();
//! let bits = MaximalMatching::required_message_bits(12);
//! let iters = MaximalMatching::suggested_iterations(12);
//! let runner = BroadcastRunner::new(&graph, bits, 7);
//! let mut nodes: Vec<Box<MaximalMatching>> =
//!     (0..12).map(|_| Box::new(MaximalMatching::new(iters))).collect();
//! runner.run_to_completion(&mut nodes, MaximalMatching::rounds_for(iters)).unwrap();
//! let output: Vec<Option<usize>> = nodes.iter().map(|a| a.output().unwrap()).collect();
//! assert!(validate::check_matching(&graph, &output).is_empty());
//! ```

pub mod algorithms;
mod error;
mod message;
mod model;
mod runner;
pub mod validate;

pub use error::CongestError;
pub use message::{Message, MessageReader, MessageWriter};
pub use model::{id_bits_for, BroadcastAlgorithm, CongestAlgorithm, NodeCtx};
pub use runner::{BroadcastRunner, CongestRunner, RunReport};
