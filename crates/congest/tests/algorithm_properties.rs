//! Property tests: every algorithm in the library produces validated
//! output on arbitrary random graphs under the native runners.

use beep_congest::algorithms::{Distance2Coloring, LubyMis, MaximalMatching, RandomColoring};
use beep_congest::{validate, BroadcastRunner, CongestRunner};
use beep_net::Graph;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    ((2usize..14), any::<u64>()).prop_flat_map(|(n, seed)| {
        let max_edges = n * (n - 1) / 2;
        prop::collection::vec((0..n, 0..n), 0..=max_edges).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            (Graph::from_edges(n, &edges).expect("valid"), seed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matching_is_always_valid((graph, seed) in arb_graph()) {
        let n = graph.node_count();
        let bits = MaximalMatching::required_message_bits(n);
        let iters = MaximalMatching::suggested_iterations(n);
        let runner = BroadcastRunner::new(&graph, bits, seed);
        let mut algos: Vec<Box<MaximalMatching>> =
            (0..n).map(|_| Box::new(MaximalMatching::new(iters))).collect();
        runner
            .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
            .expect("terminates");
        let out: Vec<Option<usize>> = algos.iter().map(|a| a.output().expect("done")).collect();
        prop_assert!(validate::check_matching(&graph, &out).is_empty());
    }

    #[test]
    fn mis_is_always_valid((graph, seed) in arb_graph()) {
        let n = graph.node_count();
        let bits = LubyMis::required_message_bits(n);
        let iters = LubyMis::suggested_iterations(n);
        let runner = BroadcastRunner::new(&graph, bits, seed);
        let mut algos: Vec<Box<LubyMis>> =
            (0..n).map(|_| Box::new(LubyMis::new(iters))).collect();
        runner
            .run_to_completion(&mut algos, LubyMis::rounds_for(iters))
            .expect("terminates");
        let out: Vec<bool> = algos.iter().map(|a| a.output().expect("done")).collect();
        prop_assert!(validate::check_mis(&graph, &out).is_empty());
    }

    #[test]
    fn coloring_is_always_valid((graph, seed) in arb_graph()) {
        let n = graph.node_count();
        let bits = RandomColoring::required_message_bits(n);
        let iters = RandomColoring::suggested_iterations(n);
        let runner = BroadcastRunner::new(&graph, bits, seed);
        let mut algos: Vec<Box<RandomColoring>> =
            (0..n).map(|_| Box::new(RandomColoring::new(iters))).collect();
        runner
            .run_to_completion(&mut algos, RandomColoring::rounds_for(iters))
            .expect("terminates");
        let out: Vec<Option<u64>> = algos.iter().map(|a| a.output()).collect();
        prop_assert!(validate::check_coloring(&graph, &out).is_empty());
    }

    #[test]
    fn distance2_coloring_is_always_valid((graph, seed) in arb_graph()) {
        let n = graph.node_count();
        let delta = graph.max_degree();
        let bits = Distance2Coloring::required_message_bits(delta);
        let iters = Distance2Coloring::suggested_iterations(n);
        let runner = CongestRunner::new(&graph, bits, seed);
        let mut algos: Vec<Box<Distance2Coloring>> = (0..n)
            .map(|v| Box::new(Distance2Coloring::new(delta, graph.neighbors(v).to_vec(), iters)))
            .collect();
        runner
            .run_to_completion(&mut algos, Distance2Coloring::rounds_for(iters))
            .expect("terminates");
        let out: Vec<Option<u64>> = algos.iter().map(|a| a.output()).collect();
        prop_assert!(validate::check_distance2_coloring(&graph, &out).is_empty());
    }
}
