//! Property-based tests for `BitVec`: algebraic laws of the paper's string
//! operations (Section 1.5) and metric axioms of Hamming distance.

use beep_bits::{superimpose, BitVec};
use proptest::prelude::*;

/// Strategy: a pair (length, Vec<bool>) describing an arbitrary bit string.
fn bitvec(max_len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), 0..=max_len).prop_map(|bools| BitVec::from_bools(&bools))
}

/// Strategy: two bit strings of the same (arbitrary) length.
fn bitvec_pair(max_len: usize) -> impl Strategy<Value = (BitVec, BitVec)> {
    (0..=max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

fn bitvec_triple(max_len: usize) -> impl Strategy<Value = (BitVec, BitVec, BitVec)> {
    (0..=max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
        )
            .prop_map(|(a, b, c)| {
                (
                    BitVec::from_bools(&a),
                    BitVec::from_bools(&b),
                    BitVec::from_bools(&c),
                )
            })
    })
}

proptest! {
    #[test]
    fn or_is_commutative_and_idempotent((a, b) in bitvec_pair(300)) {
        prop_assert_eq!(&a | &b, &b | &a);
        prop_assert_eq!(&a | &a, a.clone());
    }

    #[test]
    fn and_is_commutative_and_idempotent((a, b) in bitvec_pair(300)) {
        prop_assert_eq!(&a & &b, &b & &a);
        prop_assert_eq!(&a & &a, a.clone());
    }

    #[test]
    fn de_morgan((a, b) in bitvec_pair(300)) {
        prop_assert_eq!(!&(&a | &b), &!&a & &!&b);
        prop_assert_eq!(!&(&a & &b), &!&a | &!&b);
    }

    #[test]
    fn or_distributes_over_and((a, b, c) in bitvec_triple(300)) {
        prop_assert_eq!(&a | &(&b & &c), &(&a | &b) & &(&a | &c));
    }

    #[test]
    fn double_complement_is_identity(a in bitvec(300)) {
        prop_assert_eq!(!&!&a, a);
    }

    #[test]
    fn popcount_inclusion_exclusion((a, b) in bitvec_pair(300)) {
        let union = (&a | &b).count_ones();
        let inter = a.intersection_count(&b);
        prop_assert_eq!(union + inter, a.count_ones() + b.count_ones());
    }

    #[test]
    fn hamming_is_a_metric((a, b, c) in bitvec_triple(300)) {
        // Identity of indiscernibles.
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        // Triangle inequality.
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    #[test]
    fn hamming_equals_xor_weight((a, b) in bitvec_pair(300)) {
        prop_assert_eq!(a.hamming_distance(&b), (&a ^ &b).count_ones());
    }

    #[test]
    fn and_not_count_decomposes_ones((a, b) in bitvec_pair(300)) {
        // 1(a) = 1(a ∧ b) + 1(a ∧ ¬b)
        prop_assert_eq!(
            a.count_ones(),
            a.intersection_count(&b) + a.and_not_count(&b)
        );
    }

    #[test]
    fn superimpose_contains_each_operand((a, b, c) in bitvec_triple(200)) {
        let sup = superimpose([&a, &b, &c]).unwrap();
        prop_assert!(a.is_subset_of(&sup));
        prop_assert!(b.is_subset_of(&sup));
        prop_assert!(c.is_subset_of(&sup));
        prop_assert_eq!(&sup, &(&(&a | &b) | &c));
    }

    #[test]
    fn ones_iterator_matches_get(a in bitvec(400)) {
        let from_iter: Vec<usize> = a.iter_ones().collect();
        let from_get: Vec<usize> = (0..a.len()).filter(|&i| a.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
    }

    #[test]
    fn nth_one_agrees_with_positions(a in bitvec(400)) {
        let positions = a.one_positions();
        for (idx, &pos) in positions.iter().enumerate() {
            prop_assert_eq!(a.position_of_nth_one(idx + 1), Some(pos));
        }
        prop_assert_eq!(a.position_of_nth_one(positions.len() + 1), None);
    }

    #[test]
    fn extract_then_length(a in bitvec(400)) {
        let positions = a.one_positions();
        let extracted = a.extract(positions.iter().copied());
        // Extracting at 1-positions yields an all-ones string.
        prop_assert_eq!(extracted.count_ones(), extracted.len());
        prop_assert_eq!(extracted.len(), a.count_ones());
    }

    #[test]
    fn display_parse_roundtrip(a in bitvec(400)) {
        let s = a.to_string();
        let parsed: BitVec = s.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn random_with_weight_is_exact(
        (len, w) in (1usize..400).prop_flat_map(|len| (Just(len), 0..=len)),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let v = BitVec::random_with_weight(len, w, &mut rng);
        prop_assert_eq!(v.len(), len);
        prop_assert_eq!(v.count_ones(), w);
    }

    #[test]
    fn u64_roundtrip(value in any::<u64>()) {
        let v = BitVec::from_u64_lsb(value, 64);
        prop_assert_eq!(v.to_u64_lsb(), value);
        let wide = BitVec::from_u64_lsb(value, 128);
        prop_assert_eq!(wide.to_u64_lsb(), value);
    }
}
