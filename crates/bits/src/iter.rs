//! Iteration over set bits.

use crate::BitVec;

impl BitVec {
    /// Iterates over the positions of 1s in increasing order.
    ///
    /// The combined-code construction (paper Notation 7) and the phase-2
    /// projection both walk the 1-positions of a beep codeword; this iterator
    /// does so a word at a time.
    #[must_use]
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bv: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the positions of 1s into a vector.
    #[must_use]
    pub fn one_positions(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Iterates over all bits as booleans, in position order.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

/// Iterator over set-bit positions of a [`BitVec`], created by
/// [`BitVec::iter_ones`].
pub struct Ones<'a> {
    bv: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.bv.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let in_current = self.current.count_ones() as usize;
        let rest: usize = self.bv.words[(self.word_index + 1).min(self.bv.words.len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let exact = in_current + rest;
        (exact, Some(exact))
    }
}

impl ExactSizeIterator for Ones<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_iterates_in_order() {
        let v = BitVec::from_indices(300, [0, 63, 64, 128, 200, 299]);
        assert_eq!(v.one_positions(), vec![0, 63, 64, 128, 200, 299]);
    }

    #[test]
    fn ones_empty_and_full() {
        assert_eq!(BitVec::zeros(100).one_positions(), Vec::<usize>::new());
        assert_eq!(
            BitVec::ones(67).one_positions(),
            (0..67).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ones_exact_size() {
        let v = BitVec::from_indices(130, [1, 2, 3, 100, 129]);
        let it = v.iter_ones();
        assert_eq!(it.len(), 5);
        let mut it = v.iter_ones();
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn ones_consistent_with_nth_one() {
        let v = BitVec::from_indices(500, (0..500).filter(|i| i % 13 == 5));
        for (idx, pos) in v.iter_ones().enumerate() {
            assert_eq!(v.position_of_nth_one(idx + 1), Some(pos));
        }
    }

    #[test]
    fn iter_bits_roundtrip() {
        let v = BitVec::from_indices(70, [0, 5, 69]);
        let bits: Vec<bool> = v.iter_bits().collect();
        assert_eq!(BitVec::from_bools(&bits), v);
    }
}
