//! Random bit strings and noise: the sampling primitives behind the paper's
//! probabilistic code constructions and the noisy beeping channel.

use crate::BitVec;
use rand::{Rng, RngExt};

impl BitVec {
    /// Samples a uniformly random string from `{0,1}^len`.
    ///
    /// Used by the distance-code construction (Lemma 6), which chooses every
    /// codeword entry independently uniformly at random.
    #[must_use]
    pub fn random_uniform<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = BitVec::zeros(len);
        for w in &mut v.words {
            *w = rng.random();
        }
        v.mask_tail();
        v
    }

    /// Samples a uniformly random string of length `len` with *exactly*
    /// `weight` ones.
    ///
    /// The beep-code construction (Theorem 4) chooses each codeword uniformly
    /// at random from the set of all `b`-bit strings with `b/(ck)` ones; this
    /// is that sampler. Uses Floyd's algorithm: O(weight) expected work,
    /// no allocation proportional to `len`.
    ///
    /// # Panics
    ///
    /// Panics if `weight > len`.
    #[must_use]
    pub fn random_with_weight<R: Rng + ?Sized>(len: usize, weight: usize, rng: &mut R) -> Self {
        assert!(
            weight <= len,
            "weight {weight} exceeds length {len} in random_with_weight"
        );
        let mut v = BitVec::zeros(len);
        // Floyd's algorithm for sampling `weight` distinct values in [0, len).
        for j in len - weight..len {
            let t = rng.random_range(0..=j);
            if v.get(t) {
                v.set(j, true);
            } else {
                v.set(t, true);
            }
        }
        debug_assert_eq!(v.count_ones(), weight);
        v
    }

    /// Returns a copy with each bit independently flipped with probability
    /// `p` — the noisy beeping channel of Ashkenazi–Gelles–Leshem applied to
    /// a whole frame (each listening round's bit is flipped i.i.d. with
    /// probability `ε`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn flipped_with_noise<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "noise probability {p} not in [0,1]"
        );
        let mut out = self.clone();
        if p == 0.0 {
            return out;
        }
        for i in 0..out.len {
            if rng.random_bool(p) {
                out.flip(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_uniform_has_correct_length_and_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 63, 64, 65, 500] {
            let v = BitVec::random_uniform(len, &mut rng);
            assert_eq!(v.len(), len);
            // Tail invariant: complementing twice is identity implies masked.
            assert_eq!(!&!&v, v);
        }
    }

    #[test]
    fn random_uniform_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = BitVec::random_uniform(10_000, &mut rng);
        let ones = v.count_ones();
        assert!((4500..=5500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn random_with_weight_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        for (len, w) in [(10, 0), (10, 10), (100, 1), (1000, 37), (64, 64), (65, 1)] {
            let v = BitVec::random_with_weight(len, w, &mut rng);
            assert_eq!(v.len(), len);
            assert_eq!(v.count_ones(), w, "len={len} w={w}");
        }
    }

    #[test]
    fn random_with_weight_covers_all_positions() {
        // Over many draws of weight-1 strings, every position should appear.
        let mut rng = StdRng::seed_from_u64(4);
        let len = 16;
        let mut seen = vec![false; len];
        for _ in 0..2000 {
            let v = BitVec::random_with_weight(len, 1, &mut rng);
            seen[v.position_of_nth_one(1).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "positions seen: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn random_with_weight_too_heavy_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = BitVec::random_with_weight(4, 5, &mut rng);
    }

    #[test]
    fn noise_zero_and_one_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = BitVec::random_uniform(300, &mut rng);
        assert_eq!(v.flipped_with_noise(0.0, &mut rng), v);
        assert_eq!(v.flipped_with_noise(1.0, &mut rng), !&v);
    }

    #[test]
    fn noise_flips_expected_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = BitVec::zeros(20_000);
        let noisy = v.flipped_with_noise(0.1, &mut rng);
        let flips = noisy.count_ones();
        assert!((1600..=2400).contains(&flips), "flips = {flips}");
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn invalid_noise_probability_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = BitVec::zeros(10).flipped_with_noise(1.5, &mut rng);
    }
}
