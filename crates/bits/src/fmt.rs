//! Textual representations: `Display`/`Debug` as 0/1 strings and parsing.

use crate::BitVec;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a `BitVec` from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    position: usize,
    found: char,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid character {:?} at position {} (expected '0' or '1')",
            self.found, self.position
        )
    }
}

impl Error for ParseBitVecError {}

impl BitVec {
    /// Parses a string of `'0'`/`'1'` characters; character `i` becomes bit
    /// `i`. Equivalent to the `FromStr` impl but usable without type
    /// annotations.
    pub fn from_str_01(s: &str) -> Result<Self, ParseBitVecError> {
        let mut v = BitVec::zeros(s.chars().count());
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => v.set(i, true),
                found => return Err(ParseBitVecError { position: i, found }),
            }
        }
        Ok(v)
    }
}

impl FromStr for BitVec {
    type Err = ParseBitVecError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BitVec::from_str_01(s)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Long strings abbreviate to keep assertion diffs readable.
        const MAX: usize = 96;
        if self.len <= MAX {
            write!(f, "BitVec({self})")
        } else {
            let head: String = (0..MAX)
                .map(|i| if self.get(i) { '1' } else { '0' })
                .collect();
            write!(
                f,
                "BitVec({head}… len={} ones={})",
                self.len,
                self.count_ones()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let s = "10110011101";
        let v: BitVec = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = BitVec::from_str_01("10a1").unwrap_err();
        assert_eq!(
            err,
            ParseBitVecError {
                position: 2,
                found: 'a'
            }
        );
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn parse_empty() {
        let v = BitVec::from_str_01("").unwrap();
        assert!(v.is_empty());
        assert_eq!(v.to_string(), "");
    }

    #[test]
    fn debug_abbreviates_long_strings() {
        let v = BitVec::ones(500);
        let dbg = format!("{v:?}");
        assert!(dbg.contains("len=500"));
        assert!(dbg.contains("ones=500"));
        assert!(dbg.len() < 200);
    }

    #[test]
    fn debug_shows_short_strings_fully() {
        let v = BitVec::from_str_01("0101").unwrap();
        assert_eq!(format!("{v:?}"), "BitVec(0101)");
    }
}
