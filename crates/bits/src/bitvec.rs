//! The [`BitVec`] type: a fixed-length, heap-allocated bit string.

const WORD_BITS: usize = 64;

/// A fixed-length bit string `s ∈ {0,1}^len`, packed into `u64` words.
///
/// Unlike `Vec<bool>`, all bulk operations (OR, AND, popcount, Hamming
/// distance) run a word at a time, which matters because the paper's codes
/// have length `Θ(Δ log n)` and decoding scores many candidate codewords
/// against a received string.
///
/// Bit `i` of the string is stored in bit `i % 64` of word `i / 64`. Unused
/// high bits of the last word are always kept zero (an internal invariant
/// every mutating method maintains), so popcount and equality never need to
/// mask.
///
/// # Length discipline
///
/// Binary operations between two `BitVec`s require equal lengths and panic
/// otherwise, mirroring how slice indexing panics: a length mismatch is a
/// programming error in code-construction logic, never a data-dependent
/// condition.
///
/// # Example
///
/// ```
/// use beep_bits::BitVec;
///
/// let mut s = BitVec::zeros(70);
/// s.set(0, true);
/// s.set(69, true);
/// assert_eq!(s.count_ones(), 2);
/// assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 69]);
/// assert_eq!(s, BitVec::from_indices(70, [0, 69]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    pub(crate) words: Vec<u64>,
    pub(crate) len: usize,
}

impl BitVec {
    /// Creates an all-zero bit string of length `len`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-one bit string of length `len`.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a bit string from a predicate on positions.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a bit string of length `len` with 1s exactly at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v = BitVec::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Builds a bit string from a slice of booleans (`bools[i]` is bit `i`).
    #[must_use]
    pub fn from_bools(bools: &[bool]) -> Self {
        BitVec::from_fn(bools.len(), |i| bools[i])
    }

    /// Encodes the low `len` bits of `value`, least-significant bit first.
    ///
    /// This is the canonical way the workspace turns small integers (node
    /// IDs, sampled values) into fixed-width message payloads.
    ///
    /// # Panics
    ///
    /// Panics if `len < 64` and `value` does not fit in `len` bits.
    #[must_use]
    pub fn from_u64_lsb(value: u64, len: usize) -> Self {
        if len < 64 {
            assert!(
                value < (1u64 << len),
                "value {value} does not fit in {len} bits"
            );
        }
        let mut v = BitVec::zeros(len);
        for i in 0..len.min(64) {
            if value & (1u64 << i) != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Decodes the first `min(len, 64)` bits as a little-endian integer.
    #[must_use]
    pub fn to_u64_lsb(&self) -> u64 {
        let mut out = 0u64;
        for i in 0..self.len.min(64) {
            if self.get(i) {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// The length of the bit string in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string has length zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Resets every bit to 0, keeping the length (and allocation).
    ///
    /// The engine's frame loop reuses one beeper bitmap across rounds; this
    /// is the word-level wipe that makes that reuse allocation-free.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip(&mut self, i: usize) -> bool {
        let new = !self.get(i);
        self.set(i, new);
        new
    }

    /// The number of 1s in the string — the paper's `1(s)` (Definition 2).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The number of 0s in the string.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Position of the `i`-th one (1-indexed) — the paper's `1_i(s)`
    /// (Notation 7). Returns `None` ("Null" in the paper) if the string
    /// contains fewer than `i` ones, or if `i == 0`.
    #[must_use]
    pub fn position_of_nth_one(&self, i: usize) -> Option<usize> {
        if i == 0 {
            return None;
        }
        let mut remaining = i;
        for (wi, &w) in self.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining <= ones {
                // The answer is inside this word; scan its set bits.
                let mut w = w;
                for _ in 0..remaining - 1 {
                    w &= w - 1; // clear lowest set bit
                }
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// The packed `u64` words backing the string, bit `i` of the string in
    /// bit `i % 64` of word `i / 64`. Unused high bits of the last word are
    /// always zero.
    ///
    /// This is the escape hatch for word-granular consumers — the sharded
    /// round engine hands disjoint sub-slices of a frame to worker threads.
    ///
    /// ```
    /// use beep_bits::BitVec;
    ///
    /// let v = BitVec::from_indices(130, [0, 64, 129]);
    /// assert_eq!(v.as_words(), &[1, 1, 2]);
    /// ```
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words (see [`as_words`](Self::as_words)
    /// for the layout).
    ///
    /// # Invariant
    ///
    /// Callers must leave the unused high bits of the last word zero —
    /// every other method relies on it (popcount, equality, hashing).
    /// Writing only bit positions `< len` (e.g. OR-ing in words of another
    /// `BitVec` of the same length) preserves it automatically.
    #[must_use]
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Zeroes any bits beyond `len` in the last word (internal invariant).
    pub(crate) fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub(crate) fn assert_same_len(&self, other: &Self, op: &str) {
        assert_eq!(
            self.len, other.len,
            "length mismatch in BitVec::{op}: {} vs {}",
            self.len, other.len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.count_zeros(), 100);
        let o = BitVec::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(o.count_zeros(), 0);
        assert!(!z.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn ones_masks_tail_word() {
        // 65 bits: second word must have exactly one set bit.
        let o = BitVec::ones(65);
        assert_eq!(o.words.len(), 2);
        assert_eq!(o.words[1], 1);
        assert_eq!(o.count_ones(), 65);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(130);
        assert!(!v.get(0));
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.count_ones(), 3);
        assert!(!v.flip(0));
        assert!(v.flip(1));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn clear_zeroes_everything_and_keeps_len() {
        let mut v = BitVec::ones(130);
        v.clear();
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v, BitVec::zeros(130));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitVec::zeros(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(10).set(10, true);
    }

    #[test]
    fn from_fn_and_from_indices_agree() {
        let a = BitVec::from_fn(50, |i| i % 7 == 0);
        let b = BitVec::from_indices(50, (0..50).filter(|i| i % 7 == 0));
        assert_eq!(a, b);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..77).map(|i| i % 3 == 1).collect();
        let v = BitVec::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn u64_roundtrip() {
        for value in [0u64, 1, 0b1011, u32::MAX as u64, 0xDEAD_BEEF] {
            let v = BitVec::from_u64_lsb(value, 64);
            assert_eq!(v.to_u64_lsb(), value);
        }
        let v = BitVec::from_u64_lsb(0b101, 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_u64_lsb(), 0b101);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn u64_too_wide_panics() {
        let _ = BitVec::from_u64_lsb(8, 3);
    }

    #[test]
    fn u64_in_wide_string() {
        let v = BitVec::from_u64_lsb(0xFFFF_FFFF_FFFF_FFFF, 200);
        assert_eq!(v.count_ones(), 64);
        assert_eq!(v.to_u64_lsb(), 0xFFFF_FFFF_FFFF_FFFF);
    }

    #[test]
    fn nth_one_positions() {
        let v = BitVec::from_indices(200, [3, 64, 65, 130, 199]);
        assert_eq!(v.position_of_nth_one(0), None);
        assert_eq!(v.position_of_nth_one(1), Some(3));
        assert_eq!(v.position_of_nth_one(2), Some(64));
        assert_eq!(v.position_of_nth_one(3), Some(65));
        assert_eq!(v.position_of_nth_one(4), Some(130));
        assert_eq!(v.position_of_nth_one(5), Some(199));
        assert_eq!(v.position_of_nth_one(6), None);
    }

    #[test]
    fn nth_one_dense() {
        let v = BitVec::ones(70);
        for i in 1..=70 {
            assert_eq!(v.position_of_nth_one(i), Some(i - 1));
        }
    }

    #[test]
    fn word_views_round_trip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.as_words().len(), 3);
        // Writing through the word view is visible bit-wise, and writes
        // below `len` keep the tail invariant by construction.
        v.as_words_mut()[1] = 0b101;
        assert!(v.get(64) && !v.get(65) && v.get(66));
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v, BitVec::from_indices(130, [64, 66]));
    }

    #[test]
    fn eq_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = BitVec::from_indices(100, [1, 50, 99]);
        let b = BitVec::from_indices(100, [1, 50, 99]);
        let c = BitVec::from_indices(100, [1, 50]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
