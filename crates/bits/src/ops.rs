//! Bulk logical operations: the paper's `∧`, `∨`, `¬`, `d`-intersection and
//! Hamming distance (Definitions 2 and 5, Section 1.5).

use crate::BitVec;
use std::ops::{BitAnd, BitOr, BitXor, Not};

impl BitVec {
    /// In-place bitwise OR (`self ∨= other`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "or_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND (`self ∧= other`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "and_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "xor_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise complement (`¬self`).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// `1(self ∧ other)` without allocating — the size of the intersection
    /// of the two strings' 1-positions.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn intersection_count(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "intersection_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `1(self ∧ ¬other)` without allocating: how many 1s of `self` fall in
    /// positions where `other` has a 0. This is exactly the quantity the
    /// paper's phase-1 decoder thresholds (Lemma 9 tests whether `C(r)`
    /// `d`-intersects `¬x̃ᵥ`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn and_not_count(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "and_not_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether `self` `d`-intersects `other`: `1(self ∧ other) ≥ d`
    /// (Definition 2).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn d_intersects(&self, other: &BitVec, d: usize) -> bool {
        self.intersection_count(other) >= d
    }

    /// Hamming distance `d_H(self, other)` (used by distance codes,
    /// Definition 5).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "hamming_distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ∧ other ≠ 0`, i.e. the two strings share at least one
    /// 1-position — `d_intersects(other, 1)` with word-level early exit.
    ///
    /// The lower-bound transcript projection asks this question once per
    /// recorded round; answering it a word at a time (instead of testing
    /// observed positions one by one) is what keeps that path on the fast
    /// side.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn intersects(&self, other: &BitVec) -> bool {
        self.assert_same_len(other, "intersects");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ∧ other == self`, i.e. every 1 of `self` is also a 1 of
    /// `other`. A codeword is subsumed by a superimposition containing it.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.assert_same_len(other, "is_subset_of");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Extracts the subsequence of `self` at the given positions, in order.
    ///
    /// The paper's phase-2 decoder reads `y_{v,w}`, the subsequence of the
    /// heard string at the 1-positions of a neighbor's beep codeword
    /// (Lemma 10); this method is that projection.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn extract(&self, positions: impl IntoIterator<Item = usize>) -> BitVec {
        // Accumulate output words directly — no intermediate `Vec<bool>`.
        let mut words = Vec::new();
        let mut acc = 0u64;
        let mut len = 0usize;
        for p in positions {
            if self.get(p) {
                acc |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(acc);
                acc = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(acc);
        }
        BitVec { words, len }
    }

    /// Extracts the subsequence of `self` at the 1-positions of `mask`
    /// (ascending) — `extract(mask.iter_ones())`, but computed a word at a
    /// time: zero mask words are skipped outright and set bits are peeled
    /// with bit tricks instead of per-position bounds-checked `get` calls.
    ///
    /// This is the paper's phase-2 projection `y_{v,w}` (Lemma 10): the
    /// received string restricted to a carrier codeword's 1-positions. It
    /// sits on the decode hot path, executed once per (node, candidate)
    /// pair per simulated round.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn extract_mask(&self, mask: &BitVec) -> BitVec {
        self.assert_same_len(mask, "extract_mask");
        let mut out = BitVec::zeros(mask.count_ones());
        let mut out_word = 0usize;
        let mut out_bit = 0usize;
        let mut acc = 0u64;
        for (&src, &m) in self.words.iter().zip(&mask.words) {
            let mut m = m;
            while m != 0 {
                let low = m & m.wrapping_neg();
                if src & low != 0 {
                    acc |= 1u64 << out_bit;
                }
                out_bit += 1;
                if out_bit == 64 {
                    out.words[out_word] = acc;
                    out_word += 1;
                    out_bit = 0;
                    acc = 0;
                }
                m &= m - 1;
            }
        }
        if out_bit > 0 {
            out.words[out_word] = acc;
        }
        out
    }
}

/// Superimposition `∨(S)` of a non-empty collection of equal-length strings
/// (the paper's Definition 2 shorthand).
///
/// Returns `None` for an empty iterator (there is no length to give the
/// identity element).
///
/// # Panics
///
/// Panics if the strings have unequal lengths.
pub fn superimpose<'a>(strings: impl IntoIterator<Item = &'a BitVec>) -> Option<BitVec> {
    let mut iter = strings.into_iter();
    let mut acc = iter.next()?.clone();
    for s in iter {
        acc.or_assign(s);
    }
    Some(acc)
}

macro_rules! owned_binop {
    ($trait:ident, $method:ident, $assign:ident) => {
        impl $trait for &BitVec {
            type Output = BitVec;
            fn $method(self, rhs: &BitVec) -> BitVec {
                let mut out = self.clone();
                out.$assign(rhs);
                out
            }
        }
        impl $trait for BitVec {
            type Output = BitVec;
            fn $method(mut self, rhs: BitVec) -> BitVec {
                self.$assign(&rhs);
                self
            }
        }
    };
}

owned_binop!(BitOr, bitor, or_assign);
owned_binop!(BitAnd, bitand, and_assign);
owned_binop!(BitXor, bitxor, xor_assign);

impl Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }
}

impl Not for BitVec {
    type Output = BitVec;
    fn not(mut self) -> BitVec {
        self.not_assign();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        BitVec::from_str_01(s).unwrap()
    }

    #[test]
    fn or_and_xor_not() {
        let a = bv("1100");
        let b = bv("1010");
        assert_eq!(&a | &b, bv("1110"));
        assert_eq!(&a & &b, bv("1000"));
        assert_eq!(&a ^ &b, bv("0110"));
        assert_eq!(!&a, bv("0011"));
    }

    #[test]
    fn not_preserves_tail_invariant() {
        let a = BitVec::zeros(70);
        let n = !&a;
        assert_eq!(n.count_ones(), 70);
        // Double complement is identity.
        assert_eq!(!&n, a);
    }

    #[test]
    fn counting_matches_materialized_ops() {
        let a = bv("110101110010");
        let b = bv("011100101011");
        assert_eq!(a.intersection_count(&b), (&a & &b).count_ones());
        assert_eq!(a.and_not_count(&b), (&a & &!&b).count_ones());
        assert_eq!(a.hamming_distance(&b), (&a ^ &b).count_ones());
    }

    #[test]
    fn d_intersects_threshold() {
        let a = bv("1110");
        let b = bv("0111");
        // intersection = 2
        assert!(a.d_intersects(&b, 0));
        assert!(a.d_intersects(&b, 2));
        assert!(!a.d_intersects(&b, 3));
    }

    #[test]
    fn subset_semantics() {
        let small = bv("0100_0010".replace('_', "").as_str());
        let big = bv("0110_0011".replace('_', "").as_str());
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn extract_projection() {
        let y = bv("10110100");
        let sub = y.extract([0, 2, 3, 7]);
        assert_eq!(sub, bv("1110"));
        let empty = y.extract(std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn extract_mask_matches_extract() {
        let y = bv("10110100");
        let mask = bv("10110001");
        assert_eq!(y.extract_mask(&mask), y.extract(mask.iter_ones()));
        // Cross word boundaries and straddle the 64-bit output packing.
        let wide = BitVec::from_indices(300, (0..300).filter(|i| i % 3 == 0));
        let mask = BitVec::from_indices(300, (0..300).filter(|i| i % 2 == 0));
        let sub = wide.extract_mask(&mask);
        assert_eq!(sub.len(), 150);
        assert_eq!(sub, wide.extract(mask.iter_ones()));
        // Empty mask gives the empty string.
        assert!(wide.extract_mask(&BitVec::zeros(300)).is_empty());
        // Full mask is the identity.
        assert_eq!(wide.extract_mask(&BitVec::ones(300)), wide);
    }

    #[test]
    fn intersects_matches_counting() {
        let a = bv("110101110010");
        let b = bv("011100101011");
        assert_eq!(a.intersects(&b), a.intersection_count(&b) > 0);
        let disjoint = BitVec::from_indices(200, [0, 64, 128]);
        let other = BitVec::from_indices(200, [1, 65, 129]);
        assert!(!disjoint.intersects(&other));
        assert!(disjoint.intersects(&disjoint));
        assert!(!BitVec::zeros(200).intersects(&other));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_extract_mask_panics() {
        let _ = bv("10").extract_mask(&bv("100"));
    }

    #[test]
    fn superimpose_matches_fold() {
        let strings = [bv("1000"), bv("0100"), bv("0101")];
        assert_eq!(superimpose(&strings), Some(bv("1101")));
        assert_eq!(superimpose(std::iter::empty()), None);
        assert_eq!(superimpose([&strings[0]]), Some(strings[0].clone()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_or_panics() {
        let _ = &bv("10") | &bv("100");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_hamming_panics() {
        let _ = bv("10").hamming_distance(&bv("100"));
    }
}
