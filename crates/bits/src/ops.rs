//! Bulk logical operations: the paper's `∧`, `∨`, `¬`, `d`-intersection and
//! Hamming distance (Definitions 2 and 5, Section 1.5).

use crate::BitVec;
use std::ops::{BitAnd, BitOr, BitXor, Not};

impl BitVec {
    /// In-place bitwise OR (`self ∨= other`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "or_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND (`self ∧= other`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "and_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.assert_same_len(other, "xor_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise complement (`¬self`).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// `1(self ∧ other)` without allocating — the size of the intersection
    /// of the two strings' 1-positions.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn intersection_count(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "intersection_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `1(self ∧ ¬other)` without allocating: how many 1s of `self` fall in
    /// positions where `other` has a 0. This is exactly the quantity the
    /// paper's phase-1 decoder thresholds (Lemma 9 tests whether `C(r)`
    /// `d`-intersects `¬x̃ᵥ`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn and_not_count(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "and_not_count");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether `self` `d`-intersects `other`: `1(self ∧ other) ≥ d`
    /// (Definition 2).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn d_intersects(&self, other: &BitVec, d: usize) -> bool {
        self.intersection_count(other) >= d
    }

    /// Hamming distance `d_H(self, other)` (used by distance codes,
    /// Definition 5).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        self.assert_same_len(other, "hamming_distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ∧ other == self`, i.e. every 1 of `self` is also a 1 of
    /// `other`. A codeword is subsumed by a superimposition containing it.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.assert_same_len(other, "is_subset_of");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Extracts the subsequence of `self` at the given positions, in order.
    ///
    /// The paper's phase-2 decoder reads `y_{v,w}`, the subsequence of the
    /// heard string at the 1-positions of a neighbor's beep codeword
    /// (Lemma 10); this method is that projection.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn extract(&self, positions: impl IntoIterator<Item = usize>) -> BitVec {
        let bits: Vec<bool> = positions.into_iter().map(|p| self.get(p)).collect();
        BitVec::from_bools(&bits)
    }
}

/// Superimposition `∨(S)` of a non-empty collection of equal-length strings
/// (the paper's Definition 2 shorthand).
///
/// Returns `None` for an empty iterator (there is no length to give the
/// identity element).
///
/// # Panics
///
/// Panics if the strings have unequal lengths.
pub fn superimpose<'a>(strings: impl IntoIterator<Item = &'a BitVec>) -> Option<BitVec> {
    let mut iter = strings.into_iter();
    let mut acc = iter.next()?.clone();
    for s in iter {
        acc.or_assign(s);
    }
    Some(acc)
}

macro_rules! owned_binop {
    ($trait:ident, $method:ident, $assign:ident) => {
        impl $trait for &BitVec {
            type Output = BitVec;
            fn $method(self, rhs: &BitVec) -> BitVec {
                let mut out = self.clone();
                out.$assign(rhs);
                out
            }
        }
        impl $trait for BitVec {
            type Output = BitVec;
            fn $method(mut self, rhs: BitVec) -> BitVec {
                self.$assign(&rhs);
                self
            }
        }
    };
}

owned_binop!(BitOr, bitor, or_assign);
owned_binop!(BitAnd, bitand, and_assign);
owned_binop!(BitXor, bitxor, xor_assign);

impl Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }
}

impl Not for BitVec {
    type Output = BitVec;
    fn not(mut self) -> BitVec {
        self.not_assign();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        BitVec::from_str_01(s).unwrap()
    }

    #[test]
    fn or_and_xor_not() {
        let a = bv("1100");
        let b = bv("1010");
        assert_eq!(&a | &b, bv("1110"));
        assert_eq!(&a & &b, bv("1000"));
        assert_eq!(&a ^ &b, bv("0110"));
        assert_eq!(!&a, bv("0011"));
    }

    #[test]
    fn not_preserves_tail_invariant() {
        let a = BitVec::zeros(70);
        let n = !&a;
        assert_eq!(n.count_ones(), 70);
        // Double complement is identity.
        assert_eq!(!&n, a);
    }

    #[test]
    fn counting_matches_materialized_ops() {
        let a = bv("110101110010");
        let b = bv("011100101011");
        assert_eq!(a.intersection_count(&b), (&a & &b).count_ones());
        assert_eq!(a.and_not_count(&b), (&a & &!&b).count_ones());
        assert_eq!(a.hamming_distance(&b), (&a ^ &b).count_ones());
    }

    #[test]
    fn d_intersects_threshold() {
        let a = bv("1110");
        let b = bv("0111");
        // intersection = 2
        assert!(a.d_intersects(&b, 0));
        assert!(a.d_intersects(&b, 2));
        assert!(!a.d_intersects(&b, 3));
    }

    #[test]
    fn subset_semantics() {
        let small = bv("0100_0010".replace('_', "").as_str());
        let big = bv("0110_0011".replace('_', "").as_str());
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn extract_projection() {
        let y = bv("10110100");
        let sub = y.extract([0, 2, 3, 7]);
        assert_eq!(sub, bv("1110"));
        let empty = y.extract(std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn superimpose_matches_fold() {
        let strings = [bv("1000"), bv("0100"), bv("0101")];
        assert_eq!(superimpose(&strings), Some(bv("1101")));
        assert_eq!(superimpose(std::iter::empty()), None);
        assert_eq!(superimpose([&strings[0]]), Some(strings[0].clone()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_or_panics() {
        let _ = &bv("10") | &bv("100");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_hamming_panics() {
        let _ = bv("10").hamming_distance(&bv("100"));
    }
}
