#![warn(missing_docs)]

//! Dense fixed-length bit strings for beeping-model codes.
//!
//! This crate provides [`BitVec`], the core data structure underlying every
//! code and every transmitted frame in the `noisy-beeps` workspace. The paper
//! ("Optimal Message-Passing with Noisy Beeps", Davies, PODC 2023) works
//! entirely with binary strings `s ∈ {0,1}^a` and three primitive operations
//! on them:
//!
//! * **superimposition** — bitwise OR of a set of strings, written `∨(S)`
//!   (what a listening node hears when several neighbors beep),
//! * **`1(s)`** — the number of 1s in a string (Definition 2),
//! * **`d`-intersection** — `1(s ∧ s′) ≥ d` (Definition 2), and
//! * **Hamming distance** — used by the distance codes of Lemma 6.
//!
//! [`BitVec`] implements all of these over packed `u64` words, plus the
//! sampling primitives the paper's probabilistic constructions need
//! (uniformly random strings, uniformly random strings of *exact* weight,
//! per-bit Bernoulli noise flips).
//!
//! # Example
//!
//! ```
//! use beep_bits::BitVec;
//!
//! let a = BitVec::from_str_01("10110").unwrap();
//! let b = BitVec::from_str_01("01100").unwrap();
//! assert_eq!((&a | &b).to_string(), "11110");
//! assert_eq!(a.intersection_count(&b), 1);
//! assert_eq!(a.hamming_distance(&b), 3);
//! assert!(a.d_intersects(&b, 1));
//! assert!(!a.d_intersects(&b, 2));
//! ```

mod bitvec;
mod fmt;
mod iter;
mod ops;
mod random;

pub use bitvec::BitVec;
pub use fmt::ParseBitVecError;
pub use iter::Ones;
pub use ops::superimpose;
