//! The synchronous round engine.

use crate::channel::{apply_channel_sharded, ChannelCtx, ChannelModel, NoiseModel};
use crate::error::NetError;
use crate::faults::{AdversaryView, FaultPlan, RoundFaults};
use crate::graph::{AdjacencyRepr, Graph};
use crate::node::{Action, BeepProtocol};
use crate::noise::Noise;
use crate::trace::{NetStats, Transcript};
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Word budget for the precomputed dense adjacency bitmasks: `n` rows of
/// `⌈n/64⌉` words each are only materialized when they fit in this many
/// `u64`s (16 MiB). Beyond it the sparse CSR kernel is used.
const DENSE_WORD_BUDGET: usize = 1 << 21;

/// Default shard count `S` of the sharded round kernel. Part of the
/// determinism tuple `(graph, noise, seed, actions, shard_count)`, so it is
/// a fixed constant — never derived from the machine. Override with
/// [`BeepNetwork::set_shard_count`].
const DEFAULT_SHARD_COUNT: usize = 8;

/// Auto-parallelism budget: with `n + 2m` below this, a round is too small
/// for thread spawn/join to pay off and the auto heuristic stays on one
/// thread. Roughly the work of a 64k-node sparse round (~a few tens of
/// microseconds); scope spawn/join costs single-digit microseconds.
const PARALLEL_WORK_BUDGET: usize = 1 << 16;

/// Beeper-density threshold of the sparse kernel's per-shard strategy: at
/// `16·#beepers ≥ n` the destination-side gather (early-exit neighbor scan
/// per node) beats source-side scatter (binary-searched adjacency slices
/// per beeper). Cost-only — both strategies write the same bits.
const GATHER_DENSITY_FACTOR: usize = 16;

/// Rounds per cache block of [`BeepNetwork::run_frames_batched`]. Each
/// block walks the adjacency once per shard for all its rounds, so a
/// shard's working set (its output words × block rounds plus the beeper
/// bitmaps) stays hot in L2 instead of being evicted between rounds.
/// Purely a performance knob — the batched driver is byte-identical to
/// round-by-round [`BeepNetwork::run_frame`] at every block size, because
/// noise stays keyed by `(seed, round, shard)` and the fault overlay runs
/// round-sequentially in the pre-pass.
const FRAME_BLOCK_ROUNDS: usize = 32;

/// The implicit topologies the zero-storage OR kernel computes on the fly
/// (mirrors the implicit variants of [`AdjacencyRepr`]).
#[derive(Debug, Clone, Copy)]
enum ImplicitShape {
    /// Complete graph: anyone beeping means everyone receives a 1.
    Complete,
    /// Wrap-around `rows × cols` torus.
    Torus { rows: usize, cols: usize },
    /// Boundary `rows × cols` grid.
    Grid { rows: usize, cols: usize },
}

/// How [`BeepNetwork::run_round_bitset`] computes the neighborhood OR.
#[derive(Debug)]
enum AdjKernel {
    /// Iterate the set bits of the beeper bitmap and scatter each beeper's
    /// adjacency list into the received bitmap: `O(Σ deg(beeper))`.
    Sparse,
    /// Dense rows selected but not yet materialized: a network that only
    /// ever runs the scalar path (or is constructed per bench iteration)
    /// must not pay the `O(n²/64)` build in `new`. The first bitset round
    /// promotes this to [`AdjKernel::Dense`].
    DensePending,
    /// Per-node neighbor bitmasks, OR'd a whole row (word-parallel) per
    /// beeper: `O(#beepers · n/64)` words. Wins on small or dense graphs.
    Dense(Vec<BitVec>),
    /// Zero-storage kernel for implicit topologies: the neighborhood OR of
    /// a whole output word is a handful of masked shifts of the beeper
    /// words (`O(n/64)` per round regardless of beeper density), so the
    /// adjacency is never touched because it never exists.
    Implicit(ImplicitShape),
}

impl AdjKernel {
    /// Auto-selects the kernel. Implicit graphs get the zero-storage
    /// shift kernel. Materialized graphs (CSR or delta-varint) get dense
    /// rows when they fit the [`DENSE_WORD_BUDGET`] *and* the graph is
    /// dense enough that a row OR (`⌈n/64⌉` words) beats scattering an
    /// average adjacency list (`2m/n` bit-writes), i.e. roughly when
    /// `128·m ≥ n²`. The rows themselves are built lazily on first use.
    fn auto(graph: &Graph) -> Self {
        match graph.repr() {
            AdjacencyRepr::Complete { .. } => return AdjKernel::Implicit(ImplicitShape::Complete),
            AdjacencyRepr::Torus { rows, cols } => {
                return AdjKernel::Implicit(ImplicitShape::Torus { rows, cols })
            }
            AdjacencyRepr::Grid { rows, cols } => {
                return AdjKernel::Implicit(ImplicitShape::Grid { rows, cols })
            }
            AdjacencyRepr::Csr | AdjacencyRepr::DeltaCsr => {}
        }
        let n = graph.node_count();
        let words_per_row = n.div_ceil(64);
        let fits = n.saturating_mul(words_per_row) <= DENSE_WORD_BUDGET;
        let dense_enough = 128usize.saturating_mul(graph.edge_count()) >= n.saturating_mul(n);
        if n > 0 && fits && dense_enough {
            AdjKernel::DensePending
        } else {
            AdjKernel::Sparse
        }
    }

    fn dense(graph: &Graph) -> Self {
        let n = graph.node_count();
        AdjKernel::Dense(
            (0..n)
                .map(|v| {
                    let mut row = BitVec::zeros(n);
                    graph.for_each_neighbor(v, |u| row.set(u, true));
                    row
                })
                .collect(),
        )
    }
}

/// `dst |= src` over whole words, manually unrolled into u64×8 lanes so
/// the dense row OR issues wide independent OR chains instead of relying
/// on the autovectorizer's judgement in a generic zip loop.
#[inline]
fn or_words_wide(dst: &mut [u64], src: &[u64]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] |= sc[0];
        dc[1] |= sc[1];
        dc[2] |= sc[2];
        dc[3] |= sc[3];
        dc[4] |= sc[4];
        dc[5] |= sc[5];
        dc[6] |= sc[6];
        dc[7] |= sc[7];
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 |= *s1;
    }
}

/// Bits `bit .. bit+64` of `src` as one word, with everything outside
/// `[0, 64·src.len())` reading as zero. The implicit kernels express "the
/// beeper bit of my neighbor `v ± k`" as `window(beepers, 64·w ± k)`.
#[inline]
fn window(src: &[u64], bit: i64) -> u64 {
    let word = bit.div_euclid(64);
    let sh = bit.rem_euclid(64) as u32;
    let get = |w: i64| -> u64 {
        if w < 0 || w >= src.len() as i64 {
            0
        } else {
            src[w as usize]
        }
    };
    if sh == 0 {
        get(word)
    } else {
        (get(word) >> sh) | (get(word + 1) << (64 - sh))
    }
}

/// Bits `b` of word `w` whose node `64·w + b` has `node % cols == residue`
/// — the column-boundary masks of the grid/torus kernels. At most
/// `⌈64/cols⌉` bits are set, so the stride loop is short.
#[inline]
fn stride_mask(w: usize, cols: usize, residue: usize) -> u64 {
    let offset = (w * 64) % cols;
    let mut b = (residue + cols - offset) % cols;
    let mut mask = 0u64;
    while b < 64 {
        mask |= 1u64 << b;
        b += cols;
    }
    mask
}

/// Bits `b` of word `w` whose node `64·w + b` lies in `[lo, hi)` — the
/// first-row/last-row masks of the torus wrap terms.
#[inline]
fn range_mask(w: usize, lo: usize, hi: usize) -> u64 {
    let wlo = w * 64;
    let from = lo.saturating_sub(wlo).min(64);
    let to = hi.saturating_sub(wlo).min(64);
    if from >= to {
        return 0;
    }
    let high = if to == 64 { !0 } else { (1u64 << to) - 1 };
    let low = if from == 0 { 0 } else { (1u64 << from) - 1 };
    high & !low
}

/// [`std::thread::available_parallelism`], queried once per process: the
/// auto heuristic consults it every round, and on Linux the std call
/// re-reads cgroup quota files — far too slow for a microsecond-scale
/// round loop.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// The read-only inputs one round of the sharded kernel shares across
/// worker threads. Everything here is borrowed immutably, so shards can be
/// computed in any order, on any thread, with identical results.
struct ShardCtx<'a> {
    graph: &'a Graph,
    /// Dense adjacency rows when the dense kernel is active.
    rows: Option<&'a [BitVec]>,
    /// The implicit topology when the zero-storage shift kernel is active.
    shape: Option<ImplicitShape>,
    /// Whether the graph is materialized CSR, unlocking the borrowed-slice
    /// fast paths (`Graph::neighbors`); other representations go through
    /// the generic `for_each_neighbor*` accessors.
    csr: bool,
    /// `beepers.count_ones()`, computed once per round (the complete-graph
    /// kernel and the gather/scatter strategy choice both need it).
    beep_count: usize,
    beepers: &'a BitVec,
    /// The set bits of `beepers`, materialized once per round: the dense
    /// and scatter kernels walk the beeper set once *per shard*, and
    /// re-scanning the whole bitmap S times would dominate sparse rounds.
    /// Left empty in gather mode, which never iterates beepers.
    beeper_list: &'a [usize],
    /// Bits that must not be flipped by noise (the beeper set when
    /// self-hearing is configured noise-free).
    protect: Option<&'a BitVec>,
    channel: &'a ChannelModel,
    seed: u64,
    round: u64,
    /// The round's shard layout size `S` — part of the channel streams.
    shard_count: usize,
    /// The channel's per-round state ([`NoiseModel::round_state`]),
    /// computed once before the shards fan out.
    round_state: u64,
    /// Sparse-kernel strategy for this round: destination-side gather
    /// (dense beeper sets) vs source-side scatter (sparse ones).
    gather: bool,
}

impl ShardCtx<'_> {
    /// Computes one shard of the received frame: bits `lo..hi` of the
    /// round's output, written into `out` (whose first word is global word
    /// `lo / 64`). Pure in `(self, shard, lo, hi)` — thread-safe by
    /// construction because every shard owns a disjoint word range.
    fn compute(&self, shard: usize, lo: usize, hi: usize, out: &mut [u64]) {
        self.or_into(lo, hi, out);
        self.noise_into(shard, lo, hi, out);
    }

    /// The pre-noise received bits of `lo..hi`: self-hearing copy plus the
    /// neighborhood OR. A pure function of `(graph, beepers)` — shard
    /// boundaries only restrict *where* it writes, so the serial path can
    /// call it once over the whole frame.
    fn or_into(&self, lo: usize, hi: usize, out: &mut [u64]) {
        let w_lo = lo / 64;
        // Self-hearing (Section 1.5): start from the beeper bits.
        out.copy_from_slice(&self.beepers.as_words()[w_lo..w_lo + out.len()]);
        if let Some(rows) = self.rows {
            // Dense kernel: OR each beeper's adjacency-bitmask row,
            // restricted to this shard's words, in u64×8 unrolled lanes.
            for &u in self.beeper_list {
                or_words_wide(out, &rows[u].as_words()[w_lo..w_lo + out.len()]);
            }
        } else if let Some(shape) = self.shape {
            // Implicit kernel: the neighborhood OR of a whole word is a
            // handful of masked shifts — no adjacency exists to touch.
            self.implicit_or(shape, w_lo, out);
        } else if self.gather {
            // Dense beeper set: scan each shard node's neighborhood with
            // early exit — at ≥ n/16 beepers a hit comes fast.
            for v in lo..hi {
                let mask = 1u64 << (v % 64);
                if out[(v - lo) / 64] & mask != 0 {
                    continue; // beeped itself: already receives a 1
                }
                let hit = if self.csr {
                    self.graph.neighbors(v).iter().any(|&u| self.beepers.get(u))
                } else {
                    self.graph.any_neighbor(v, |u| self.beepers.get(u))
                };
                if hit {
                    out[(v - lo) / 64] |= mask;
                }
            }
        } else if self.csr {
            // Sparse beeper set: scatter each beeper's CSR adjacency list,
            // binary-searched down to this shard's node range. Consecutive
            // neighbors usually share an output word (lists are sorted),
            // so bits accumulate in a register and flush once per word
            // instead of read-modify-writing memory per neighbor.
            for &u in self.beeper_list {
                let adj = self.graph.neighbors(u);
                let start = adj.partition_point(|&w| w < lo);
                let mut cur = usize::MAX;
                let mut acc = 0u64;
                for &w in &adj[start..] {
                    if w >= hi {
                        break;
                    }
                    let wi = (w - lo) / 64;
                    if wi != cur {
                        if acc != 0 {
                            out[cur] |= acc;
                        }
                        cur = wi;
                        acc = 0;
                    }
                    acc |= 1u64 << (w % 64);
                }
                if acc != 0 {
                    out[cur] |= acc;
                }
            }
        } else {
            // Generic scatter for compressed adjacency: decode each
            // beeper's list over this shard's range (ascending, early
            // exit), with the same word-chunked accumulation.
            for &u in self.beeper_list {
                let mut cur = usize::MAX;
                let mut acc = 0u64;
                self.graph.for_each_neighbor_in_range(u, lo, hi, |w| {
                    let wi = (w - lo) / 64;
                    if wi != cur {
                        if acc != 0 {
                            out[cur] |= acc;
                        }
                        cur = wi;
                        acc = 0;
                    }
                    acc |= 1u64 << (w % 64);
                });
                if acc != 0 {
                    out[cur] |= acc;
                }
            }
        }
    }

    /// The implicit-topology neighborhood OR for the words starting at
    /// global word `w_lo`: each output word is assembled from masked
    /// shifted windows of the beeper words. `out` already holds the
    /// self-hearing beeper copy; this ORs the neighbor contributions on
    /// top and re-zeros the padding bits of the final word.
    fn implicit_or(&self, shape: ImplicitShape, w_lo: usize, out: &mut [u64]) {
        let n = self.beepers.len();
        let src = self.beepers.as_words();
        match shape {
            ImplicitShape::Complete => {
                // Carrier sensing on K_n: any beeper at all is heard by
                // every node (beeper or not).
                if self.beep_count > 0 {
                    out.fill(!0);
                }
            }
            ImplicitShape::Torus { rows, cols } | ImplicitShape::Grid { rows, cols } => {
                let wrap = matches!(shape, ImplicitShape::Torus { .. });
                debug_assert_eq!(rows * cols, n);
                let c = cols as i64;
                for (idx, o) in out.iter_mut().enumerate() {
                    let w = w_lo + idx;
                    let base = (w * 64) as i64;
                    // Vertical neighbors are a plain ±cols shift; nodes in
                    // the first/last row read past the bitmap and get 0.
                    let mut acc = window(src, base - c) | window(src, base + c);
                    // Horizontal neighbors are a ±1 shift masked at the
                    // column boundaries so rows don't bleed into each
                    // other.
                    let start_mask = stride_mask(w, cols, 0);
                    let end_mask = stride_mask(w, cols, cols - 1);
                    acc |= window(src, base - 1) & !start_mask;
                    acc |= window(src, base + 1) & !end_mask;
                    if wrap {
                        // Torus wrap terms: column 0 ↔ column cols−1 and
                        // first row ↔ last row.
                        acc |= window(src, base + c - 1) & start_mask;
                        acc |= window(src, base - (c - 1)) & end_mask;
                        let nc = (n - cols) as i64;
                        acc |= window(src, base + nc) & range_mask(w, 0, cols);
                        acc |= window(src, base - nc) & range_mask(w, n - cols, n);
                    }
                    *o |= acc;
                }
            }
        }
        // The shifts above can set padding bits past `n` in the bitmap's
        // final word; BitVec's word invariant (and the post-pass scatter)
        // require them zero.
        if !n.is_multiple_of(64) {
            let last = n / 64;
            if (w_lo..w_lo + out.len()).contains(&last) {
                out[last - w_lo] &= (1u64 << (n % 64)) - 1;
            }
        }
    }

    /// Channel noise for bits `lo..hi`, from the `(round, shard)` cell's
    /// own counter-keyed stream — identical no matter which thread runs
    /// the shard. Unlike [`or_into`](Self::or_into), this MUST be called
    /// with the exact shard boundaries: the flips are what the
    /// determinism contract keys per shard.
    fn noise_into(&self, shard: usize, lo: usize, hi: usize, out: &mut [u64]) {
        if self.channel.is_noiseless() {
            return;
        }
        let ctx = ChannelCtx {
            graph: self.graph,
            seed: self.seed,
            round: self.round,
            shard: shard as u64,
            shard_count: self.shard_count,
            round_state: self.round_state,
            protect: self.protect,
        };
        self.channel.apply_to_shard(out, lo, hi, &ctx);
    }
}

/// A beeping network: a graph, a channel model, and a seeded RNG.
///
/// The engine implements the models of Section 1.1 exactly:
///
/// 1. every node submits an [`Action`] for the round;
/// 2. a node receives `1` iff it beeped itself or at least one neighbor
///    beeped (Section 1.5's "receives" convention);
/// 3. under [`Noise::Bernoulli`], each node's received bit is then flipped
///    independently with probability `ε`.
///
/// Per the paper's footnote 2, a beeping node's own `1` is flipped too by
/// default, so the engine matches the analysis verbatim; call
/// [`set_self_hearing_noisy(false)`](Self::set_self_hearing_noisy) for the
/// (easier) realistic semantics where a node knows it beeped.
///
/// # Round kernels
///
/// Three implementations of the same model:
///
/// * [`run_round`](Self::run_round) — the scalar reference: one pass over
///   the nodes, one neighborhood scan and (under noise) one RNG draw each.
///   Kept as the differential-testing oracle.
/// * [`run_round_bitset`](Self::run_round_bitset) — the bit-parallel
///   production kernel: beepers come in as a [`BitVec`], the received OR is
///   computed from the set bits (or via precomputed adjacency bitmask rows
///   on small/dense graphs), and channel noise is applied with batched
///   geometric-skip sampling.
/// * The **sharded multi-threaded path** inside the bitset kernel: the
///   received frame is split into [`shard_count`](Self::shard_count)
///   word-aligned shards, each computed independently (and, above a work
///   budget or with [`set_parallelism`](Self::set_parallelism), on worker
///   threads writing disjoint word ranges).
///
/// # Determinism contract
///
/// Scalar and bitset kernels are bit-identical under [`Noise::Noiseless`]
/// (asserted by the `bitset_oracle` test suite). Under noise, the scalar
/// kernel draws bit-by-bit from the network's sequential RNG, while the
/// bitset kernel draws each round's flips from per-shard counter-keyed
/// streams ([`noise_stream_seed`](crate::noise_stream_seed)`(seed, round,
/// shard)`). A noisy bitset transcript is therefore a pure function of
/// `(graph, channel, faults, seed, actions, shard_count)` — the thread
/// count and thread scheduling are **not** part of the stream, so any
/// parallelism setting (including 1) reproduces it bit-identically. Scalar
/// and bitset noisy runs are equal in distribution, not bit-equal.
///
/// # Fault overlay
///
/// An installed [`FaultPlan`] (see [`set_fault_plan`](Self::set_fault_plan))
/// slots between submitted actions and the channel in **every** kernel:
/// faulty nodes' actions are overridden before the neighborhood OR (so the
/// overlay is applied identically regardless of shard layout or thread
/// count), and crashed nodes' received bits are forced to 0 after the
/// channel. A plan may also carry an
/// [`AdaptivePolicy`](crate::AdaptivePolicy): its per-round choices are
/// computed once before the shard fan-out, from observables (submitted
/// beepers, cumulative per-node beep counts, last network activity) that
/// are identical in every kernel, and applied through the same two
/// passes. The channel's RNG streams are untouched either way, so a run
/// with the empty plan is byte-identical to a fault-free run.
///
/// # Example
///
/// ```
/// use beep_bits::BitVec;
/// use beep_net::{topology, BeepNetwork, Noise};
///
/// let mut net = BeepNetwork::new(topology::star(5).unwrap(), Noise::Noiseless, 7);
/// // Leaf 3 beeps: the hub (node 0) hears it, the other leaves don't.
/// let received = net.run_round_bitset(&BitVec::from_indices(5, [3])).unwrap();
/// assert_eq!(received.to_string(), "10010");
/// assert_eq!(net.stats().rounds, 1);
/// ```
#[derive(Debug)]
pub struct BeepNetwork {
    graph: Graph,
    channel: ChannelModel,
    /// Node-fault overlay applied between submitted actions and the
    /// channel; empty (a guaranteed no-op) unless installed via
    /// [`set_fault_plan`](Self::set_fault_plan).
    faults: FaultPlan,
    seed: u64,
    rng: StdRng,
    stats: NetStats,
    beeps_per_node: Vec<u64>,
    /// The most recent round in which any node effectively beeped (before
    /// adaptive additions) — part of what an [`AdversaryView`] observes.
    last_activity: Option<u64>,
    self_hearing_noisy: bool,
    transcript: Option<Transcript>,
    kernel: AdjKernel,
    shard_count: usize,
    /// Worker threads for the sharded kernel; 0 = auto heuristic.
    threads: usize,
}

impl BeepNetwork {
    /// Creates a network over `graph` with the given channel and RNG seed.
    /// Runs are fully deterministic in `(graph, channel, seed, actions)`
    /// plus, for noisy bitset rounds, the
    /// [`shard_count`](Self::shard_count).
    ///
    /// The channel is anything convertible into a [`ChannelModel`]: a
    /// plain [`Noise`] (the paper's iid channel — every pre-existing call
    /// site), or one of the [`crate::channel`] models such as
    /// [`crate::GilbertElliott`].
    #[must_use]
    pub fn new(graph: Graph, channel: impl Into<ChannelModel>, seed: u64) -> Self {
        let channel = channel.into();
        let beeps_per_node = vec![0; graph.node_count()];
        let kernel = AdjKernel::auto(&graph);
        BeepNetwork {
            graph,
            channel,
            faults: FaultPlan::none(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            beeps_per_node,
            last_activity: None,
            self_hearing_noisy: true,
            transcript: None,
            kernel,
            shard_count: DEFAULT_SHARD_COUNT,
            threads: 0,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The channel model.
    #[must_use]
    pub fn channel(&self) -> &ChannelModel {
        &self.channel
    }

    /// The channel as an iid [`Noise`] summary: the exact stored value
    /// for an iid channel, and the [`NoiseModel::calibration_epsilon`]
    /// rate for every other model (so ε-calibration checks in the
    /// simulators keep working unchanged).
    ///
    /// # Panics
    ///
    /// Panics if a channel model reports a `calibration_epsilon` outside
    /// `[0, ½)` — impossible for models built through their validating
    /// `try_new` constructors, which make the rate an invariant.
    #[must_use]
    pub fn noise(&self) -> Noise {
        match &self.channel {
            ChannelModel::Iid(noise) => *noise,
            other => {
                let eps = other.calibration_epsilon();
                if eps == 0.0 {
                    Noise::Noiseless
                } else {
                    Noise::try_bernoulli(eps).expect(
                        "calibration_epsilon is a validated invariant of every channel model",
                    )
                }
            }
        }
    }

    /// Installs a [`FaultPlan`]: from the next round on, faulty nodes'
    /// actions are overridden between submission and the channel (crashed
    /// nodes additionally go deaf — their received bit is forced to 0).
    /// The overlay applies identically in every kernel — scalar, bitset,
    /// frame, and protocol-driven rounds — and replaces any previous plan;
    /// install [`FaultPlan::none`] to clear it.
    ///
    /// Stats, per-node energy, and recorded transcripts count the
    /// *effective* (overridden) actions: a spammer's forced beeps cost it
    /// energy, a crashed node's submitted beeps cost nothing.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidFaultPlan`] if the plan names a node outside the
    /// graph.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), NetError> {
        if let Some(node) = plan.max_node() {
            let n = self.graph.node_count();
            if node >= n {
                return Err(NetError::InvalidFaultPlan {
                    detail: format!("node {node} out of range for {n} nodes"),
                });
            }
        }
        self.faults = plan;
        Ok(())
    }

    /// The installed [`FaultPlan`] (empty by default).
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Cumulative round/energy statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-node energy: how many beeps each node has emitted so far. The
    /// natural fairness/battery metric for the weak devices the beeping
    /// model targets.
    #[must_use]
    pub fn beeps_by_node(&self) -> &[u64] {
        &self.beeps_per_node
    }

    /// Chooses whether a beeping node's own received `1` passes through the
    /// noisy channel (default `true`, matching the paper's footnote 2).
    pub fn set_self_hearing_noisy(&mut self, noisy: bool) {
        self.self_hearing_noisy = noisy;
    }

    /// Overrides the auto-selected bitset kernel: `true` materializes the
    /// `n × n` adjacency bitmask rows (word-parallel row ORs per beeper),
    /// `false` uses the sparse scatter. A tuning knob — results are
    /// identical either way; only [`run_round_bitset`](Self::run_round_bitset)
    /// throughput changes. On an implicit graph this *turns the implicit
    /// shift kernel off* (its neighborhoods are enumerated through the
    /// generic accessors instead), which is how the differential oracle
    /// gets a second kernel to compare the shift kernel against; build a
    /// fresh network to get the auto selection back.
    pub fn set_dense_adjacency(&mut self, dense: bool) {
        self.kernel = if dense {
            AdjKernel::DensePending
        } else {
            AdjKernel::Sparse
        };
    }

    /// A short stable label of the bitset kernel the next round will use:
    /// `"sparse"`, `"dense"`, or `"implicit"`. Exposed for tests, logs,
    /// and bench metadata; the kernel never affects results, only speed.
    #[must_use]
    pub fn kernel_label(&self) -> &'static str {
        match &self.kernel {
            AdjKernel::Sparse => "sparse",
            AdjKernel::DensePending | AdjKernel::Dense(_) => "dense",
            AdjKernel::Implicit(_) => "implicit",
        }
    }

    /// Sets how many worker threads the sharded bitset kernel may use.
    /// `0` (the default) means *auto*: one thread for small rounds, all
    /// available cores once the per-round work (`n + 2m`) crosses a budget
    /// where spawn/join overhead is amortized.
    ///
    /// Purely a performance knob: results are bit-identical for every
    /// setting, because channel noise is keyed by `(seed, round, shard)`
    /// — see [`noise_stream_seed`](crate::noise_stream_seed) — never by
    /// which thread computed a shard.
    ///
    /// ```
    /// use beep_bits::BitVec;
    /// use beep_net::{topology, BeepNetwork, Noise};
    ///
    /// let g = topology::cycle(200).unwrap();
    /// let beepers = BitVec::from_indices(200, [0, 63, 130]);
    /// let mut serial = BeepNetwork::new(g.clone(), Noise::bernoulli(0.2), 9);
    /// serial.set_parallelism(1);
    /// let mut threaded = BeepNetwork::new(g, Noise::bernoulli(0.2), 9);
    /// threaded.set_parallelism(4);
    /// for _ in 0..8 {
    ///     assert_eq!(
    ///         serial.run_round_bitset(&beepers).unwrap(),
    ///         threaded.run_round_bitset(&beepers).unwrap(),
    ///     );
    /// }
    /// ```
    pub fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured worker-thread setting (`0` = auto heuristic).
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// Sets the shard count `S` of the sharded bitset kernel.
    ///
    /// Unlike the thread count, `S` **is** part of the determinism tuple:
    /// under [`Noise::Bernoulli`] each shard draws its flips from its own
    /// `(seed, round, shard)`-keyed stream, so changing `S` changes the
    /// noisy transcript (noiseless results never change). Keep the default
    /// when reproducing recorded experiments.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn set_shard_count(&mut self, shards: usize) {
        assert!(shards > 0, "shard count must be at least 1");
        self.shard_count = shards;
    }

    /// The shard count `S` of the sharded bitset kernel.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Worker threads the next bitset round will actually use, resolving
    /// the auto heuristic: parallel only when `n + 2m` crosses
    /// the spawn/join amortization budget, and never more threads than
    /// shards (a thread with no shard would be pure overhead).
    fn effective_threads(&self) -> usize {
        let configured = if self.threads == 0 {
            let work = self.graph.node_count() + 2 * self.graph.edge_count();
            if work >= PARALLEL_WORK_BUDGET {
                available_cores()
            } else {
                1
            }
        } else {
            self.threads
        };
        configured.clamp(1, self.shard_count)
    }

    /// Starts recording a [`Transcript`] of beep bitmaps from the next
    /// round on.
    pub fn record_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Transcript::new());
        }
    }

    /// The transcript recorded so far, if recording was enabled.
    #[must_use]
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// Executes one synchronous round and returns the bit each node
    /// receives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `actions.len()` differs from
    /// the node count.
    pub fn run_round(&mut self, actions: &[Action]) -> Result<Vec<bool>, NetError> {
        let n = self.graph.node_count();
        if actions.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: actions.len(),
            });
        }
        let round = self.stats.rounds as u64;
        // Fault overlay, step 1: override faulty nodes' actions *before*
        // the neighborhood OR and the channel — the same pre-channel point
        // at which the bitset kernel edits its beeper bitmap. An adaptive
        // policy then observes the static-effective submissions (the same
        // AdversaryView the bitset kernel builds pre-fan-out) and adds its
        // per-round choices on top.
        let overridden: Vec<Action>;
        let decision: RoundFaults;
        let pre_adaptive_active: bool;
        let actions: &[Action] = if self.faults.is_empty() {
            decision = RoundFaults::none();
            pre_adaptive_active = actions.contains(&Action::Beep);
            actions
        } else {
            let mut eff: Vec<Action> = (0..n)
                .map(|v| self.faults.effective_action(v, round, actions[v]))
                .collect();
            let submitted = BitVec::from_fn(n, |v| eff[v] == Action::Beep);
            pre_adaptive_active = submitted.count_ones() > 0;
            decision = self.faults.decide(&AdversaryView {
                seed: self.seed,
                round,
                beepers: &submitted,
                beeps_per_node: &self.beeps_per_node,
                last_activity: self.last_activity,
            });
            for &v in decision.spam() {
                eff[v] = Action::Beep;
            }
            for &v in decision.mute() {
                eff[v] = Action::Listen;
            }
            overridden = eff;
            &overridden
        };
        let graph = &self.graph;
        let clean_bit = |v: usize| match actions[v] {
            Action::Beep => true,
            Action::Listen => graph.any_neighbor(v, |u| actions[u] == Action::Beep),
        };
        let self_hearing_noisy = self.self_hearing_noisy;
        let iid = match &self.channel {
            ChannelModel::Iid(noise) => Some(*noise),
            _ => None,
        };
        let mut received: Vec<bool> = if let Some(noise) = iid {
            // The scalar iid path draws bit-by-bit from the network's
            // sequential RNG: equal in distribution to the bitset kernel,
            // not bit-equal.
            let rng = &mut self.rng;
            (0..n)
                .map(|v| {
                    let clean = clean_bit(v);
                    if actions[v] == Action::Beep && !self_hearing_noisy {
                        clean
                    } else {
                        noise.apply(clean, rng)
                    }
                })
                .collect()
        } else {
            // Non-iid channels are counter-keyed per (round, shard), not
            // drawn from the sequential RNG: apply them with the bitset
            // kernel's exact shard layout, so the scalar oracle reproduces
            // the bitset transcript bit-for-bit. The pre-channel OR is
            // still computed independently per node here, which keeps the
            // differential tests meaningful.
            let mut frame = BitVec::from_fn(n, &clean_bit);
            let beepers = BitVec::from_fn(n, |v| actions[v] == Action::Beep);
            let protect = (!self_hearing_noisy).then_some(&beepers);
            apply_channel_sharded(
                &self.channel,
                graph,
                self.seed,
                round,
                self.shard_count,
                protect,
                &mut frame,
            );
            (0..n).map(|v| frame.get(v)).collect()
        };
        // Fault overlay, step 2: crashed nodes are deaf — their received
        // bit is forced to 0 *after* the channel, so feedback sees silence.
        // Adaptive deafening clears at the same point.
        for v in self.faults.crashed(round) {
            received[v] = false;
        }
        for &v in decision.deafen() {
            received[v] = false;
        }
        if pre_adaptive_active {
            self.last_activity = Some(round);
        }
        self.stats.rounds += 1;
        for (v, a) in actions.iter().enumerate() {
            match a {
                Action::Beep => {
                    self.stats.beeps += 1;
                    self.beeps_per_node[v] += 1;
                }
                Action::Listen => self.stats.listens += 1,
            }
        }
        if let Some(t) = &mut self.transcript {
            t.push(BitVec::from_fn(n, |v| actions[v] == Action::Beep));
        }
        Ok(received)
    }

    /// Executes one synchronous round from a beeper bitmap — the
    /// bit-parallel kernel. `beepers` has bit `v` set iff node `v` beeps;
    /// the returned bitmap has bit `v` set iff node `v` receives a `1`.
    ///
    /// Semantics (beeper set, received OR, noise, stats, transcript) are
    /// exactly [`run_round`](Self::run_round)'s; only the cost model
    /// differs. The round is computed in [`shard_count`](Self::shard_count)
    /// word-aligned shards, each owning a disjoint word range of the
    /// output and computed independently — serially, or on worker threads
    /// (see [`set_parallelism`](Self::set_parallelism)). Per shard the
    /// received OR is built from the beeper set's *set bits only* — each
    /// beeper scatters its CSR adjacency list (or ORs its precomputed
    /// adjacency bitmask row, see [`set_dense_adjacency`](Self::set_dense_adjacency)),
    /// switching to an early-exit neighborhood gather when beepers are
    /// dense — so a sparse-beeper round is `O(Σ deg(beeper) + n/64)`
    /// instead of the scalar path's `O(n + m)`. Under [`Noise::Bernoulli`]
    /// the channel is applied with geometric-skip batch sampling (`O(ε·n)`
    /// expected RNG draws) from per-shard counter-keyed streams; see the
    /// type-level determinism contract.
    ///
    /// ```
    /// use beep_bits::BitVec;
    /// use beep_net::{topology, BeepNetwork, Noise};
    ///
    /// let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
    /// // Node 2 beeps: itself and both neighbors receive a 1.
    /// let received = net.run_round_bitset(&BitVec::from_indices(5, [2])).unwrap();
    /// assert_eq!(received.to_string(), "01110");
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `beepers.len()` differs from
    /// the node count.
    pub fn run_round_bitset(&mut self, beepers: &BitVec) -> Result<BitVec, NetError> {
        let mut received = BitVec::zeros(self.graph.node_count());
        self.run_round_bitset_into(beepers, &mut received)?;
        Ok(received)
    }

    /// [`run_round_bitset`](Self::run_round_bitset) writing into a caller
    /// buffer: `received` is entirely overwritten (and reallocated only if
    /// its length is wrong), so a round loop reuses one allocation.
    /// [`run_frame`](Self::run_frame) and
    /// [`run_protocols`](Self::run_protocols) drive their per-round loops
    /// through this.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `beepers.len()` differs from
    /// the node count.
    pub fn run_round_bitset_into(
        &mut self,
        beepers: &BitVec,
        received: &mut BitVec,
    ) -> Result<(), NetError> {
        let n = self.graph.node_count();
        if beepers.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: beepers.len(),
            });
        }
        if matches!(self.kernel, AdjKernel::DensePending) {
            self.kernel = AdjKernel::dense(&self.graph);
        }
        if received.len() != n {
            *received = BitVec::zeros(n);
        }
        let round = self.stats.rounds as u64;
        // Fault overlay, step 1: compute the round's *effective* beeper
        // set before anything fans out into shards. Editing the bitmap
        // here keeps thread/shard invariance trivial (every shard reads
        // the same beepers) and leaves the channel's counter-keyed streams
        // untouched; an empty plan takes this branch never and the round
        // is byte-identical to a fault-free run. An adaptive policy makes
        // its per-round choice here too — once, from observables that are
        // identical at every thread and shard count — and its spam/mute
        // edits land on the same bitmap.
        let faulty: BitVec;
        let decision: RoundFaults;
        let mut pre_adaptive_count: Option<usize> = None;
        let beepers: &BitVec = if self.faults.is_empty() {
            decision = RoundFaults::none();
            beepers
        } else {
            let mut effective = beepers.clone();
            self.faults.apply_to_beepers(round, &mut effective);
            pre_adaptive_count = Some(effective.count_ones());
            decision = self.faults.decide(&AdversaryView {
                seed: self.seed,
                round,
                beepers: &effective,
                beeps_per_node: &self.beeps_per_node,
                last_activity: self.last_activity,
            });
            decision.apply_to_beepers(&mut effective);
            faulty = effective;
            &faulty
        };
        let beep_count = beepers.count_ones();
        let pre_adaptive_active = pre_adaptive_count.map_or(beep_count > 0, |c| c > 0);
        let rows = match &self.kernel {
            AdjKernel::Dense(rows) => Some(rows.as_slice()),
            _ => None,
        };
        let shape = match &self.kernel {
            AdjKernel::Implicit(shape) => Some(*shape),
            _ => None,
        };
        let gather = rows.is_none() && shape.is_none() && GATHER_DENSITY_FACTOR * beep_count >= n;
        // The implicit kernel reads the beeper words directly; only the
        // dense-row and scatter kernels walk the materialized beeper list.
        let beeper_list: Vec<usize> = if gather || shape.is_some() {
            Vec::new()
        } else {
            beepers.iter_ones().collect()
        };
        let ctx = ShardCtx {
            graph: &self.graph,
            rows,
            shape,
            csr: matches!(self.graph.repr(), AdjacencyRepr::Csr),
            beep_count,
            beepers,
            beeper_list: &beeper_list,
            protect: (!self.self_hearing_noisy).then_some(beepers),
            channel: &self.channel,
            seed: self.seed,
            round,
            shard_count: self.shard_count,
            round_state: self.channel.round_state(self.seed, round),
            gather,
        };
        // Word-aligned shard layout: shard `s` owns global words
        // `[s·per, (s+1)·per)`, i.e. bits `[s·per·64, …)`. The layout is a
        // pure function of `(n, shard_count)`, never of the thread count.
        let words = received.as_words_mut();
        let per = words.len().div_ceil(self.shard_count).max(1);
        // A thread per populated shard at most: spare threads would only
        // spawn, find an empty queue, and join.
        let threads = self
            .effective_threads()
            .min(words.len().div_ceil(per).max(1));
        if threads <= 1 {
            // Serial fast path: the OR is shard-agnostic (a pure function
            // of graph and beepers), so run it in one unsharded pass —
            // no per-shard adjacency re-walks — and only the noise, which
            // the determinism contract keys per (round, shard), is applied
            // shard by shard. Noiseless rounds skip that loop's body
            // entirely.
            ctx.or_into(0, n, words);
            for (s, chunk) in words.chunks_mut(per).enumerate() {
                let lo = s * per * 64;
                ctx.noise_into(s, lo, (lo + chunk.len() * 64).min(n), chunk);
            }
        } else {
            // Deal shards round-robin onto `threads` workers; the last
            // queue runs on the calling thread so a scope spawns T−1.
            let mut queues: Vec<Vec<(usize, &mut [u64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (s, chunk) in words.chunks_mut(per).enumerate() {
                queues[s % threads].push((s, chunk));
            }
            let own = queues.pop().expect("threads >= 2 queues");
            let run_queue = |queue: Vec<(usize, &mut [u64])>| {
                for (s, chunk) in queue {
                    let lo = s * per * 64;
                    ctx.compute(s, lo, (lo + chunk.len() * 64).min(n), chunk);
                }
            };
            std::thread::scope(|scope| {
                for queue in queues {
                    scope.spawn(|| run_queue(queue));
                }
                run_queue(own);
            });
        }
        // Fault overlay, step 2: crashed nodes are deaf — their received
        // bit is cleared *after* the channel, so feedback (and run_frame
        // outputs) see silence. Adaptive deafening clears at the same
        // point.
        self.faults.silence_crashed(round, received);
        decision.apply_to_received(received);
        if pre_adaptive_active {
            self.last_activity = Some(round);
        }
        self.stats.rounds += 1;
        self.stats.beeps += beep_count as u64;
        self.stats.listens += (n - beep_count) as u64;
        for u in beepers.iter_ones() {
            self.beeps_per_node[u] += 1;
        }
        if let Some(t) = &mut self.transcript {
            t.push(beepers.clone());
        }
        Ok(())
    }

    /// Runs a whole batch of rounds from per-node transmit frames:
    /// `frames[v]` is node `v`'s schedule (bit `i` set ⇒ beep in round
    /// `i`), `None` means listen throughout. Returns what each node heard,
    /// as one [`BitVec`] per node covering all rounds.
    ///
    /// The round count is inferred from the first transmitted frame (0 if
    /// every node listens); every transmitted frame must have that length.
    /// Use [`run_frame_of_len`](Self::run_frame_of_len) when silent batches
    /// must still consume rounds.
    ///
    /// This is the frame-level API the phase simulators run on: each round
    /// touches only the transmitting nodes to assemble the beeper bitmap,
    /// then goes through the sharded bitset kernel.
    ///
    /// ```
    /// use beep_bits::BitVec;
    /// use beep_net::{topology, BeepNetwork, Noise};
    ///
    /// let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
    /// // Node 0 transmits 101 over three rounds; 1 and 2 listen.
    /// let frames = vec![Some(BitVec::from_str_01("101").unwrap()), None, None];
    /// let heard = net.run_frame(&frames).unwrap();
    /// assert_eq!(heard[1].to_string(), "101"); // neighbor hears the frame
    /// assert_eq!(heard[2].to_string(), "000"); // out of range
    /// ```
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if two transmitted frames disagree on
    ///   length.
    pub fn run_frame(&mut self, frames: &[Option<BitVec>]) -> Result<Vec<BitVec>, NetError> {
        let rounds = frames.iter().flatten().map(BitVec::len).next().unwrap_or(0);
        self.run_frame_of_len(frames, rounds)
    }

    /// [`run_frame`](Self::run_frame) with an explicit round count: runs
    /// exactly `rounds` rounds even when every node listens (an all-silent
    /// phase still occupies its slot in the paper's round accounting).
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if a transmitted frame's length is not
    ///   `rounds`.
    pub fn run_frame_of_len(
        &mut self,
        frames: &[Option<BitVec>],
        rounds: usize,
    ) -> Result<Vec<BitVec>, NetError> {
        let mut heard = Vec::new();
        self.run_frame_into(frames, rounds, &mut heard)?;
        Ok(heard)
    }

    /// [`run_frame_of_len`](Self::run_frame_of_len) writing into a caller
    /// buffer: `heard` is resized to one `rounds`-bit string per node and
    /// entirely overwritten, reusing its allocations when the shapes
    /// already match. A phase loop that runs many frames back to back
    /// (e.g. the Algorithm 1 simulator) allocates its output once instead
    /// of `O(n)` strings per phase; the per-round `received` scratch is
    /// reused internally either way.
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if a transmitted frame's length is not
    ///   `rounds`.
    pub fn run_frame_into(
        &mut self,
        frames: &[Option<BitVec>],
        rounds: usize,
        heard: &mut Vec<BitVec>,
    ) -> Result<(), NetError> {
        let n = self.graph.node_count();
        if frames.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: frames.len(),
            });
        }
        let mut transmitters: Vec<(usize, &BitVec)> = Vec::new();
        for (v, frame) in frames.iter().enumerate() {
            if let Some(f) = frame {
                if f.len() != rounds {
                    return Err(NetError::FrameLength {
                        node: v,
                        expected: rounds,
                        actual: f.len(),
                    });
                }
                transmitters.push((v, f));
            }
        }
        heard.truncate(n);
        for h in heard.iter_mut() {
            if h.len() == rounds {
                h.clear();
            } else {
                *h = BitVec::zeros(rounds);
            }
        }
        heard.resize_with(n, || BitVec::zeros(rounds));
        let mut beepers = BitVec::zeros(n);
        let mut received = BitVec::zeros(n);
        for i in 0..rounds {
            beepers.clear();
            for &(v, f) in &transmitters {
                if f.get(i) {
                    beepers.set(v, true);
                }
            }
            self.run_round_bitset_into(&beepers, &mut received)?;
            for v in received.iter_ones() {
                heard[v].set(i, true);
            }
        }
        Ok(())
    }

    /// Fault-overlay step 1 for one round, applied in place to an owned
    /// effective-beeper bitmap: static fault overrides, then the adaptive
    /// decision (from the same pre-fan-out [`AdversaryView`] every kernel
    /// builds), then its spam/mute edits. Returns the round's decision and
    /// whether any node effectively beeped *before* adaptive additions
    /// (what `last_activity` tracks). The batched frame driver runs this
    /// round-sequentially so its transcripts match the per-round kernels
    /// bit for bit.
    fn overlay_step1(&self, effective: &mut BitVec, round: u64) -> (RoundFaults, bool) {
        if self.faults.is_empty() {
            return (RoundFaults::none(), effective.count_ones() > 0);
        }
        self.faults.apply_to_beepers(round, effective);
        let pre_adaptive_active = effective.count_ones() > 0;
        let decision = self.faults.decide(&AdversaryView {
            seed: self.seed,
            round,
            beepers: effective,
            beeps_per_node: &self.beeps_per_node,
            last_activity: self.last_activity,
        });
        decision.apply_to_beepers(effective);
        (decision, pre_adaptive_active)
    }

    /// [`run_frame_of_len`](Self::run_frame_of_len) through the
    /// cache-blocked batched kernel: the whole transmit schedule is driven
    /// in blocks of [`FRAME_BLOCK_ROUNDS`] rounds, and within a block each
    /// shard computes *all* its rounds back to back. A shard's output
    /// words and the block's beeper bitmaps stay hot in L2 across the
    /// block, and — decisively for large sparse graphs — each shard
    /// touches the adjacency once per block instead of once per round.
    ///
    /// Byte-identical to [`run_frame`](Self::run_frame): rounds are
    /// prepared (fault overlay, adaptive decisions, stats, transcript)
    /// sequentially in submission order before the block fans out, noise
    /// stays keyed by `(seed, round, shard)`, and the block size is *not*
    /// part of the determinism tuple. Pinned by the batched oracle tests
    /// and golden FNV fingerprints.
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if a transmitted frame's length is not
    ///   `rounds`.
    pub fn run_frames_batched(
        &mut self,
        frames: &[Option<BitVec>],
        rounds: usize,
    ) -> Result<Vec<BitVec>, NetError> {
        let mut heard = Vec::new();
        self.run_frames_batched_into(frames, rounds, &mut heard)?;
        Ok(heard)
    }

    /// [`run_frames_batched`](Self::run_frames_batched) writing into a
    /// caller buffer, with the same reuse contract as
    /// [`run_frame_into`](Self::run_frame_into).
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if a transmitted frame's length is not
    ///   `rounds`.
    pub fn run_frames_batched_into(
        &mut self,
        frames: &[Option<BitVec>],
        rounds: usize,
        heard: &mut Vec<BitVec>,
    ) -> Result<(), NetError> {
        let n = self.graph.node_count();
        if frames.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: frames.len(),
            });
        }
        let mut transmitters: Vec<(usize, &BitVec)> = Vec::new();
        for (v, frame) in frames.iter().enumerate() {
            if let Some(f) = frame {
                if f.len() != rounds {
                    return Err(NetError::FrameLength {
                        node: v,
                        expected: rounds,
                        actual: f.len(),
                    });
                }
                transmitters.push((v, f));
            }
        }
        heard.truncate(n);
        for h in heard.iter_mut() {
            if h.len() == rounds {
                h.clear();
            } else {
                *h = BitVec::zeros(rounds);
            }
        }
        heard.resize_with(n, || BitVec::zeros(rounds));
        if matches!(self.kernel, AdjKernel::DensePending) {
            self.kernel = AdjKernel::dense(&self.graph);
        }
        let shape = match &self.kernel {
            AdjKernel::Implicit(shape) => Some(*shape),
            _ => None,
        };
        let csr = matches!(self.graph.repr(), AdjacencyRepr::Csr);
        // Shard layout: identical to the per-round kernel's — a pure
        // function of (n, shard_count), so the (round, shard) noise cells
        // line up exactly.
        let words_len = n.div_ceil(64);
        let per = words_len.div_ceil(self.shard_count).max(1);
        let num_shards = words_len.div_ceil(per);
        let mut slab: Vec<u64> = Vec::new();
        let mut base = 0usize;
        while base < rounds {
            let block = FRAME_BLOCK_ROUNDS.min(rounds - base);
            // Sequential pre-pass: assemble each round's effective beeper
            // bitmap and run everything order-dependent (fault overlay,
            // adaptive decisions, stats, energy, transcript, activity
            // tracking) exactly as the round-by-round driver would.
            let mut block_beepers: Vec<BitVec> = Vec::with_capacity(block);
            let mut decisions: Vec<RoundFaults> = Vec::with_capacity(block);
            let mut round_meta: Vec<(u64, u64, usize)> = Vec::with_capacity(block);
            for i in 0..block {
                let mut eff = BitVec::zeros(n);
                for &(v, f) in &transmitters {
                    if f.get(base + i) {
                        eff.set(v, true);
                    }
                }
                let round = self.stats.rounds as u64;
                let (decision, pre_adaptive_active) = self.overlay_step1(&mut eff, round);
                let beep_count = eff.count_ones();
                if pre_adaptive_active {
                    self.last_activity = Some(round);
                }
                self.stats.rounds += 1;
                self.stats.beeps += beep_count as u64;
                self.stats.listens += (n - beep_count) as u64;
                for u in eff.iter_ones() {
                    self.beeps_per_node[u] += 1;
                }
                if let Some(t) = &mut self.transcript {
                    t.push(eff.clone());
                }
                round_meta.push((
                    round,
                    self.channel.round_state(self.seed, round),
                    beep_count,
                ));
                decisions.push(decision);
                block_beepers.push(eff);
            }
            let rows = match &self.kernel {
                AdjKernel::Dense(rows) => Some(rows.as_slice()),
                _ => None,
            };
            let beeper_lists: Vec<Vec<usize>> = block_beepers
                .iter()
                .enumerate()
                .map(|(i, eff)| {
                    let gather = rows.is_none()
                        && shape.is_none()
                        && GATHER_DENSITY_FACTOR * round_meta[i].2 >= n;
                    if gather || shape.is_some() {
                        Vec::new()
                    } else {
                        eff.iter_ones().collect()
                    }
                })
                .collect();
            let ctxs: Vec<ShardCtx> = (0..block)
                .map(|i| ShardCtx {
                    graph: &self.graph,
                    rows,
                    shape,
                    csr,
                    beep_count: round_meta[i].2,
                    beepers: &block_beepers[i],
                    beeper_list: &beeper_lists[i],
                    protect: (!self.self_hearing_noisy).then_some(&block_beepers[i]),
                    channel: &self.channel,
                    seed: self.seed,
                    round: round_meta[i].0,
                    shard_count: self.shard_count,
                    round_state: round_meta[i].1,
                    gather: rows.is_none()
                        && shape.is_none()
                        && GATHER_DENSITY_FACTOR * round_meta[i].2 >= n,
                })
                .collect();
            // Shard-major main pass over one flat slab: shard `s` owns a
            // contiguous `len_s × block` run of words, so worker threads
            // write disjoint slices and a shard's rounds are adjacent in
            // memory. Per (shard, round) cell the computation is exactly
            // `ShardCtx::compute` — the same OR, the same noise stream.
            slab.clear();
            slab.resize(words_len * block, 0);
            let threads = self.effective_threads().min(num_shards.max(1));
            let mut queues: Vec<Vec<(usize, &mut [u64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (s, shard_slab) in slab.chunks_mut(per * block).enumerate() {
                queues[s % threads].push((s, shard_slab));
            }
            let run_queue = |queue: Vec<(usize, &mut [u64])>| {
                for (s, shard_slab) in queue {
                    let len_s = shard_slab.len() / block;
                    let lo = s * per * 64;
                    let hi = (lo + len_s * 64).min(n);
                    for (i, seg) in shard_slab.chunks_mut(len_s).enumerate() {
                        ctxs[i].compute(s, lo, hi, seg);
                    }
                }
            };
            if threads <= 1 {
                for queue in queues {
                    run_queue(queue);
                }
            } else {
                let own = queues.pop().expect("threads >= 2 queues");
                std::thread::scope(|scope| {
                    for queue in queues {
                        scope.spawn(|| run_queue(queue));
                    }
                    run_queue(own);
                });
            }
            // Post-pass: scatter the slab into per-node heard strings and
            // apply fault-overlay step 2 (crash deafness + adaptive
            // deafening) per round — the same post-channel point as the
            // per-round kernels.
            for (s, shard_slab) in slab.chunks(per * block).enumerate() {
                let len_s = shard_slab.len() / block;
                let lo = s * per * 64;
                for (i, seg) in shard_slab.chunks(len_s).enumerate() {
                    for (wi, &word) in seg.iter().enumerate() {
                        let word_base = lo + wi * 64;
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            heard[word_base + b].set(base + i, true);
                        }
                    }
                }
            }
            for (i, decision) in decisions.iter().enumerate() {
                let round = round_meta[i].0;
                for v in self.faults.crashed(round) {
                    heard[v].set(base + i, false);
                }
                for &v in decision.deafen() {
                    heard[v].set(base + i, false);
                }
            }
            base += block;
        }
        Ok(())
    }

    /// Drives one [`BeepProtocol`] instance per node until all report done
    /// or the round budget runs out. Returns the number of rounds executed.
    ///
    /// # Contract
    ///
    /// Done-ness is sampled only at round boundaries, and only the
    /// conjunction over *all* nodes stops the run: a protocol whose
    /// [`is_done`](BeepProtocol::is_done) already returns `true` keeps
    /// receiving [`act`](BeepProtocol::act) and
    /// [`feedback`](BeepProtocol::feedback) every remaining round (real
    /// beeping devices cannot leave the network either — a "done" node
    /// still occupies the channel, and several protocols in this workspace
    /// rely on done nodes continuing to relay). Pinned by a regression
    /// test.
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `protocols.len()` differs from the
    ///   node count.
    /// * [`NetError::RoundBudgetExhausted`] if some protocol never
    ///   finishes.
    pub fn run_protocols(
        &mut self,
        protocols: &mut [Box<dyn BeepProtocol>],
        max_rounds: usize,
    ) -> Result<usize, NetError> {
        let n = self.graph.node_count();
        if protocols.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: protocols.len(),
            });
        }
        let mut beepers = BitVec::zeros(n);
        let mut received = BitVec::zeros(n);
        for round in 0..max_rounds {
            if protocols.iter().all(|p| p.is_done()) {
                return Ok(round);
            }
            for (v, p) in protocols.iter_mut().enumerate() {
                beepers.set(v, p.act(round) == Action::Beep);
            }
            self.run_round_bitset_into(&beepers, &mut received)?;
            for (v, p) in protocols.iter_mut().enumerate() {
                p.feedback(round, received.get(v));
            }
        }
        if protocols.iter().all(|p| p.is_done()) {
            Ok(max_rounds)
        } else {
            Err(NetError::RoundBudgetExhausted { budget: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn all_listen(n: usize) -> Vec<Action> {
        vec![Action::Listen; n]
    }

    #[test]
    fn silence_is_heard_as_silence() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let heard = net.run_round(&all_listen(5)).unwrap();
        assert!(heard.iter().all(|&h| !h));
    }

    #[test]
    fn single_beep_reaches_exactly_neighbors() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(5);
        actions[2] = Action::Beep;
        let heard = net.run_round(&actions).unwrap();
        // Node 2 "receives" its own beep; 1 and 3 hear it; 0 and 4 don't.
        assert_eq!(heard, vec![false, true, true, true, false]);
    }

    #[test]
    fn simultaneous_beeps_are_indistinguishable_from_one() {
        // Carrier sensing only: the listener cannot count beepers.
        let g = topology::star(4).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut one = all_listen(4);
        one[1] = Action::Beep;
        let heard_one = net.run_round(&one).unwrap()[0];
        let mut many = all_listen(4);
        many[1] = Action::Beep;
        many[2] = Action::Beep;
        many[3] = Action::Beep;
        let heard_many = net.run_round(&many).unwrap()[0];
        assert_eq!(heard_one, heard_many);
        assert!(heard_one);
    }

    #[test]
    fn beeping_node_does_not_hear_distant_beeps() {
        // A beeping node's received bit is its own 1, regardless of others.
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let heard = net
            .run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        assert_eq!(heard, vec![true, true, true]);
    }

    #[test]
    fn action_count_mismatch_rejected() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(
            net.run_round(&all_listen(2)),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut net = BeepNetwork::new(topology::cycle(4).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(4);
        actions[0] = Action::Beep;
        net.run_round(&actions).unwrap();
        net.run_round(&all_listen(4)).unwrap();
        let s = net.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.beeps, 1);
        assert_eq!(s.listens, 7);
        assert!((s.beeps_per_round() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_node_energy_accounting() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        assert_eq!(net.beeps_by_node(), &[2, 0, 1]);
        assert_eq!(net.stats().beeps, 3);
    }

    #[test]
    fn determinism_same_seed_same_noise() {
        let run = |seed| {
            let mut net =
                BeepNetwork::new(topology::complete(6).unwrap(), Noise::bernoulli(0.3), seed);
            let mut actions = all_listen(6);
            actions[0] = Action::Beep;
            (0..20)
                .map(|_| net.run_round(&actions).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ somewhere");
    }

    #[test]
    fn noise_flips_listeners_at_rate_epsilon() {
        // Nobody beeps; over many rounds each listener should hear a phantom
        // beep at rate ≈ ε.
        let n = 10;
        let rounds = 2000;
        let mut net = BeepNetwork::new(topology::complete(n).unwrap(), Noise::bernoulli(0.25), 5);
        let mut phantom = 0usize;
        for _ in 0..rounds {
            phantom += net
                .run_round(&all_listen(n))
                .unwrap()
                .iter()
                .filter(|&&h| h)
                .count();
        }
        let rate = phantom as f64 / (n * rounds) as f64;
        assert!((rate - 0.25).abs() < 0.02, "phantom rate {rate}");
    }

    #[test]
    fn self_hearing_noise_flag() {
        // With noisy self-hearing (default), a solo beeper's own bit flips
        // at rate ε; with the flag off it never does.
        let rounds = 2000;
        let beep_only = [Action::Beep];
        let g = || topology::complete(1).unwrap();

        let mut noisy = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        let flips = (0..rounds)
            .filter(|_| !noisy.run_round(&beep_only).unwrap()[0])
            .count();
        let rate = flips as f64 / rounds as f64;
        assert!((rate - 0.3).abs() < 0.04, "self-flip rate {rate}");

        let mut clean = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        clean.set_self_hearing_noisy(false);
        for _ in 0..rounds {
            assert!(clean.run_round(&beep_only).unwrap()[0]);
        }
    }

    #[test]
    fn transcript_records_beepers() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.record_transcript();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        net.run_round(&[Action::Listen, Action::Listen, Action::Beep])
            .unwrap();
        let t = net.transcript().unwrap();
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.round(0).to_string(), "100");
        assert_eq!(t.round(1).to_string(), "001");
    }

    // A trivial protocol for run_protocols: node `id` beeps in round `id`
    // then finishes; everyone records what they heard.
    struct OneShot {
        id: usize,
        heard: Vec<bool>,
        done_after: usize,
    }
    impl BeepProtocol for OneShot {
        fn act(&mut self, round: usize) -> Action {
            if round == self.id {
                Action::Beep
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: usize, received: bool) {
            self.heard.push(received);
        }
        fn is_done(&self) -> bool {
            self.heard.len() >= self.done_after
        }
    }

    #[test]
    fn run_protocols_drives_until_done() {
        let g = topology::path(3).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..3)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: 3,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let rounds = net.run_protocols(&mut protos, 100).unwrap();
        assert_eq!(rounds, 3);
        assert_eq!(net.stats().rounds, 3);
    }

    #[test]
    fn run_round_bitset_matches_scalar_semantics() {
        // Spot-check on a path; the exhaustive cross-topology oracle lives
        // in tests/bitset_oracle.rs.
        let g = topology::path(5).unwrap();
        let mut scalar = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        let mut bitset = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut actions = all_listen(5);
        actions[2] = Action::Beep;
        let beepers = BitVec::from_indices(5, [2]);
        let via_scalar = scalar.run_round(&actions).unwrap();
        let via_bitset = bitset.run_round_bitset(&beepers).unwrap();
        assert_eq!(via_scalar, via_bitset.iter_bits().collect::<Vec<_>>());
        assert_eq!(scalar.stats(), bitset.stats());
        assert_eq!(scalar.beeps_by_node(), bitset.beeps_by_node());
    }

    #[test]
    fn run_round_bitset_rejects_wrong_length() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(
            net.run_round_bitset(&BitVec::zeros(2)),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn run_frame_transmits_frames_bit_by_bit() {
        // Node 0 sends 101, node 2 sends 011 on a path 0-1-2; check what
        // node 1 (hearing both) and the endpoints reconstruct.
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let frames = vec![
            Some(BitVec::from_indices(3, [0, 2])),
            None,
            Some(BitVec::from_indices(3, [1, 2])),
        ];
        let heard = net.run_frame(&frames).unwrap();
        assert_eq!(heard[0].to_string(), "101"); // own beeps
        assert_eq!(heard[1].to_string(), "111"); // OR of both neighbors
        assert_eq!(heard[2].to_string(), "011"); // own beeps
        assert_eq!(net.stats().rounds, 3);
        assert_eq!(net.stats().beeps, 4);
    }

    #[test]
    fn run_frame_infers_zero_rounds_when_all_silent() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let heard = net.run_frame(&[None, None, None]).unwrap();
        assert!(heard.iter().all(BitVec::is_empty));
        assert_eq!(net.stats().rounds, 0);
        // The explicit-length variant still burns the rounds.
        let heard = net.run_frame_of_len(&[None, None, None], 4).unwrap();
        assert!(heard.iter().all(|h| h.len() == 4 && h.count_ones() == 0));
        assert_eq!(net.stats().rounds, 4);
    }

    #[test]
    fn run_frame_rejects_mismatched_frames() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let frames = vec![
            Some(BitVec::zeros(3)),
            None,
            Some(BitVec::zeros(2)), // wrong length
        ];
        assert_eq!(
            net.run_frame(&frames),
            Err(NetError::FrameLength {
                node: 2,
                expected: 3,
                actual: 2
            })
        );
        assert_eq!(
            net.run_frame(&[None, None]),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_noiseless_results() {
        // Noiseless output is a pure function of (graph, beepers): shard
        // layout and threading must be invisible.
        let g = topology::grid(9, 9).unwrap(); // 81 nodes: 2 words
        let beepers = BitVec::from_indices(81, [0, 13, 64, 80]);
        let mut reference = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        let expected = reference.run_round_bitset(&beepers).unwrap();
        for shards in [1, 2, 3, 8, 64] {
            for threads in [1, 2, 4, 8] {
                let mut net = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
                net.set_shard_count(shards);
                net.set_parallelism(threads);
                assert_eq!(
                    net.run_round_bitset(&beepers).unwrap(),
                    expected,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_noisy_results() {
        // The determinism contract: with the shard count fixed, the noisy
        // transcript is identical for every parallelism setting.
        let g = topology::cycle(300).unwrap();
        let beepers = BitVec::from_indices(300, [5, 77, 200]);
        let run = |threads: usize| {
            let mut net = BeepNetwork::new(g.clone(), Noise::bernoulli(0.3), 42);
            net.set_parallelism(threads);
            (0..12)
                .map(|_| net.run_round_bitset(&beepers).unwrap())
                .collect::<Vec<_>>()
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn gather_and_scatter_strategies_agree() {
        // Force both sides of the per-round density heuristic on the same
        // beeper set by driving the density across the threshold.
        let g = topology::grid(8, 8).unwrap();
        let n = 64;
        for ones in [1, 3, n / 4, n] {
            let beepers = BitVec::from_fn(n, |v| v % (n / ones).max(1) == 0);
            let mut sparse = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
            sparse.set_dense_adjacency(false);
            let mut dense = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
            dense.set_dense_adjacency(true);
            let mut scalar = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
            let actions: Vec<Action> = (0..n).map(|v| Action::from_bit(beepers.get(v))).collect();
            let expected: BitVec = BitVec::from_bools(&scalar.run_round(&actions).unwrap());
            assert_eq!(sparse.run_round_bitset(&beepers).unwrap(), expected);
            assert_eq!(dense.run_round_bitset(&beepers).unwrap(), expected);
        }
    }

    #[test]
    fn run_round_bitset_into_reuses_and_resizes() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let beepers = BitVec::from_indices(5, [2]);
        // Wrong-length buffer is replaced; stale contents are overwritten.
        let mut received = BitVec::ones(3);
        net.run_round_bitset_into(&beepers, &mut received).unwrap();
        assert_eq!(received.to_string(), "01110");
        received = BitVec::ones(5);
        net.run_round_bitset_into(&beepers, &mut received).unwrap();
        assert_eq!(received.to_string(), "01110");
    }

    #[test]
    fn run_frame_into_matches_run_frame_and_reuses_buffers() {
        let g = topology::path(3).unwrap();
        let frames = vec![
            Some(BitVec::from_indices(3, [0, 2])),
            None,
            Some(BitVec::from_indices(3, [1, 2])),
        ];
        let mut fresh = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        let expected = fresh.run_frame(&frames).unwrap();
        let mut reused = BeepNetwork::new(g, Noise::Noiseless, 0);
        // Pre-populate with wrong shapes and stale bits.
        let mut heard = vec![BitVec::ones(3), BitVec::ones(7)];
        reused.run_frame_into(&frames, 3, &mut heard).unwrap();
        assert_eq!(heard, expected);
        // Second run with now-matching shapes must also fully overwrite.
        reused.run_frame_into(&frames, 3, &mut heard).unwrap();
        assert_eq!(heard, expected);
    }

    #[test]
    fn parallelism_and_shard_count_knobs_round_trip() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(net.parallelism(), 0, "auto by default");
        net.set_parallelism(4);
        assert_eq!(net.parallelism(), 4);
        let default_shards = net.shard_count();
        assert!(default_shards >= 1);
        net.set_shard_count(3);
        assert_eq!(net.shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shard_count_rejected() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.set_shard_count(0);
    }

    #[test]
    fn empty_graph_round_is_a_no_op() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let mut net = BeepNetwork::new(g, Noise::bernoulli(0.3), 1);
        net.set_parallelism(4);
        let received = net.run_round_bitset(&BitVec::zeros(0)).unwrap();
        assert!(received.is_empty());
        assert_eq!(net.stats().rounds, 1);
    }

    #[test]
    fn dense_and_sparse_kernels_agree() {
        let g = topology::grid(4, 4).unwrap();
        let beepers = BitVec::from_indices(16, [0, 5, 10, 15]);
        let mut dense = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        dense.set_dense_adjacency(true);
        let mut sparse = BeepNetwork::new(g, Noise::Noiseless, 0);
        sparse.set_dense_adjacency(false);
        assert_eq!(
            dense.run_round_bitset(&beepers).unwrap(),
            sparse.run_round_bitset(&beepers).unwrap()
        );
    }

    // Regression: run_protocols keeps driving act()/feedback() on nodes
    // whose is_done() already returns true, until *all* nodes are done
    // (the documented contract). Counters are shared out through Rc so the
    // boxed trait objects can be inspected after the run.
    struct DoneButCounting {
        rounds_to_run: usize,
        feedbacks: std::rc::Rc<std::cell::Cell<usize>>,
        acts_while_done: std::rc::Rc<std::cell::Cell<usize>>,
    }
    impl BeepProtocol for DoneButCounting {
        fn act(&mut self, _round: usize) -> Action {
            if self.is_done() {
                self.acts_while_done.set(self.acts_while_done.get() + 1);
            }
            Action::Listen
        }
        fn feedback(&mut self, _round: usize, _received: bool) {
            self.feedbacks.set(self.feedbacks.get() + 1);
        }
        fn is_done(&self) -> bool {
            self.feedbacks.get() >= self.rounds_to_run
        }
    }

    #[test]
    fn run_protocols_keeps_driving_done_nodes() {
        use std::cell::Cell;
        use std::rc::Rc;
        // Node 0 is done after 1 round, node 1 after 5: node 0 must still
        // be asked to act (and given feedback) in rounds 1..4.
        type Counters = (Rc<Cell<usize>>, Rc<Cell<usize>>);
        let counters: Vec<Counters> = (0..2).map(|_| Default::default()).collect();
        let mut protos: Vec<Box<dyn BeepProtocol>> = counters
            .iter()
            .zip([1usize, 5])
            .map(|((feedbacks, acts_while_done), rounds_to_run)| {
                Box::new(DoneButCounting {
                    rounds_to_run,
                    feedbacks: Rc::clone(feedbacks),
                    acts_while_done: Rc::clone(acts_while_done),
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let g = topology::path(2).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let rounds = net.run_protocols(&mut protos, 100).unwrap();
        assert_eq!(rounds, 5);
        let (node0_feedbacks, node0_acts_while_done) = &counters[0];
        assert_eq!(
            node0_feedbacks.get(),
            5,
            "done node stopped receiving feedback"
        );
        assert_eq!(
            node0_acts_while_done.get(),
            4,
            "done node stopped being asked to act"
        );
        assert_eq!(counters[1].0.get(), 5);
    }

    #[test]
    fn fault_plan_overrides_actions_in_both_kernels() {
        use crate::faults::{FaultKind, FaultPlan};
        // Path 0-1-2-3-4: node 1 spams, node 3 is mute, node 4 crashes in
        // round 1. Submissions: node 3 and node 4 beep every round.
        let plan = FaultPlan::try_from_assignments(vec![
            (1, FaultKind::ByzantineSpam),
            (3, FaultKind::ByzantineMute),
            (4, FaultKind::Crash { round: 1 }),
        ])
        .unwrap();
        let g = topology::path(5).unwrap();
        let actions = [
            Action::Listen,
            Action::Listen,
            Action::Listen,
            Action::Beep,
            Action::Beep,
        ];
        let beepers = BitVec::from_indices(5, [3, 4]);
        let mut scalar = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        scalar.set_fault_plan(plan.clone()).unwrap();
        let mut bitset = BeepNetwork::new(g, Noise::Noiseless, 0);
        bitset.set_fault_plan(plan).unwrap();
        // Round 0: effective beepers {1 (spam), 4 (still healthy)}.
        // Received OR: 0,1,2 hear the spammer; 3,4 hear node 4.
        let r0 = scalar.run_round(&actions).unwrap();
        assert_eq!(r0, vec![true, true, true, true, true]);
        assert_eq!(
            bitset.run_round_bitset(&beepers).unwrap(),
            BitVec::from_bools(&r0)
        );
        // Round 1: node 4 has crashed — effective beepers {1}; node 4 is
        // also deaf, so despite neighbor 3 hearing the silence too, node 4
        // must read 0 no matter what.
        let r1 = scalar.run_round(&actions).unwrap();
        assert_eq!(r1, vec![true, true, true, false, false]);
        assert_eq!(
            bitset.run_round_bitset(&beepers).unwrap(),
            BitVec::from_bools(&r1)
        );
        assert_eq!(scalar.stats(), bitset.stats());
        assert_eq!(scalar.beeps_by_node(), bitset.beeps_by_node());
        // Energy counts effective actions: the spammer paid 2 beeps, the
        // mute node 0, the crasher only its healthy round.
        assert_eq!(scalar.beeps_by_node(), &[0, 2, 0, 0, 1]);
    }

    #[test]
    fn crashed_node_feedback_sees_silence_in_run_protocols() {
        use crate::faults::{FaultKind, FaultPlan};
        use std::cell::RefCell;
        use std::rc::Rc;
        // Complete graph, node 0 beeps every round; node 2 crashes at
        // round 2 and must stop hearing it from then on.
        struct Recorder {
            id: usize,
            heard: Rc<RefCell<Vec<bool>>>,
        }
        impl BeepProtocol for Recorder {
            fn act(&mut self, _round: usize) -> Action {
                if self.id == 0 {
                    Action::Beep
                } else {
                    Action::Listen
                }
            }
            fn feedback(&mut self, _round: usize, received: bool) {
                self.heard.borrow_mut().push(received);
            }
            fn is_done(&self) -> bool {
                self.heard.borrow().len() >= 5
            }
        }
        let heard: Vec<Rc<RefCell<Vec<bool>>>> = (0..3).map(|_| Rc::default()).collect();
        let mut protos: Vec<Box<dyn BeepProtocol>> = heard
            .iter()
            .enumerate()
            .map(|(id, h)| {
                Box::new(Recorder {
                    id,
                    heard: Rc::clone(h),
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let mut net = BeepNetwork::new(topology::complete(3).unwrap(), Noise::Noiseless, 0);
        net.set_fault_plan(
            FaultPlan::try_from_assignments(vec![(2, FaultKind::Crash { round: 2 })]).unwrap(),
        )
        .unwrap();
        net.run_protocols(&mut protos, 10).unwrap();
        assert_eq!(*heard[1].borrow(), vec![true; 5], "healthy listener");
        assert_eq!(
            *heard[2].borrow(),
            vec![true, true, false, false, false],
            "crashed node goes deaf at its round"
        );
    }

    #[test]
    fn fault_plan_out_of_range_rejected_and_empty_plan_is_identity() {
        use crate::faults::{FaultKind, FaultPlan};
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let err = net
            .set_fault_plan(
                FaultPlan::try_from_assignments(vec![(3, FaultKind::ByzantineSpam)]).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::InvalidFaultPlan { .. }), "{err}");
        assert!(net.fault_plan().is_empty(), "rejected plan not installed");
        // Installing and clearing a plan round-trips.
        net.set_fault_plan(
            FaultPlan::try_from_assignments(vec![(1, FaultKind::ByzantineMute)]).unwrap(),
        )
        .unwrap();
        assert_eq!(net.fault_plan().len(), 1);
        net.set_fault_plan(FaultPlan::none()).unwrap();
        assert!(net.fault_plan().is_empty());
    }

    #[test]
    fn empty_fault_plan_leaves_noisy_transcripts_byte_identical() {
        use crate::faults::FaultPlan;
        let g = topology::cycle(200).unwrap();
        let beepers = BitVec::from_indices(200, [0, 63, 130]);
        let mut plain = BeepNetwork::new(g.clone(), Noise::bernoulli(0.2), 9);
        let mut with_empty = BeepNetwork::new(g, Noise::bernoulli(0.2), 9);
        with_empty.set_fault_plan(FaultPlan::none()).unwrap();
        for _ in 0..8 {
            assert_eq!(
                plain.run_round_bitset(&beepers).unwrap(),
                with_empty.run_round_bitset(&beepers).unwrap()
            );
        }
    }

    #[test]
    fn run_protocols_budget_error() {
        let g = topology::path(2).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..2)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: usize::MAX,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        assert_eq!(
            net.run_protocols(&mut protos, 5),
            Err(NetError::RoundBudgetExhausted { budget: 5 })
        );
    }
}
