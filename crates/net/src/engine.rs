//! The synchronous round engine.

use crate::error::NetError;
use crate::graph::Graph;
use crate::node::{Action, BeepProtocol};
use crate::noise::Noise;
use crate::trace::{NetStats, Transcript};
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A beeping network: a graph, a channel model, and a seeded RNG.
///
/// The engine implements the models of Section 1.1 exactly:
///
/// 1. every node submits an [`Action`] for the round;
/// 2. a node receives `1` iff it beeped itself or at least one neighbor
///    beeped (Section 1.5's "receives" convention);
/// 3. under [`Noise::Bernoulli`], each node's received bit is then flipped
///    independently with probability `ε`.
///
/// Per the paper's footnote 2, a beeping node's own `1` is flipped too by
/// default, so the engine matches the analysis verbatim; call
/// [`set_self_hearing_noisy(false)`](Self::set_self_hearing_noisy) for the
/// (easier) realistic semantics where a node knows it beeped.
#[derive(Debug)]
pub struct BeepNetwork {
    graph: Graph,
    noise: Noise,
    rng: StdRng,
    stats: NetStats,
    beeps_per_node: Vec<u64>,
    self_hearing_noisy: bool,
    transcript: Option<Transcript>,
}

impl BeepNetwork {
    /// Creates a network over `graph` with the given channel and RNG seed.
    /// Runs are fully deterministic in `(graph, noise, seed, actions)`.
    #[must_use]
    pub fn new(graph: Graph, noise: Noise, seed: u64) -> Self {
        let beeps_per_node = vec![0; graph.node_count()];
        BeepNetwork {
            graph,
            noise,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            beeps_per_node,
            self_hearing_noisy: true,
            transcript: None,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The channel model.
    #[must_use]
    pub fn noise(&self) -> Noise {
        self.noise
    }

    /// Cumulative round/energy statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-node energy: how many beeps each node has emitted so far. The
    /// natural fairness/battery metric for the weak devices the beeping
    /// model targets.
    #[must_use]
    pub fn beeps_by_node(&self) -> &[u64] {
        &self.beeps_per_node
    }

    /// Chooses whether a beeping node's own received `1` passes through the
    /// noisy channel (default `true`, matching the paper's footnote 2).
    pub fn set_self_hearing_noisy(&mut self, noisy: bool) {
        self.self_hearing_noisy = noisy;
    }

    /// Starts recording a [`Transcript`] of beep bitmaps from the next
    /// round on.
    pub fn record_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Transcript::new());
        }
    }

    /// The transcript recorded so far, if recording was enabled.
    #[must_use]
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// Executes one synchronous round and returns the bit each node
    /// receives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `actions.len()` differs from
    /// the node count.
    pub fn run_round(&mut self, actions: &[Action]) -> Result<Vec<bool>, NetError> {
        let n = self.graph.node_count();
        if actions.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: actions.len(),
            });
        }
        let mut received = Vec::with_capacity(n);
        for v in 0..n {
            let clean = match actions[v] {
                Action::Beep => true,
                Action::Listen => self
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| actions[u] == Action::Beep),
            };
            let noisy_bit = if actions[v] == Action::Beep && !self.self_hearing_noisy {
                clean
            } else {
                self.noise.apply(clean, &mut self.rng)
            };
            received.push(noisy_bit);
        }
        self.stats.rounds += 1;
        for (v, a) in actions.iter().enumerate() {
            match a {
                Action::Beep => {
                    self.stats.beeps += 1;
                    self.beeps_per_node[v] += 1;
                }
                Action::Listen => self.stats.listens += 1,
            }
        }
        if let Some(t) = &mut self.transcript {
            t.push(BitVec::from_fn(n, |v| actions[v] == Action::Beep));
        }
        Ok(received)
    }

    /// Drives one [`BeepProtocol`] instance per node until all report done
    /// or the round budget runs out. Returns the number of rounds executed.
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `protocols.len()` differs from the
    ///   node count.
    /// * [`NetError::RoundBudgetExhausted`] if some protocol never
    ///   finishes.
    pub fn run_protocols(
        &mut self,
        protocols: &mut [Box<dyn BeepProtocol>],
        max_rounds: usize,
    ) -> Result<usize, NetError> {
        let n = self.graph.node_count();
        if protocols.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: protocols.len(),
            });
        }
        let mut actions = vec![Action::Listen; n];
        for round in 0..max_rounds {
            if protocols.iter().all(|p| p.is_done()) {
                return Ok(round);
            }
            for (v, p) in protocols.iter_mut().enumerate() {
                actions[v] = p.act(round);
            }
            let received = self.run_round(&actions)?;
            for (v, p) in protocols.iter_mut().enumerate() {
                p.feedback(round, received[v]);
            }
        }
        if protocols.iter().all(|p| p.is_done()) {
            Ok(max_rounds)
        } else {
            Err(NetError::RoundBudgetExhausted { budget: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn all_listen(n: usize) -> Vec<Action> {
        vec![Action::Listen; n]
    }

    #[test]
    fn silence_is_heard_as_silence() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let heard = net.run_round(&all_listen(5)).unwrap();
        assert!(heard.iter().all(|&h| !h));
    }

    #[test]
    fn single_beep_reaches_exactly_neighbors() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(5);
        actions[2] = Action::Beep;
        let heard = net.run_round(&actions).unwrap();
        // Node 2 "receives" its own beep; 1 and 3 hear it; 0 and 4 don't.
        assert_eq!(heard, vec![false, true, true, true, false]);
    }

    #[test]
    fn simultaneous_beeps_are_indistinguishable_from_one() {
        // Carrier sensing only: the listener cannot count beepers.
        let g = topology::star(4).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut one = all_listen(4);
        one[1] = Action::Beep;
        let heard_one = net.run_round(&one).unwrap()[0];
        let mut many = all_listen(4);
        many[1] = Action::Beep;
        many[2] = Action::Beep;
        many[3] = Action::Beep;
        let heard_many = net.run_round(&many).unwrap()[0];
        assert_eq!(heard_one, heard_many);
        assert!(heard_one);
    }

    #[test]
    fn beeping_node_does_not_hear_distant_beeps() {
        // A beeping node's received bit is its own 1, regardless of others.
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let heard = net
            .run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        assert_eq!(heard, vec![true, true, true]);
    }

    #[test]
    fn action_count_mismatch_rejected() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(
            net.run_round(&all_listen(2)),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut net = BeepNetwork::new(topology::cycle(4).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(4);
        actions[0] = Action::Beep;
        net.run_round(&actions).unwrap();
        net.run_round(&all_listen(4)).unwrap();
        let s = net.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.beeps, 1);
        assert_eq!(s.listens, 7);
        assert!((s.beeps_per_round() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_node_energy_accounting() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        assert_eq!(net.beeps_by_node(), &[2, 0, 1]);
        assert_eq!(net.stats().beeps, 3);
    }

    #[test]
    fn determinism_same_seed_same_noise() {
        let run = |seed| {
            let mut net =
                BeepNetwork::new(topology::complete(6).unwrap(), Noise::bernoulli(0.3), seed);
            let mut actions = all_listen(6);
            actions[0] = Action::Beep;
            (0..20)
                .map(|_| net.run_round(&actions).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ somewhere");
    }

    #[test]
    fn noise_flips_listeners_at_rate_epsilon() {
        // Nobody beeps; over many rounds each listener should hear a phantom
        // beep at rate ≈ ε.
        let n = 10;
        let rounds = 2000;
        let mut net = BeepNetwork::new(topology::complete(n).unwrap(), Noise::bernoulli(0.25), 5);
        let mut phantom = 0usize;
        for _ in 0..rounds {
            phantom += net
                .run_round(&all_listen(n))
                .unwrap()
                .iter()
                .filter(|&&h| h)
                .count();
        }
        let rate = phantom as f64 / (n * rounds) as f64;
        assert!((rate - 0.25).abs() < 0.02, "phantom rate {rate}");
    }

    #[test]
    fn self_hearing_noise_flag() {
        // With noisy self-hearing (default), a solo beeper's own bit flips
        // at rate ε; with the flag off it never does.
        let rounds = 2000;
        let beep_only = [Action::Beep];
        let g = || topology::complete(1).unwrap();

        let mut noisy = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        let flips = (0..rounds)
            .filter(|_| !noisy.run_round(&beep_only).unwrap()[0])
            .count();
        let rate = flips as f64 / rounds as f64;
        assert!((rate - 0.3).abs() < 0.04, "self-flip rate {rate}");

        let mut clean = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        clean.set_self_hearing_noisy(false);
        for _ in 0..rounds {
            assert!(clean.run_round(&beep_only).unwrap()[0]);
        }
    }

    #[test]
    fn transcript_records_beepers() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.record_transcript();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        net.run_round(&[Action::Listen, Action::Listen, Action::Beep])
            .unwrap();
        let t = net.transcript().unwrap();
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.round(0).to_string(), "100");
        assert_eq!(t.round(1).to_string(), "001");
    }

    // A trivial protocol for run_protocols: node `id` beeps in round `id`
    // then finishes; everyone records what they heard.
    struct OneShot {
        id: usize,
        heard: Vec<bool>,
        done_after: usize,
    }
    impl BeepProtocol for OneShot {
        fn act(&mut self, round: usize) -> Action {
            if round == self.id {
                Action::Beep
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: usize, received: bool) {
            self.heard.push(received);
        }
        fn is_done(&self) -> bool {
            self.heard.len() >= self.done_after
        }
    }

    #[test]
    fn run_protocols_drives_until_done() {
        let g = topology::path(3).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..3)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: 3,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let rounds = net.run_protocols(&mut protos, 100).unwrap();
        assert_eq!(rounds, 3);
        assert_eq!(net.stats().rounds, 3);
    }

    #[test]
    fn run_protocols_budget_error() {
        let g = topology::path(2).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..2)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: usize::MAX,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        assert_eq!(
            net.run_protocols(&mut protos, 5),
            Err(NetError::RoundBudgetExhausted { budget: 5 })
        );
    }
}
