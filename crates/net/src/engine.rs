//! The synchronous round engine.

use crate::error::NetError;
use crate::graph::Graph;
use crate::node::{Action, BeepProtocol};
use crate::noise::Noise;
use crate::trace::{NetStats, Transcript};
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Word budget for the precomputed dense adjacency bitmasks: `n` rows of
/// `⌈n/64⌉` words each are only materialized when they fit in this many
/// `u64`s (16 MiB). Beyond it the sparse CSR kernel is used.
const DENSE_WORD_BUDGET: usize = 1 << 21;

/// How [`BeepNetwork::run_round_bitset`] computes the neighborhood OR.
#[derive(Debug)]
enum AdjKernel {
    /// Iterate the set bits of the beeper bitmap and scatter each beeper's
    /// CSR adjacency list into the received bitmap: `O(Σ deg(beeper))`.
    Sparse,
    /// Dense rows selected but not yet materialized: a network that only
    /// ever runs the scalar path (or is constructed per bench iteration)
    /// must not pay the `O(n²/64)` build in `new`. The first bitset round
    /// promotes this to [`AdjKernel::Dense`].
    DensePending,
    /// Per-node neighbor bitmasks, OR'd a whole row (word-parallel) per
    /// beeper: `O(#beepers · n/64)` words. Wins on small or dense graphs.
    Dense(Vec<BitVec>),
}

impl AdjKernel {
    /// Auto-selects the kernel: dense rows when they fit the
    /// [`DENSE_WORD_BUDGET`] *and* the graph is dense enough that a row OR
    /// (`⌈n/64⌉` words) beats scattering an average adjacency list
    /// (`2m/n` bit-writes), i.e. roughly when `128·m ≥ n²`. The rows
    /// themselves are built lazily on first use.
    fn auto(graph: &Graph) -> Self {
        let n = graph.node_count();
        let words_per_row = n.div_ceil(64);
        let fits = n.saturating_mul(words_per_row) <= DENSE_WORD_BUDGET;
        let dense_enough = 128usize.saturating_mul(graph.edge_count()) >= n.saturating_mul(n);
        if n > 0 && fits && dense_enough {
            AdjKernel::DensePending
        } else {
            AdjKernel::Sparse
        }
    }

    fn dense(graph: &Graph) -> Self {
        let n = graph.node_count();
        AdjKernel::Dense(
            (0..n)
                .map(|v| BitVec::from_indices(n, graph.neighbors(v).iter().copied()))
                .collect(),
        )
    }
}

/// A beeping network: a graph, a channel model, and a seeded RNG.
///
/// The engine implements the models of Section 1.1 exactly:
///
/// 1. every node submits an [`Action`] for the round;
/// 2. a node receives `1` iff it beeped itself or at least one neighbor
///    beeped (Section 1.5's "receives" convention);
/// 3. under [`Noise::Bernoulli`], each node's received bit is then flipped
///    independently with probability `ε`.
///
/// Per the paper's footnote 2, a beeping node's own `1` is flipped too by
/// default, so the engine matches the analysis verbatim; call
/// [`set_self_hearing_noisy(false)`](Self::set_self_hearing_noisy) for the
/// (easier) realistic semantics where a node knows it beeped.
///
/// # Two round kernels
///
/// [`run_round`](Self::run_round) is the scalar reference implementation:
/// one pass over the nodes, one neighborhood scan and (under noise) one RNG
/// draw each. [`run_round_bitset`](Self::run_round_bitset) is the
/// bit-parallel production kernel: beepers come in as a [`BitVec`], the
/// received OR is computed sparsely from the set bits (or via precomputed
/// adjacency bitmask rows on small/dense graphs), and channel noise is
/// applied with batched geometric-skip sampling. The two are bit-identical
/// under [`Noise::Noiseless`] (asserted by the `bitset_oracle` test suite);
/// under noise each is deterministic in `(graph, noise, seed, actions)` but
/// they consume the RNG stream differently, so their noisy runs are equal
/// in distribution, not bit-equal.
#[derive(Debug)]
pub struct BeepNetwork {
    graph: Graph,
    noise: Noise,
    rng: StdRng,
    stats: NetStats,
    beeps_per_node: Vec<u64>,
    self_hearing_noisy: bool,
    transcript: Option<Transcript>,
    kernel: AdjKernel,
}

impl BeepNetwork {
    /// Creates a network over `graph` with the given channel and RNG seed.
    /// Runs are fully deterministic in `(graph, noise, seed, actions)`.
    #[must_use]
    pub fn new(graph: Graph, noise: Noise, seed: u64) -> Self {
        let beeps_per_node = vec![0; graph.node_count()];
        let kernel = AdjKernel::auto(&graph);
        BeepNetwork {
            graph,
            noise,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            beeps_per_node,
            self_hearing_noisy: true,
            transcript: None,
            kernel,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The channel model.
    #[must_use]
    pub fn noise(&self) -> Noise {
        self.noise
    }

    /// Cumulative round/energy statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-node energy: how many beeps each node has emitted so far. The
    /// natural fairness/battery metric for the weak devices the beeping
    /// model targets.
    #[must_use]
    pub fn beeps_by_node(&self) -> &[u64] {
        &self.beeps_per_node
    }

    /// Chooses whether a beeping node's own received `1` passes through the
    /// noisy channel (default `true`, matching the paper's footnote 2).
    pub fn set_self_hearing_noisy(&mut self, noisy: bool) {
        self.self_hearing_noisy = noisy;
    }

    /// Overrides the auto-selected bitset kernel: `true` materializes the
    /// `n × n` adjacency bitmask rows (word-parallel row ORs per beeper),
    /// `false` uses the sparse CSR scatter. A tuning knob — results are
    /// identical either way; only [`run_round_bitset`](Self::run_round_bitset)
    /// throughput changes.
    pub fn set_dense_adjacency(&mut self, dense: bool) {
        self.kernel = if dense {
            AdjKernel::DensePending
        } else {
            AdjKernel::Sparse
        };
    }

    /// Starts recording a [`Transcript`] of beep bitmaps from the next
    /// round on.
    pub fn record_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Transcript::new());
        }
    }

    /// The transcript recorded so far, if recording was enabled.
    #[must_use]
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// Executes one synchronous round and returns the bit each node
    /// receives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `actions.len()` differs from
    /// the node count.
    pub fn run_round(&mut self, actions: &[Action]) -> Result<Vec<bool>, NetError> {
        let n = self.graph.node_count();
        if actions.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: actions.len(),
            });
        }
        let mut received = Vec::with_capacity(n);
        for v in 0..n {
            let clean = match actions[v] {
                Action::Beep => true,
                Action::Listen => self
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| actions[u] == Action::Beep),
            };
            let noisy_bit = if actions[v] == Action::Beep && !self.self_hearing_noisy {
                clean
            } else {
                self.noise.apply(clean, &mut self.rng)
            };
            received.push(noisy_bit);
        }
        self.stats.rounds += 1;
        for (v, a) in actions.iter().enumerate() {
            match a {
                Action::Beep => {
                    self.stats.beeps += 1;
                    self.beeps_per_node[v] += 1;
                }
                Action::Listen => self.stats.listens += 1,
            }
        }
        if let Some(t) = &mut self.transcript {
            t.push(BitVec::from_fn(n, |v| actions[v] == Action::Beep));
        }
        Ok(received)
    }

    /// Executes one synchronous round from a beeper bitmap — the
    /// bit-parallel kernel. `beepers` has bit `v` set iff node `v` beeps;
    /// the returned bitmap has bit `v` set iff node `v` receives a `1`.
    ///
    /// Semantics (beeper set, received OR, noise, stats, transcript) are
    /// exactly [`run_round`](Self::run_round)'s; only the cost model
    /// differs. The received OR is built from the *set bits only* — each
    /// beeper scatters its CSR adjacency list (or ORs its precomputed
    /// adjacency bitmask row, see [`set_dense_adjacency`](Self::set_dense_adjacency))
    /// — so a sparse-beeper round is `O(Σ deg(beeper) + n/64)` instead of
    /// the scalar path's `O(n + m)`. Under [`Noise::Bernoulli`] the channel
    /// is applied with geometric-skip batch sampling (`O(ε·n)` expected RNG
    /// draws); see [`Noise::apply_frame`] for the RNG-stream caveat.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ActionCount`] if `beepers.len()` differs from
    /// the node count.
    pub fn run_round_bitset(&mut self, beepers: &BitVec) -> Result<BitVec, NetError> {
        let n = self.graph.node_count();
        if beepers.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: beepers.len(),
            });
        }
        if matches!(self.kernel, AdjKernel::DensePending) {
            self.kernel = AdjKernel::dense(&self.graph);
        }
        // Self-hearing (Section 1.5) plus the neighborhood OR.
        let mut received = beepers.clone();
        match &self.kernel {
            AdjKernel::Dense(rows) => {
                for u in beepers.iter_ones() {
                    received.or_assign(&rows[u]);
                }
            }
            AdjKernel::Sparse => {
                for u in beepers.iter_ones() {
                    for &w in self.graph.neighbors(u) {
                        received.set(w, true);
                    }
                }
            }
            AdjKernel::DensePending => unreachable!("promoted to Dense above"),
        }
        let protect = (!self.self_hearing_noisy).then_some(beepers);
        self.noise
            .apply_frame(&mut received, protect, &mut self.rng);
        let beep_count = beepers.count_ones();
        self.stats.rounds += 1;
        self.stats.beeps += beep_count as u64;
        self.stats.listens += (n - beep_count) as u64;
        for u in beepers.iter_ones() {
            self.beeps_per_node[u] += 1;
        }
        if let Some(t) = &mut self.transcript {
            t.push(beepers.clone());
        }
        Ok(received)
    }

    /// Runs a whole batch of rounds from per-node transmit frames:
    /// `frames[v]` is node `v`'s schedule (bit `i` set ⇒ beep in round
    /// `i`), `None` means listen throughout. Returns what each node heard,
    /// as one [`BitVec`] per node covering all rounds.
    ///
    /// The round count is inferred from the first transmitted frame (0 if
    /// every node listens); every transmitted frame must have that length.
    /// Use [`run_frame_of_len`](Self::run_frame_of_len) when silent batches
    /// must still consume rounds.
    ///
    /// This is the frame-level API the phase simulators run on: each round
    /// touches only the transmitting nodes to assemble the beeper bitmap,
    /// then goes through [`run_round_bitset`](Self::run_round_bitset).
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if two transmitted frames disagree on
    ///   length.
    pub fn run_frame(&mut self, frames: &[Option<BitVec>]) -> Result<Vec<BitVec>, NetError> {
        let rounds = frames.iter().flatten().map(BitVec::len).next().unwrap_or(0);
        self.run_frame_of_len(frames, rounds)
    }

    /// [`run_frame`](Self::run_frame) with an explicit round count: runs
    /// exactly `rounds` rounds even when every node listens (an all-silent
    /// phase still occupies its slot in the paper's round accounting).
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `frames.len()` differs from the node
    ///   count.
    /// * [`NetError::FrameLength`] if a transmitted frame's length is not
    ///   `rounds`.
    pub fn run_frame_of_len(
        &mut self,
        frames: &[Option<BitVec>],
        rounds: usize,
    ) -> Result<Vec<BitVec>, NetError> {
        let n = self.graph.node_count();
        if frames.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: frames.len(),
            });
        }
        let mut transmitters: Vec<(usize, &BitVec)> = Vec::new();
        for (v, frame) in frames.iter().enumerate() {
            if let Some(f) = frame {
                if f.len() != rounds {
                    return Err(NetError::FrameLength {
                        node: v,
                        expected: rounds,
                        actual: f.len(),
                    });
                }
                transmitters.push((v, f));
            }
        }
        let mut heard: Vec<BitVec> = (0..n).map(|_| BitVec::zeros(rounds)).collect();
        let mut beepers = BitVec::zeros(n);
        for i in 0..rounds {
            beepers.clear();
            for &(v, f) in &transmitters {
                if f.get(i) {
                    beepers.set(v, true);
                }
            }
            let received = self.run_round_bitset(&beepers)?;
            for v in received.iter_ones() {
                heard[v].set(i, true);
            }
        }
        Ok(heard)
    }

    /// Drives one [`BeepProtocol`] instance per node until all report done
    /// or the round budget runs out. Returns the number of rounds executed.
    ///
    /// # Contract
    ///
    /// Done-ness is sampled only at round boundaries, and only the
    /// conjunction over *all* nodes stops the run: a protocol whose
    /// [`is_done`](BeepProtocol::is_done) already returns `true` keeps
    /// receiving [`act`](BeepProtocol::act) and
    /// [`feedback`](BeepProtocol::feedback) every remaining round (real
    /// beeping devices cannot leave the network either — a "done" node
    /// still occupies the channel, and several protocols in this workspace
    /// rely on done nodes continuing to relay). Pinned by a regression
    /// test.
    ///
    /// # Errors
    ///
    /// * [`NetError::ActionCount`] if `protocols.len()` differs from the
    ///   node count.
    /// * [`NetError::RoundBudgetExhausted`] if some protocol never
    ///   finishes.
    pub fn run_protocols(
        &mut self,
        protocols: &mut [Box<dyn BeepProtocol>],
        max_rounds: usize,
    ) -> Result<usize, NetError> {
        let n = self.graph.node_count();
        if protocols.len() != n {
            return Err(NetError::ActionCount {
                expected: n,
                actual: protocols.len(),
            });
        }
        let mut beepers = BitVec::zeros(n);
        for round in 0..max_rounds {
            if protocols.iter().all(|p| p.is_done()) {
                return Ok(round);
            }
            for (v, p) in protocols.iter_mut().enumerate() {
                beepers.set(v, p.act(round) == Action::Beep);
            }
            let received = self.run_round_bitset(&beepers)?;
            for (v, p) in protocols.iter_mut().enumerate() {
                p.feedback(round, received.get(v));
            }
        }
        if protocols.iter().all(|p| p.is_done()) {
            Ok(max_rounds)
        } else {
            Err(NetError::RoundBudgetExhausted { budget: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn all_listen(n: usize) -> Vec<Action> {
        vec![Action::Listen; n]
    }

    #[test]
    fn silence_is_heard_as_silence() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let heard = net.run_round(&all_listen(5)).unwrap();
        assert!(heard.iter().all(|&h| !h));
    }

    #[test]
    fn single_beep_reaches_exactly_neighbors() {
        let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(5);
        actions[2] = Action::Beep;
        let heard = net.run_round(&actions).unwrap();
        // Node 2 "receives" its own beep; 1 and 3 hear it; 0 and 4 don't.
        assert_eq!(heard, vec![false, true, true, true, false]);
    }

    #[test]
    fn simultaneous_beeps_are_indistinguishable_from_one() {
        // Carrier sensing only: the listener cannot count beepers.
        let g = topology::star(4).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut one = all_listen(4);
        one[1] = Action::Beep;
        let heard_one = net.run_round(&one).unwrap()[0];
        let mut many = all_listen(4);
        many[1] = Action::Beep;
        many[2] = Action::Beep;
        many[3] = Action::Beep;
        let heard_many = net.run_round(&many).unwrap()[0];
        assert_eq!(heard_one, heard_many);
        assert!(heard_one);
    }

    #[test]
    fn beeping_node_does_not_hear_distant_beeps() {
        // A beeping node's received bit is its own 1, regardless of others.
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let heard = net
            .run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        assert_eq!(heard, vec![true, true, true]);
    }

    #[test]
    fn action_count_mismatch_rejected() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(
            net.run_round(&all_listen(2)),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut net = BeepNetwork::new(topology::cycle(4).unwrap(), Noise::Noiseless, 0);
        let mut actions = all_listen(4);
        actions[0] = Action::Beep;
        net.run_round(&actions).unwrap();
        net.run_round(&all_listen(4)).unwrap();
        let s = net.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.beeps, 1);
        assert_eq!(s.listens, 7);
        assert!((s.beeps_per_round() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_node_energy_accounting() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.run_round(&[Action::Beep, Action::Listen, Action::Beep])
            .unwrap();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        assert_eq!(net.beeps_by_node(), &[2, 0, 1]);
        assert_eq!(net.stats().beeps, 3);
    }

    #[test]
    fn determinism_same_seed_same_noise() {
        let run = |seed| {
            let mut net =
                BeepNetwork::new(topology::complete(6).unwrap(), Noise::bernoulli(0.3), seed);
            let mut actions = all_listen(6);
            actions[0] = Action::Beep;
            (0..20)
                .map(|_| net.run_round(&actions).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ somewhere");
    }

    #[test]
    fn noise_flips_listeners_at_rate_epsilon() {
        // Nobody beeps; over many rounds each listener should hear a phantom
        // beep at rate ≈ ε.
        let n = 10;
        let rounds = 2000;
        let mut net = BeepNetwork::new(topology::complete(n).unwrap(), Noise::bernoulli(0.25), 5);
        let mut phantom = 0usize;
        for _ in 0..rounds {
            phantom += net
                .run_round(&all_listen(n))
                .unwrap()
                .iter()
                .filter(|&&h| h)
                .count();
        }
        let rate = phantom as f64 / (n * rounds) as f64;
        assert!((rate - 0.25).abs() < 0.02, "phantom rate {rate}");
    }

    #[test]
    fn self_hearing_noise_flag() {
        // With noisy self-hearing (default), a solo beeper's own bit flips
        // at rate ε; with the flag off it never does.
        let rounds = 2000;
        let beep_only = [Action::Beep];
        let g = || topology::complete(1).unwrap();

        let mut noisy = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        let flips = (0..rounds)
            .filter(|_| !noisy.run_round(&beep_only).unwrap()[0])
            .count();
        let rate = flips as f64 / rounds as f64;
        assert!((rate - 0.3).abs() < 0.04, "self-flip rate {rate}");

        let mut clean = BeepNetwork::new(g(), Noise::bernoulli(0.3), 6);
        clean.set_self_hearing_noisy(false);
        for _ in 0..rounds {
            assert!(clean.run_round(&beep_only).unwrap()[0]);
        }
    }

    #[test]
    fn transcript_records_beepers() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        net.record_transcript();
        net.run_round(&[Action::Beep, Action::Listen, Action::Listen])
            .unwrap();
        net.run_round(&[Action::Listen, Action::Listen, Action::Beep])
            .unwrap();
        let t = net.transcript().unwrap();
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.round(0).to_string(), "100");
        assert_eq!(t.round(1).to_string(), "001");
    }

    // A trivial protocol for run_protocols: node `id` beeps in round `id`
    // then finishes; everyone records what they heard.
    struct OneShot {
        id: usize,
        heard: Vec<bool>,
        done_after: usize,
    }
    impl BeepProtocol for OneShot {
        fn act(&mut self, round: usize) -> Action {
            if round == self.id {
                Action::Beep
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: usize, received: bool) {
            self.heard.push(received);
        }
        fn is_done(&self) -> bool {
            self.heard.len() >= self.done_after
        }
    }

    #[test]
    fn run_protocols_drives_until_done() {
        let g = topology::path(3).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..3)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: 3,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let rounds = net.run_protocols(&mut protos, 100).unwrap();
        assert_eq!(rounds, 3);
        assert_eq!(net.stats().rounds, 3);
    }

    #[test]
    fn run_round_bitset_matches_scalar_semantics() {
        // Spot-check on a path; the exhaustive cross-topology oracle lives
        // in tests/bitset_oracle.rs.
        let g = topology::path(5).unwrap();
        let mut scalar = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        let mut bitset = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut actions = all_listen(5);
        actions[2] = Action::Beep;
        let beepers = BitVec::from_indices(5, [2]);
        let via_scalar = scalar.run_round(&actions).unwrap();
        let via_bitset = bitset.run_round_bitset(&beepers).unwrap();
        assert_eq!(via_scalar, via_bitset.iter_bits().collect::<Vec<_>>());
        assert_eq!(scalar.stats(), bitset.stats());
        assert_eq!(scalar.beeps_by_node(), bitset.beeps_by_node());
    }

    #[test]
    fn run_round_bitset_rejects_wrong_length() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        assert_eq!(
            net.run_round_bitset(&BitVec::zeros(2)),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn run_frame_transmits_frames_bit_by_bit() {
        // Node 0 sends 101, node 2 sends 011 on a path 0-1-2; check what
        // node 1 (hearing both) and the endpoints reconstruct.
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let frames = vec![
            Some(BitVec::from_indices(3, [0, 2])),
            None,
            Some(BitVec::from_indices(3, [1, 2])),
        ];
        let heard = net.run_frame(&frames).unwrap();
        assert_eq!(heard[0].to_string(), "101"); // own beeps
        assert_eq!(heard[1].to_string(), "111"); // OR of both neighbors
        assert_eq!(heard[2].to_string(), "011"); // own beeps
        assert_eq!(net.stats().rounds, 3);
        assert_eq!(net.stats().beeps, 4);
    }

    #[test]
    fn run_frame_infers_zero_rounds_when_all_silent() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let heard = net.run_frame(&[None, None, None]).unwrap();
        assert!(heard.iter().all(BitVec::is_empty));
        assert_eq!(net.stats().rounds, 0);
        // The explicit-length variant still burns the rounds.
        let heard = net.run_frame_of_len(&[None, None, None], 4).unwrap();
        assert!(heard.iter().all(|h| h.len() == 4 && h.count_ones() == 0));
        assert_eq!(net.stats().rounds, 4);
    }

    #[test]
    fn run_frame_rejects_mismatched_frames() {
        let mut net = BeepNetwork::new(topology::path(3).unwrap(), Noise::Noiseless, 0);
        let frames = vec![
            Some(BitVec::zeros(3)),
            None,
            Some(BitVec::zeros(2)), // wrong length
        ];
        assert_eq!(
            net.run_frame(&frames),
            Err(NetError::FrameLength {
                node: 2,
                expected: 3,
                actual: 2
            })
        );
        assert_eq!(
            net.run_frame(&[None, None]),
            Err(NetError::ActionCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn dense_and_sparse_kernels_agree() {
        let g = topology::grid(4, 4).unwrap();
        let beepers = BitVec::from_indices(16, [0, 5, 10, 15]);
        let mut dense = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
        dense.set_dense_adjacency(true);
        let mut sparse = BeepNetwork::new(g, Noise::Noiseless, 0);
        sparse.set_dense_adjacency(false);
        assert_eq!(
            dense.run_round_bitset(&beepers).unwrap(),
            sparse.run_round_bitset(&beepers).unwrap()
        );
    }

    // Regression: run_protocols keeps driving act()/feedback() on nodes
    // whose is_done() already returns true, until *all* nodes are done
    // (the documented contract). Counters are shared out through Rc so the
    // boxed trait objects can be inspected after the run.
    struct DoneButCounting {
        rounds_to_run: usize,
        feedbacks: std::rc::Rc<std::cell::Cell<usize>>,
        acts_while_done: std::rc::Rc<std::cell::Cell<usize>>,
    }
    impl BeepProtocol for DoneButCounting {
        fn act(&mut self, _round: usize) -> Action {
            if self.is_done() {
                self.acts_while_done.set(self.acts_while_done.get() + 1);
            }
            Action::Listen
        }
        fn feedback(&mut self, _round: usize, _received: bool) {
            self.feedbacks.set(self.feedbacks.get() + 1);
        }
        fn is_done(&self) -> bool {
            self.feedbacks.get() >= self.rounds_to_run
        }
    }

    #[test]
    fn run_protocols_keeps_driving_done_nodes() {
        use std::cell::Cell;
        use std::rc::Rc;
        // Node 0 is done after 1 round, node 1 after 5: node 0 must still
        // be asked to act (and given feedback) in rounds 1..4.
        type Counters = (Rc<Cell<usize>>, Rc<Cell<usize>>);
        let counters: Vec<Counters> = (0..2).map(|_| Default::default()).collect();
        let mut protos: Vec<Box<dyn BeepProtocol>> = counters
            .iter()
            .zip([1usize, 5])
            .map(|((feedbacks, acts_while_done), rounds_to_run)| {
                Box::new(DoneButCounting {
                    rounds_to_run,
                    feedbacks: Rc::clone(feedbacks),
                    acts_while_done: Rc::clone(acts_while_done),
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        let g = topology::path(2).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let rounds = net.run_protocols(&mut protos, 100).unwrap();
        assert_eq!(rounds, 5);
        let (node0_feedbacks, node0_acts_while_done) = &counters[0];
        assert_eq!(
            node0_feedbacks.get(),
            5,
            "done node stopped receiving feedback"
        );
        assert_eq!(
            node0_acts_while_done.get(),
            4,
            "done node stopped being asked to act"
        );
        assert_eq!(counters[1].0.get(), 5);
    }

    #[test]
    fn run_protocols_budget_error() {
        let g = topology::path(2).unwrap();
        let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
        let mut protos: Vec<Box<dyn BeepProtocol>> = (0..2)
            .map(|id| {
                Box::new(OneShot {
                    id,
                    heard: Vec::new(),
                    done_after: usize::MAX,
                }) as Box<dyn BeepProtocol>
            })
            .collect();
        assert_eq!(
            net.run_protocols(&mut protos, 5),
            Err(NetError::RoundBudgetExhausted { budget: 5 })
        );
    }
}
