//! Topology generators for the paper's experiment graphs.
//!
//! Includes the lower-bound hard instance
//! ([`complete_bipartite_with_isolated`], Lemma 14: `K_{Δ,Δ}` plus `n − 2Δ`
//! isolated vertices) and the sensor-field style random geometric graphs
//! the beeping model was introduced for.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::{Rng, RngExt};

/// The complete graph `K_n`.
///
/// # Errors
///
/// Never fails for valid `n`; returns the empty graph for `n = 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The complete bipartite graph `K_{l,r}`: parts `0..l` and `l..l+r`.
///
/// # Errors
///
/// Never fails; either part may be empty.
pub fn complete_bipartite(l: usize, r: usize) -> Result<Graph, GraphError> {
    let mut edges = Vec::with_capacity(l * r);
    for u in 0..l {
        for v in 0..r {
            edges.push((u, l + v));
        }
    }
    Graph::from_edges(l + r, &edges)
}

/// The Lemma 14 / Theorem 22 hard instance: `K_{Δ,Δ}` (parts `0..delta` and
/// `delta..2delta`) padded with isolated vertices to `n` nodes total. The
/// graph has `n` vertices and maximum degree exactly `Δ`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `n < 2·delta` or `delta == 0`.
pub fn complete_bipartite_with_isolated(delta: usize, n: usize) -> Result<Graph, GraphError> {
    if delta == 0 {
        return Err(GraphError::InvalidTopology {
            detail: "K_{Δ,Δ} needs Δ ≥ 1".into(),
        });
    }
    if n < 2 * delta {
        return Err(GraphError::InvalidTopology {
            detail: format!("n = {n} cannot host K_{{{delta},{delta}}}"),
        });
    }
    let mut edges = Vec::with_capacity(delta * delta);
    for u in 0..delta {
        for v in 0..delta {
            edges.push((u, delta + v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The path `P_n`: `0 – 1 – … – n−1`.
///
/// # Errors
///
/// Never fails.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    let edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges)
}

/// The cycle `C_n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] for `n < 3` (a simple cycle
/// needs at least three nodes).
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidTopology {
            detail: format!("cycle needs n ≥ 3, got {n}"),
        });
    }
    let mut edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// The star `K_{1,n−1}` centered at node 0.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidTopology {
            detail: "star needs n ≥ 1".into(),
        });
    }
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// A `rows × cols` 4-neighbor grid; node `(r, c)` has id `r·cols + c`.
/// Grids model the planar sensor deployments motivating the beeping model.
///
/// # Errors
///
/// Never fails (degenerate dimensions give paths or an empty graph).
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// A `rows × cols` torus: the 4-neighbor grid with wraparound edges, so
/// every node has degree exactly 4 when both dimensions are ≥ 3 — the
/// boundary-free sensor sheet, and the scenario layer's fixed-degree
/// contrast to [`grid`]. Node `(r, c)` has id `r·cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if either dimension is below 3
/// (smaller wraparounds collapse to multi-edges).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidTopology {
            detail: format!("torus needs both dimensions ≥ 3, got {rows}×{cols}"),
        });
    }
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            edges.push((id, r * cols + (c + 1) % cols));
            edges.push((id, ((r + 1) % rows) * cols + c));
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// The same edge set as [`torus`] with zero adjacency storage: the
/// neighborhood of every node is computed on the fly from `(rows, cols)`.
/// This is the representation that lets 10M–100M-node tori fit in RAM
/// (see [`Graph::implicit_torus`] and the "Extreme-scale kernel" chapter
/// of ARCHITECTURE.md).
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if either dimension is below 3
/// (smaller wraparounds collapse to multi-edges).
pub fn implicit_torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    Graph::implicit_torus(rows, cols)
}

/// The same edge set as [`grid`] with zero adjacency storage (see
/// [`Graph::implicit_grid`]).
///
/// # Errors
///
/// Never fails (degenerate dimensions give paths or an empty graph).
pub fn implicit_grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    Ok(Graph::implicit_grid(rows, cols))
}

/// The same edge set as [`complete`] with zero adjacency storage (see
/// [`Graph::implicit_complete`]).
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] for `n == 0` (mirroring
/// [`complete`], which rejects the empty graph).
pub fn implicit_complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidTopology {
            detail: "complete graph needs at least 1 node".to_string(),
        });
    }
    Ok(Graph::implicit_complete(n))
}

/// A Barabási–Albert preferential-attachment graph: starts from a star on
/// `m + 1` nodes, then each new node attaches `m` edges to distinct
/// existing nodes chosen with probability proportional to their current
/// degree (the classic repeated-endpoint urn). Produces the heavy-tailed
/// hub-and-spoke degree profiles of scale-free overlays — the scenario
/// layer's high-Δ-variance contrast to [`random_regular`].
///
/// Connected by construction, with `m·(n − m − 1) + m` edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `m == 0` or `n < m + 1`.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidTopology {
            detail: "preferential attachment needs m ≥ 1".into(),
        });
    }
    if n < m + 1 {
        return Err(GraphError::InvalidTopology {
            detail: format!("n = {n} cannot seed preferential attachment with m = {m}"),
        });
    }
    // Seed star on {0, …, m}: gives every seed node nonzero degree so the
    // urn is well-defined from the first attachment step.
    let mut edges: Vec<(NodeId, NodeId)> = (1..=m).map(|v| (0, v)).collect();
    // The urn holds each edge's two endpoints: sampling a uniform entry
    // selects a node with probability ∝ degree.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for &(a, b) in &edges {
        urn.push(a);
        urn.push(b);
    }
    for v in m + 1..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let target = urn[rng.random_range(0..urn.len())];
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &u in &chosen {
            edges.push((v, u));
            urn.push(v);
            urn.push(u);
        }
    }
    Graph::from_edges(n, &edges)
}

/// A complete binary tree on `n` nodes (heap indexing: children of `v` are
/// `2v+1`, `2v+2`).
///
/// # Errors
///
/// Never fails.
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push(((v - 1) / 2, v));
    }
    Graph::from_edges(n, &edges)
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `dim > 20` (more than a
/// million nodes is beyond simulation scale).
pub fn hypercube(dim: u32) -> Result<Graph, GraphError> {
    if dim > 20 {
        return Err(GraphError::InvalidTopology {
            detail: format!("hypercube dimension {dim} too large"),
        });
    }
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// An Erdős–Rényi graph `G(n, p)`: each potential edge appears
/// independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidTopology {
            detail: format!("edge probability {p} not in [0,1]"),
        });
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A random geometric graph: `n` nodes placed uniformly in the unit square,
/// an edge between every pair within Euclidean distance `radius`. This is
/// the canonical abstraction of a wireless sensor field (the paper's
/// motivating deployment) and drives the sensor-network examples.
///
/// Returns the graph together with the sampled positions (useful for
/// rendering and for radius calibration in examples).
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `radius` is negative.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<(Graph, Vec<(f64, f64)>), GraphError> {
    if radius < 0.0 {
        return Err(GraphError::InvalidTopology {
            detail: format!("radius {radius} negative"),
        });
    }
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let dx = positions[u].0 - positions[v].0;
            let dy = positions[u].1 - positions[v].1;
            if dx * dx + dy * dy <= r2 {
                edges.push((u, v));
            }
        }
    }
    Ok((Graph::from_edges(n, &edges)?, positions))
}

/// A randomized `d`-regular simple graph on `n` nodes: a circulant
/// `d`-regular graph randomized by `10·m` double-edge switches (each swap
/// replaces edges `{a,b}, {c,e}` with `{a,e}, {c,b}` when that keeps the
/// graph simple). Degree-preserving switching mixes toward the uniform
/// regular graph; for the experiments' purposes "well-mixed" suffices, and
/// unlike configuration-model rejection it never stalls at moderate `d`.
///
/// Regular graphs isolate the paper's `Δ` parameter exactly: every node
/// has degree `Δ = d`, and (for `d ≥ 3`, `n ≫ d²`) distance-2
/// neighborhoods reach the full `Θ(Δ²)` size the baselines pay for.
///
/// # Errors
///
/// Returns [`GraphError::InvalidTopology`] if `n·d` is odd or `d ≥ n`.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if d >= n {
        return Err(GraphError::InvalidTopology {
            detail: format!("degree {d} must be below n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidTopology {
            detail: format!("n·d = {} must be even", n * d),
        });
    }
    if d == 0 {
        return Graph::from_edges(n, &[]);
    }
    // Seed circulant: offsets ±1..±⌊d/2⌋, plus the antipode when d is odd
    // (n is even then, since n·d is even).
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * d / 2);
    for v in 0..n {
        for off in 1..=d / 2 {
            edges.push((v, (v + off) % n));
        }
    }
    if !d.is_multiple_of(2) {
        for v in 0..n / 2 {
            edges.push((v, v + n / 2));
        }
    }
    // Canonicalize and build the occupancy set.
    let mut present: std::collections::HashSet<(NodeId, NodeId)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    let mut edges: Vec<(NodeId, NodeId)> = present.iter().copied().collect();
    edges.sort_unstable();
    // Double-edge switches.
    let m = edges.len();
    for _ in 0..10 * m {
        let i = rng.random_range(0..m);
        let j = rng.random_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, e) = edges[j];
        // Candidate rewiring {a,e}, {c,b}.
        if a == e || c == b {
            continue;
        }
        let new1 = (a.min(e), a.max(e));
        let new2 = (c.min(b), c.max(b));
        if new1 == new2 || present.contains(&new1) || present.contains(&new2) {
            continue;
        }
        present.remove(&edges[i]);
        present.remove(&edges[j]);
        present.insert(new1);
        present.insert(new2);
        edges[i] = new1;
        edges[j] = new2;
    }
    Graph::from_edges(n, &edges)
}

/// A uniformly random labeled tree on `n` nodes (via a random Prüfer
/// sequence) — connected, `n−1` edges, good low-degree contrast to `K_n`.
///
/// # Errors
///
/// Never fails.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if n <= 1 {
        return Graph::from_edges(n, &[]);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree invariant");
        edges.push((leaf, v));
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    edges.push((a, b));
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 4); // left side sees all of right
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1)); // no intra-part edges
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn hard_instance_shape() {
        // Lemma 14's instance: n vertices, max degree exactly Δ.
        let g = complete_bipartite_with_isolated(4, 20).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.edge_count(), 16);
        for v in 8..20 {
            assert_eq!(g.degree(v), 0, "vertex {v} should be isolated");
        }
    }

    #[test]
    fn hard_instance_validation() {
        assert!(complete_bipartite_with_isolated(0, 10).is_err());
        assert!(complete_bipartite_with_isolated(6, 10).is_err());
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5).unwrap().diameter(), Some(4));
        assert_eq!(cycle(6).unwrap().diameter(), Some(3));
        assert!(cycle(2).is_err());
        let s = star(9).unwrap();
        assert_eq!(s.max_degree(), 8);
        assert_eq!(s.diameter(), Some(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.diameter(), Some(2 + 3));
        assert_eq!(grid(0, 5).unwrap().node_count(), 0);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 2 * 20);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert!(g.is_connected());
        assert!(torus(2, 5).is_err());
        assert!(torus(5, 2).is_err());
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let g = torus(3, 4).unwrap();
        // Row wrap: (0,3) – (0,0); column wrap: (2,1) – (0,1).
        assert!(g.has_edge(3, 0));
        assert!(g.has_edge(2 * 4 + 1, 1));
        // Torus diameter = ⌊rows/2⌋ + ⌊cols/2⌋.
        assert_eq!(g.diameter(), Some(1 + 2));
    }

    #[test]
    fn preferential_attachment_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, m) in [(5usize, 1usize), (30, 2), (64, 3)] {
            let g = preferential_attachment(n, m, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), m + m * (n - m - 1), "n={n} m={m}");
            assert!(g.is_connected(), "n={n} m={m}");
            // Late arrivals have degree ≥ m; hubs should exceed it.
            assert!(g.degree(n - 1) >= m);
        }
    }

    #[test]
    fn preferential_attachment_grows_hubs() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = preferential_attachment(200, 2, &mut rng).unwrap();
        // Scale-free signature: the max degree dwarfs the attachment count.
        assert!(g.max_degree() >= 4 * 2, "max degree {}", g.max_degree());
    }

    #[test]
    fn preferential_attachment_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(preferential_attachment(5, 0, &mut rng).is_err());
        assert!(preferential_attachment(2, 2, &mut rng).is_err());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.diameter(), Some(4));
        assert!(hypercube(21).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(gnp(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(60, 0.3, &mut rng).unwrap();
        let expected = (60.0 * 59.0 / 2.0) * 0.3;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < expected * 0.3,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn random_geometric_radius_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let (sparse, _) = random_geometric(50, 0.1, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (dense, _) = random_geometric(50, 0.5, &mut rng).unwrap();
        assert!(dense.edge_count() > sparse.edge_count());
        let mut rng = StdRng::seed_from_u64(3);
        let (full, positions) = random_geometric(50, 2.0, &mut rng).unwrap();
        assert_eq!(
            full.edge_count(),
            50 * 49 / 2,
            "radius √2 covers the unit square"
        );
        assert_eq!(positions.len(), 50);
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(5);
        for (n, d) in [(10usize, 0usize), (10, 3), (20, 4), (31, 6), (64, 8)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            for v in 0..n {
                assert_eq!(g.degree(v), d, "n={n} d={d} node {v}");
            }
            assert_eq!(g.edge_count(), n * d / 2);
        }
    }

    #[test]
    fn random_regular_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(random_regular(5, 5, &mut rng).is_err()); // d ≥ n
        assert!(random_regular(5, 3, &mut rng).is_err()); // n·d odd
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 3, 10, 64] {
            let g = random_tree(n, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(g.is_connected(), "n = {n}");
        }
    }
}
