//! The noisy beeping channel (Ashkenazi, Gelles & Leshem).

use crate::error::NetError;
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Derives the seed of the noise RNG stream for one `(seed, round, shard)`
/// cell — the determinism contract of the sharded round engine.
///
/// Every noisy round of the bit-parallel kernel draws its channel flips
/// from `StdRng::seed_from_u64(noise_stream_seed(seed, round, shard))`, one
/// independent stream per shard per round. Because the stream is keyed by
/// *position* rather than threaded through one sequential RNG, the noisy
/// transcript depends only on `(graph, noise, seed, actions, shard_count)`
/// — never on how many threads computed it, nor on their scheduling.
///
/// The two multipliers are distinct odd 64-bit mixing constants
/// (SplitMix64's golden-ratio increment and the rrmxmx mixer multiplier),
/// so `(round, shard)` and `(shard, round)` key different streams; a plain
/// `seed ^ round ^ shard` would collide on every swapped pair. This
/// function is pinned by the golden-transcript tests: changing it silently
/// shifts every recorded noisy experiment, so it fails loudly instead.
#[must_use]
pub fn noise_stream_seed(seed: u64, round: u64, shard: u64) -> u64 {
    seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ shard.wrapping_mul(0x9FB2_1C65_1E98_DF25)
}

/// The reserved shard index of the per-(node, phase) protocol coin stream.
///
/// Randomized protocols built on the engine (currently `beep_ben_or` in
/// `beep-apps`) derive node `v`'s phase-`p` coin via [`protocol_coin`] —
/// counter-keyed like everything else, so transcripts stay pure functions
/// of `(graph, channel, faults, seed, actions, shard_count)` and coins
/// never perturb (or collide with) the channel, fault-realization, or
/// adaptive-policy streams. Listed in
/// [`RESERVED_STREAMS`](crate::RESERVED_STREAMS); coin golden values are
/// pinned by `noise_stream_golden.rs`.
pub const PROTOCOL_COIN_STREAM: u64 = u64::MAX - 3;

/// Node `node`'s fair coin for phase `phase` of a randomized protocol
/// seeded with `seed`.
///
/// The draw is `StdRng::seed_from_u64(noise_stream_seed(seed, phase,
/// PROTOCOL_COIN_STREAM) ^ (node + 1)·M)` with `M` an odd 64-bit mixing
/// constant (the rrmxmx finalizer multiplier), so distinct nodes key
/// distinct streams and node 0 is not the unmixed phase key. Pinned by the
/// coin-stream golden test; change it only with a documented break.
#[must_use]
pub fn protocol_coin(seed: u64, node: usize, phase: u64) -> bool {
    let key = noise_stream_seed(seed, phase, PROTOCOL_COIN_STREAM)
        ^ (node as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
    StdRng::seed_from_u64(key).random_bool(0.5)
}

/// The channel model applied to every bit a node receives.
///
/// ```
/// use beep_net::Noise;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// // The noiseless channel is the identity; ε ∈ (0, ½) flips each bit
/// // independently with probability ε.
/// assert!(Noise::Noiseless.apply(true, &mut rng));
/// let noisy = Noise::bernoulli(0.25);
/// assert_eq!(noisy.epsilon(), 0.25);
/// let flips = (0..10_000).filter(|_| noisy.apply(false, &mut rng)).count();
/// assert!((2_000..3_000).contains(&flips));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// The noiseless beeping model of Cornejo & Kuhn: received bits are
    /// exact.
    Noiseless,
    /// The noisy beeping model: each received bit is flipped independently
    /// uniformly at random with the given probability `ε ∈ (0, ½)`.
    Bernoulli(f64),
}

impl Noise {
    /// Constructs a Bernoulli channel after validating `ε ∈ (0, ½)` — the
    /// open interval the paper requires (at `ε = ½` the channel carries no
    /// information; at `ε = 0` use [`Noise::Noiseless`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidNoise`] if `epsilon` is outside
    /// `(0, 0.5)` (including NaN).
    pub fn try_bernoulli(epsilon: f64) -> Result<Self, NetError> {
        if epsilon > 0.0 && epsilon < 0.5 {
            Ok(Noise::Bernoulli(epsilon))
        } else {
            Err(NetError::InvalidNoise { epsilon })
        }
    }

    /// [`Noise::try_bernoulli`] for contexts where `ε` is a literal or
    /// otherwise known-valid — the panicking convenience every example and
    /// test uses.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 0.5)`. Use
    /// [`Noise::try_bernoulli`] when `ε` comes from user input or
    /// configuration.
    #[must_use]
    pub fn bernoulli(epsilon: f64) -> Self {
        match Self::try_bernoulli(epsilon) {
            Ok(noise) => noise,
            Err(e) => panic!("{e}"),
        }
    }

    /// The flip probability (0 for the noiseless channel).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        match *self {
            Noise::Noiseless => 0.0,
            Noise::Bernoulli(e) => e,
        }
    }

    /// Passes one bit through the channel.
    #[must_use]
    pub fn apply<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        match *self {
            Noise::Noiseless => bit,
            Noise::Bernoulli(e) => {
                if rng.random_bool(e) {
                    !bit
                } else {
                    bit
                }
            }
        }
    }

    /// Passes a whole frame of received bits through the channel at once:
    /// each bit of `bits` is flipped independently with probability `ε`,
    /// except at positions set in `protect` (the engine passes the beeper
    /// set there when self-hearing is configured noise-free).
    ///
    /// Instead of one Bernoulli draw per bit, flip positions are generated
    /// by geometric gap sampling (inversion of the geometric CDF), so a
    /// frame of `n` bits costs `O(ε·n + 1)` RNG draws — the batching that
    /// makes the noisy channel as cheap as the noiseless one at simulation
    /// scale. The per-bit marginal is exactly `Bernoulli(ε)` and flips stay
    /// i.i.d.; only the *stream* of RNG draws differs from bit-by-bit
    /// [`Noise::apply`], so scalar and batched runs under noise are each
    /// deterministic in `(graph, noise, seed, actions)` but not bit-equal
    /// to one another.
    pub fn apply_frame<R: Rng + ?Sized>(
        &self,
        bits: &mut BitVec,
        protect: Option<&BitVec>,
        rng: &mut R,
    ) {
        let hi = bits.len();
        self.apply_to_words(bits.as_words_mut(), 0, hi, protect, rng);
    }

    /// The word-slice core of [`apply_frame`](Self::apply_frame): flips
    /// bits at *global* positions `lo..hi` (with `lo` word-aligned) inside
    /// `words`, whose first word holds bits `lo..lo + 64`. `protect` is
    /// indexed by global position.
    ///
    /// This is the form the sharded round engine uses: each shard owns a
    /// disjoint word range of the received frame and passes it here with
    /// its own counter-keyed RNG stream (see [`noise_stream_seed`]), so
    /// channel
    /// noise is identical no matter how many threads ran the round.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not a multiple of 64, or if `hi - lo` exceeds the
    /// bit capacity of `words`.
    pub fn apply_to_words<R: Rng + ?Sized>(
        &self,
        words: &mut [u64],
        lo: usize,
        hi: usize,
        protect: Option<&BitVec>,
        rng: &mut R,
    ) {
        let Noise::Bernoulli(e) = *self else {
            return;
        };
        assert!(lo.is_multiple_of(64), "shard start {lo} not word-aligned");
        assert!(
            hi.saturating_sub(lo) <= words.len() * 64,
            "range {lo}..{hi} exceeds {} words",
            words.len()
        );
        // gap = ⌊ln(1−U)/ln(1−ε)⌋ is Geometric(ε) on {0, 1, 2, …}: the
        // number of unflipped bits before the next flip.
        let denom = (1.0 - e).ln();
        let mut i = lo;
        while i < hi {
            let u: f64 = rng.random();
            let gap = (1.0 - u).ln() / denom;
            if gap >= (hi - i) as f64 {
                break;
            }
            i += gap as usize;
            if !protect.is_some_and(|p| p.get(i)) {
                words[(i - lo) / 64] ^= 1u64 << (i % 64);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(Noise::Noiseless.apply(true, &mut rng));
            assert!(!Noise::Noiseless.apply(false, &mut rng));
        }
        assert_eq!(Noise::Noiseless.epsilon(), 0.0);
    }

    #[test]
    fn bernoulli_flip_rate_is_close_to_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = Noise::bernoulli(0.2);
        let flips = (0..20_000).filter(|_| noise.apply(false, &mut rng)).count();
        assert!((3500..=4500).contains(&flips), "flips = {flips}");
        assert_eq!(noise.epsilon(), 0.2);
    }

    #[test]
    fn bernoulli_is_symmetric_across_bit_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = Noise::bernoulli(0.3);
        let zeros_flipped = (0..20_000).filter(|_| noise.apply(false, &mut rng)).count();
        let ones_flipped = (0..20_000).filter(|_| !noise.apply(true, &mut rng)).count();
        let diff = (zeros_flipped as i64 - ones_flipped as i64).abs();
        assert!(diff < 600, "asymmetry {zeros_flipped} vs {ones_flipped}");
    }

    #[test]
    #[should_panic(expected = "outside (0, 1/2)")]
    fn epsilon_zero_rejected() {
        let _ = Noise::bernoulli(0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1/2)")]
    fn epsilon_half_rejected() {
        let _ = Noise::bernoulli(0.5);
    }

    #[test]
    fn try_bernoulli_validates_without_panicking() {
        assert_eq!(Noise::try_bernoulli(0.25), Ok(Noise::Bernoulli(0.25)));
        for bad in [0.0, 0.5, 1.0, -0.1, f64::NAN] {
            let err = Noise::try_bernoulli(bad).unwrap_err();
            assert!(matches!(err, NetError::InvalidNoise { .. }), "ε = {bad}");
        }
    }

    #[test]
    fn batched_flip_rate_matches_epsilon() {
        // Statistical contract of the geometric-skip sampler: the per-bit
        // flip marginal is ε, within binomial tolerance.
        let mut rng = StdRng::seed_from_u64(4);
        for eps in [0.05, 0.2, 0.45] {
            let noise = Noise::bernoulli(eps);
            let n = 40_000;
            let mut bits = BitVec::zeros(n);
            noise.apply_frame(&mut bits, None, &mut rng);
            let rate = bits.count_ones() as f64 / n as f64;
            let sigma = (eps * (1.0 - eps) / n as f64).sqrt();
            assert!(
                (rate - eps).abs() < 5.0 * sigma,
                "ε = {eps}: measured {rate}"
            );
        }
    }

    #[test]
    fn batched_flips_are_position_uniform() {
        // Every position must be flippable — guards against off-by-one in
        // the gap arithmetic (first and last bit included).
        let mut rng = StdRng::seed_from_u64(5);
        let noise = Noise::bernoulli(0.3);
        let n = 64;
        let mut seen = vec![0usize; n];
        for _ in 0..2_000 {
            let mut bits = BitVec::zeros(n);
            noise.apply_frame(&mut bits, None, &mut rng);
            for i in bits.iter_ones() {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "positions never flipped: {:?}",
            seen.iter().enumerate().filter(|(_, &c)| c == 0).count()
        );
        // First and last position flip at rate ≈ ε like any other.
        for &edge in &[0, n - 1] {
            let rate = seen[edge] as f64 / 2_000.0;
            assert!((rate - 0.3).abs() < 0.06, "position {edge}: rate {rate}");
        }
    }

    #[test]
    fn protected_positions_never_flip() {
        let mut rng = StdRng::seed_from_u64(6);
        let noise = Noise::bernoulli(0.45);
        let n = 500;
        let protect = BitVec::from_fn(n, |i| i % 3 == 0);
        let mut bits = BitVec::zeros(n);
        for _ in 0..50 {
            noise.apply_frame(&mut bits, Some(&protect), &mut rng);
            assert!(!bits.intersects(&protect), "a protected bit flipped");
            bits.clear();
        }
    }

    #[test]
    fn stream_seed_separates_round_and_shard() {
        // The swapped-pair collision a plain XOR would have: (round, shard)
        // and (shard, round) must key different streams.
        assert_ne!(noise_stream_seed(7, 1, 3), noise_stream_seed(7, 3, 1));
        assert_ne!(noise_stream_seed(7, 0, 1), noise_stream_seed(7, 1, 0));
        // And the key is a pure function of its inputs.
        assert_eq!(noise_stream_seed(7, 2, 5), noise_stream_seed(7, 2, 5));
    }

    #[test]
    fn apply_to_words_stays_inside_its_range() {
        // Flips land only in [lo, hi) even though the slice has headroom.
        let noise = Noise::bernoulli(0.45);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let mut bits = BitVec::zeros(256);
            let (lo, hi) = (64, 140);
            let words = &mut bits.as_words_mut()[lo / 64..];
            noise.apply_to_words(words, lo, hi, None, &mut rng);
            for i in bits.iter_ones() {
                assert!((lo..hi).contains(&i), "flip at {i} escaped {lo}..{hi}");
            }
        }
    }

    #[test]
    fn apply_to_words_matches_apply_frame_at_full_range() {
        // apply_frame is defined as the lo = 0, hi = len special case; the
        // two must consume the RNG stream identically.
        let noise = Noise::bernoulli(0.2);
        let mut a = BitVec::zeros(300);
        let mut b = BitVec::zeros(300);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        noise.apply_frame(&mut a, None, &mut rng_a);
        noise.apply_to_words(b.as_words_mut(), 0, 300, None, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn apply_to_words_rejects_unaligned_start() {
        let mut words = [0u64; 2];
        let mut rng = StdRng::seed_from_u64(10);
        Noise::bernoulli(0.1).apply_to_words(&mut words, 3, 64, None, &mut rng);
    }

    #[test]
    fn noiseless_apply_frame_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut bits = BitVec::from_fn(100, |i| i % 7 == 0);
        let before = bits.clone();
        Noise::Noiseless.apply_frame(&mut bits, None, &mut rng);
        assert_eq!(bits, before);
    }
}
