//! The noisy beeping channel (Ashkenazi, Gelles & Leshem).

use rand::{Rng, RngExt};

/// The channel model applied to every bit a node receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// The noiseless beeping model of Cornejo & Kuhn: received bits are
    /// exact.
    Noiseless,
    /// The noisy beeping model: each received bit is flipped independently
    /// uniformly at random with the given probability `ε ∈ (0, ½)`.
    Bernoulli(f64),
}

impl Noise {
    /// Constructs a Bernoulli channel after validating `ε ∈ (0, ½)` — the
    /// open interval the paper requires (at `ε = ½` the channel carries no
    /// information; at `ε = 0` use [`Noise::Noiseless`]).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 0.5)`.
    #[must_use]
    pub fn bernoulli(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "noise rate ε = {epsilon} outside (0, 1/2)"
        );
        Noise::Bernoulli(epsilon)
    }

    /// The flip probability (0 for the noiseless channel).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        match *self {
            Noise::Noiseless => 0.0,
            Noise::Bernoulli(e) => e,
        }
    }

    /// Passes one bit through the channel.
    #[must_use]
    pub fn apply<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        match *self {
            Noise::Noiseless => bit,
            Noise::Bernoulli(e) => {
                if rng.random_bool(e) {
                    !bit
                } else {
                    bit
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(Noise::Noiseless.apply(true, &mut rng));
            assert!(!Noise::Noiseless.apply(false, &mut rng));
        }
        assert_eq!(Noise::Noiseless.epsilon(), 0.0);
    }

    #[test]
    fn bernoulli_flip_rate_is_close_to_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = Noise::bernoulli(0.2);
        let flips = (0..20_000).filter(|_| noise.apply(false, &mut rng)).count();
        assert!((3500..=4500).contains(&flips), "flips = {flips}");
        assert_eq!(noise.epsilon(), 0.2);
    }

    #[test]
    fn bernoulli_is_symmetric_across_bit_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = Noise::bernoulli(0.3);
        let zeros_flipped = (0..20_000).filter(|_| noise.apply(false, &mut rng)).count();
        let ones_flipped = (0..20_000).filter(|_| !noise.apply(true, &mut rng)).count();
        let diff = (zeros_flipped as i64 - ones_flipped as i64).abs();
        assert!(diff < 600, "asymmetry {zeros_flipped} vs {ones_flipped}");
    }

    #[test]
    #[should_panic(expected = "outside (0, 1/2)")]
    fn epsilon_zero_rejected() {
        let _ = Noise::bernoulli(0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1/2)")]
    fn epsilon_half_rejected() {
        let _ = Noise::bernoulli(0.5);
    }
}
