//! Undirected simple graphs: materialized CSR, implicit structured
//! topologies, and delta-varint compressed CSR.
//!
//! The engine touches every adjacency list every round, so the
//! representation matters at scale. Three families coexist behind one
//! [`Graph`] type:
//!
//! * **CSR** (`offsets` + flat `neighbors`) — the general-purpose form
//!   every generator in [`crate::topology`] produces.
//! * **Implicit** complete / torus / grid — neighborhoods computed on the
//!   fly from the shape parameters, zero adjacency storage. This is what
//!   makes n = 10M–100M fit in RAM: a 100M-node torus stores two `usize`s
//!   where CSR would store 3.2 GB.
//! * **Delta-varint CSR** — sorted adjacency lists stored as LEB128
//!   varints of consecutive gaps, for scale-free graphs whose structure
//!   can't be computed implicitly. Typically 3–5× smaller than CSR.
//!
//! All read paths below [`Graph::neighbors`] (which is CSR-only and kept
//! for hot slice-based loops) are representation-generic; the engine
//! dispatches on [`Graph::repr`].

use crate::error::GraphError;

/// Index of a node in a [`Graph`] (`0..n`).
pub type NodeId = usize;

/// Which adjacency representation a [`Graph`] uses (see [`Graph::repr`]).
///
/// The representation is a storage/performance property only: two graphs
/// with the same edge set but different representations behave identically
/// in every kernel (proven by the differential oracle in
/// `tests/bitset_oracle.rs`), though `Graph`'s derived `PartialEq` is
/// representational and will not equate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdjacencyRepr {
    /// Materialized compressed sparse row (offsets + neighbor slice).
    Csr,
    /// Implicit complete graph `K_n`; no adjacency storage.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Implicit 2-D torus (wrap-around grid), `rows × cols`, both ≥ 3.
    Torus {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Implicit 2-D grid (no wrap-around), `rows × cols`.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Delta-varint compressed CSR (LEB128 gap encoding of sorted lists).
    DeltaCsr,
}

impl AdjacencyRepr {
    /// A short stable label for metrics and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AdjacencyRepr::Csr => "csr",
            AdjacencyRepr::Complete { .. } => "implicit-complete",
            AdjacencyRepr::Torus { .. } => "implicit-torus",
            AdjacencyRepr::Grid { .. } => "implicit-grid",
            AdjacencyRepr::DeltaCsr => "delta-csr",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Csr {
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
    },
    Complete {
        n: usize,
    },
    Torus {
        rows: usize,
        cols: usize,
    },
    Grid {
        rows: usize,
        cols: usize,
    },
    DeltaCsr {
        n: usize,
        m: usize,
        max_degree: usize,
        /// Byte offset of each node's varint run in `bytes` (`n + 1` entries).
        offsets: Vec<u32>,
        /// Per node: `varint(degree)`, then `varint(first)` and
        /// `varint(gap)` for each subsequent neighbor (gaps ≥ 1 because
        /// lists are sorted and deduplicated).
        bytes: Vec<u8>,
    },
}

/// Appends `value` to `bytes` as an LEB128 varint (7 data bits per byte,
/// high bit = continuation).
pub(crate) fn push_varint(bytes: &mut Vec<u8>, mut value: u64) {
    loop {
        let b = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            bytes.push(b);
            break;
        }
        bytes.push(b | 0x80);
    }
}

/// Decodes one LEB128 varint at `*pos`, advancing `*pos` past it.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

/// An undirected simple graph over nodes `0..n`.
///
/// Stored either materialized (CSR), implicitly (complete/torus/grid shape
/// parameters only), or delta-varint compressed — see [`AdjacencyRepr`]
/// and the module docs. `PartialEq` is representational: it compares
/// storage, not edge sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    repr: Repr,
}

impl Graph {
    /// Builds a CSR graph from an edge list. Duplicate edges collapse;
    /// edge direction is irrelevant.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if an edge joins a node to itself.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Ok(Graph {
            repr: Repr::Csr { offsets, neighbors },
        })
    }

    /// An implicit complete graph `K_n`: every pair of distinct nodes is
    /// adjacent, with zero adjacency storage.
    #[must_use]
    pub fn implicit_complete(n: usize) -> Self {
        Graph {
            repr: Repr::Complete { n },
        }
    }

    /// An implicit `rows × cols` torus (wrap-around grid, exactly
    /// 4-regular). Node `r·cols + c` is adjacent to its four orthogonal
    /// neighbors with both coordinates taken modulo the dimensions —
    /// the same edge set as [`crate::topology::torus`], with zero
    /// adjacency storage.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidTopology`] if either dimension is
    /// below 3 (wrap-around would create multi-edges or self-loops).
    pub fn implicit_torus(rows: usize, cols: usize) -> Result<Self, GraphError> {
        if rows < 3 || cols < 3 {
            return Err(GraphError::InvalidTopology {
                detail: format!("implicit torus needs both dimensions >= 3, got {rows}x{cols}"),
            });
        }
        Ok(Graph {
            repr: Repr::Torus { rows, cols },
        })
    }

    /// An implicit `rows × cols` grid (no wrap-around): the same edge set
    /// as [`crate::topology::grid`], with zero adjacency storage.
    #[must_use]
    pub fn implicit_grid(rows: usize, cols: usize) -> Self {
        Graph {
            repr: Repr::Grid { rows, cols },
        }
    }

    /// Re-encodes this graph as delta-varint compressed CSR: each sorted
    /// adjacency list becomes `varint(degree)`, `varint(first neighbor)`,
    /// then varints of consecutive gaps. Neighbor scans decode on the fly
    /// (ascending, with early exit), trading a few cycles per neighbor for
    /// a 3–5× smaller adjacency on scale-free graphs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidTopology`] if the encoded stream would
    /// exceed `u32` byte offsets (≈4 GiB); such graphs should stay CSR.
    pub fn to_delta_csr(&self) -> Result<Self, GraphError> {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut bytes = Vec::new();
        let mut max_degree = 0usize;
        let mut m2 = 0usize; // directed edge count (2m)
        offsets.push(0u32);
        let mut list = Vec::new();
        for v in 0..n {
            list.clear();
            self.for_each_neighbor(v, |u| list.push(u));
            let deg = list.len();
            max_degree = max_degree.max(deg);
            m2 += deg;
            push_varint(&mut bytes, deg as u64);
            let mut prev = 0u64;
            for (i, &u) in list.iter().enumerate() {
                let u = u as u64;
                if i == 0 {
                    push_varint(&mut bytes, u);
                } else {
                    push_varint(&mut bytes, u - prev);
                }
                prev = u;
            }
            let end = u32::try_from(bytes.len()).map_err(|_| GraphError::InvalidTopology {
                detail: "delta-varint CSR stream exceeds u32 offsets (~4 GiB); keep CSR"
                    .to_string(),
            })?;
            offsets.push(end);
        }
        Ok(Graph {
            repr: Repr::DeltaCsr {
                n,
                m: m2 / 2,
                max_degree,
                offsets,
                bytes,
            },
        })
    }

    /// Materializes this graph as plain CSR (a no-op clone if it already
    /// is). Useful for comparing an implicit or compressed graph against
    /// the general-purpose representation.
    #[must_use]
    pub fn materialize(&self) -> Self {
        if matches!(self.repr, Repr::Csr { .. }) {
            return self.clone();
        }
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for v in 0..n {
            self.for_each_neighbor(v, |u| neighbors.push(u));
            offsets.push(neighbors.len());
        }
        Graph {
            repr: Repr::Csr { offsets, neighbors },
        }
    }

    /// Which adjacency representation this graph uses.
    #[must_use]
    pub fn repr(&self) -> AdjacencyRepr {
        match &self.repr {
            Repr::Csr { .. } => AdjacencyRepr::Csr,
            Repr::Complete { n } => AdjacencyRepr::Complete { n: *n },
            Repr::Torus { rows, cols } => AdjacencyRepr::Torus {
                rows: *rows,
                cols: *cols,
            },
            Repr::Grid { rows, cols } => AdjacencyRepr::Grid {
                rows: *rows,
                cols: *cols,
            },
            Repr::DeltaCsr { .. } => AdjacencyRepr::DeltaCsr,
        }
    }

    /// Bytes of adjacency storage (offsets + neighbor data; zero for
    /// implicit shapes). The number the compressed modes exist to shrink.
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => {
                offsets.len() * size_of::<usize>() + neighbors.len() * size_of::<NodeId>()
            }
            Repr::Complete { .. } | Repr::Torus { .. } | Repr::Grid { .. } => 0,
            Repr::DeltaCsr { offsets, bytes, .. } => offsets.len() * size_of::<u32>() + bytes.len(),
        }
    }

    /// The number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match &self.repr {
            Repr::Csr { offsets, .. } => offsets.len() - 1,
            Repr::Complete { n } => *n,
            Repr::Torus { rows, cols } | Repr::Grid { rows, cols } => rows * cols,
            Repr::DeltaCsr { n, .. } => *n,
        }
    }

    /// The number of undirected edges `m`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        match &self.repr {
            Repr::Csr { neighbors, .. } => neighbors.len() / 2,
            Repr::Complete { n } => n * n.saturating_sub(1) / 2,
            Repr::Torus { rows, cols } => 2 * rows * cols,
            Repr::Grid { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    0
                } else {
                    rows * (cols - 1) + cols * (rows - 1)
                }
            }
            Repr::DeltaCsr { m, .. } => *m,
        }
    }

    /// The neighbors of `v` as a borrowed sorted slice. **CSR only** —
    /// implicit and delta-compressed graphs have no slice to borrow; use
    /// [`Graph::for_each_neighbor`] or [`Graph::collect_neighbors`] for
    /// representation-generic access.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`, or if the graph is not materialized CSR.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => &neighbors[offsets[v]..offsets[v + 1]],
            other => panic!(
                "Graph::neighbors needs materialized CSR, not {:?} — use for_each_neighbor \
                 or materialize()",
                match other {
                    Repr::Complete { .. } => "implicit-complete",
                    Repr::Torus { .. } => "implicit-torus",
                    Repr::Grid { .. } => "implicit-grid",
                    Repr::DeltaCsr { .. } => "delta-csr",
                    Repr::Csr { .. } => unreachable!(),
                }
            ),
        }
    }

    /// Calls `f` for every neighbor of `v`, ascending. Works for every
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn for_each_neighbor<F: FnMut(NodeId)>(&self, v: NodeId, mut f: F) {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => {
                for &u in &neighbors[offsets[v]..offsets[v + 1]] {
                    f(u);
                }
            }
            Repr::Complete { n } => {
                assert!(v < *n);
                for u in 0..*n {
                    if u != v {
                        f(u);
                    }
                }
            }
            Repr::Torus { rows, cols } => {
                assert!(v < rows * cols);
                let (r, c) = (v / cols, v % cols);
                let mut nbrs = [
                    ((r + rows - 1) % rows) * cols + c,
                    (r * cols) + (c + cols - 1) % cols,
                    (r * cols) + (c + 1) % cols,
                    ((r + 1) % rows) * cols + c,
                ];
                nbrs.sort_unstable();
                for u in nbrs {
                    f(u);
                }
            }
            Repr::Grid { rows, cols } => {
                assert!(v < rows * cols);
                let (r, c) = (v / cols, v % cols);
                if r > 0 {
                    f(v - cols);
                }
                if c > 0 {
                    f(v - 1);
                }
                if c + 1 < *cols {
                    f(v + 1);
                }
                if r + 1 < *rows {
                    f(v + cols);
                }
            }
            Repr::DeltaCsr { offsets, bytes, .. } => {
                let mut pos = offsets[v] as usize;
                let deg = read_varint(bytes, &mut pos) as usize;
                let mut u = 0u64;
                for i in 0..deg {
                    let step = read_varint(bytes, &mut pos);
                    u = if i == 0 { step } else { u + step };
                    f(u as usize);
                }
            }
        }
    }

    /// Calls `f` for every neighbor `u` of `v` with `lo <= u < hi`,
    /// ascending. Decoding stops as soon as a neighbor `>= hi` is seen
    /// (lists are sorted in every representation), which is what makes
    /// sharded scatter affordable on compressed graphs.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn for_each_neighbor_in_range<F: FnMut(NodeId)>(
        &self,
        v: NodeId,
        lo: NodeId,
        hi: NodeId,
        mut f: F,
    ) {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => {
                let adj = &neighbors[offsets[v]..offsets[v + 1]];
                let start = adj.partition_point(|&u| u < lo);
                for &u in &adj[start..] {
                    if u >= hi {
                        break;
                    }
                    f(u);
                }
            }
            Repr::Complete { n } => {
                assert!(v < *n);
                for u in lo..hi.min(*n) {
                    if u != v {
                        f(u);
                    }
                }
            }
            _ => {
                self.for_each_neighbor(v, |u| {
                    if u >= lo && u < hi {
                        f(u);
                    }
                });
            }
        }
    }

    /// Whether any neighbor of `v` satisfies `pred` (short-circuiting).
    /// Works for every representation.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn any_neighbor<F: FnMut(NodeId) -> bool>(&self, v: NodeId, mut pred: F) -> bool {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => neighbors[offsets[v]..offsets[v + 1]]
                .iter()
                .any(|&u| pred(u)),
            Repr::Complete { n } => {
                assert!(v < *n);
                (0..*n).any(|u| u != v && pred(u))
            }
            _ => {
                let mut hit = false;
                self.for_each_neighbor(v, |u| hit = hit || pred(u));
                hit
            }
        }
    }

    /// The neighbors of `v` as an owned sorted vector. Works for every
    /// representation (unlike the borrowed [`Graph::neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn collect_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// The degree of `v`. O(1) in every representation.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        match &self.repr {
            Repr::Csr { offsets, .. } => offsets[v + 1] - offsets[v],
            Repr::Complete { n } => {
                assert!(v < *n);
                n - 1
            }
            Repr::Torus { rows, cols } => {
                assert!(v < rows * cols);
                4
            }
            Repr::Grid { rows, cols } => {
                assert!(v < rows * cols);
                let (r, c) = (v / cols, v % cols);
                usize::from(r > 0)
                    + usize::from(c > 0)
                    + usize::from(c + 1 < *cols)
                    + usize::from(r + 1 < *rows)
            }
            Repr::DeltaCsr { offsets, bytes, .. } => {
                let mut pos = offsets[v] as usize;
                read_varint(bytes, &mut pos) as usize
            }
        }
    }

    /// The maximum degree `Δ` (0 for an empty or edgeless graph). This is
    /// the parameter every bound in the paper is expressed in. O(1) for
    /// implicit and delta-compressed graphs.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        match &self.repr {
            Repr::Csr { .. } => (0..self.node_count())
                .map(|v| self.degree(v))
                .max()
                .unwrap_or(0),
            Repr::Complete { n } => n.saturating_sub(1),
            Repr::Torus { .. } => 4,
            Repr::Grid { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    0
                } else {
                    (if *rows > 2 { 2 } else { rows - 1 }) + (if *cols > 2 { 2 } else { cols - 1 })
                }
            }
            Repr::DeltaCsr { max_degree, .. } => *max_degree,
        }
    }

    /// Whether `{u, v}` is an edge. O(1) for implicit shapes, a decode
    /// scan (CSR: binary search) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match &self.repr {
            Repr::Csr { offsets, neighbors } => neighbors[offsets[u]..offsets[u + 1]]
                .binary_search(&v)
                .is_ok(),
            Repr::Complete { n } => {
                assert!(u < *n);
                v < *n && u != v
            }
            _ => {
                if v >= self.node_count() {
                    assert!(u < self.node_count());
                    return false;
                }
                self.any_neighbor(u, |w| w == v)
            }
        }
    }

    /// All edges as `(min, max)` pairs, each once, lexicographic order.
    /// Materializes the full list — intended for tests and small graphs,
    /// not the 10M+-node implicit shapes.
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.node_count() {
            self.for_each_neighbor(u, |v| {
                if u < v {
                    out.push((u, v));
                }
            });
        }
        out
    }

    /// BFS distances from `source`; `None` for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    #[must_use]
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        assert!(source < self.node_count());
        let mut dist = vec![None; self.node_count()];
        dist[source] = Some(0);
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            self.for_each_neighbor(u, |v| {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            });
        }
        dist
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }

    /// The diameter `D` of the graph, or `None` if disconnected (or empty).
    /// Runs BFS from every node; fine at simulation scales.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut best = 0;
        for v in 0..self.node_count() {
            for d in self.bfs_distances(v) {
                best = best.max(d?);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.diameter(), None);
        let g = Graph::from_edges(5, &[]).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_listing() {
        let g = triangle_plus_tail();
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn bfs_and_diameter() {
        let g = triangle_plus_tail();
        let d = g.bfs_distances(3);
        assert_eq!(d, vec![Some(2), Some(2), Some(1), Some(0)]);
        assert_eq!(g.diameter(), Some(2));
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.diameter(), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        let mut bytes = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &values {
            push_varint(&mut bytes, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&bytes, &mut pos), v);
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn implicit_complete_matches_csr() {
        for n in [0usize, 1, 2, 5, 9] {
            let imp = Graph::implicit_complete(n);
            assert_eq!(imp.node_count(), n);
            assert_eq!(imp.edge_count(), n * n.saturating_sub(1) / 2);
            assert_eq!(imp.max_degree(), n.saturating_sub(1));
            let mat = imp.materialize();
            assert_eq!(mat.repr(), AdjacencyRepr::Csr);
            for v in 0..n {
                assert_eq!(imp.collect_neighbors(v), mat.neighbors(v));
                assert_eq!(imp.degree(v), mat.degree(v));
            }
        }
    }

    #[test]
    fn implicit_torus_matches_generator() {
        for (r, c) in [(3, 3), (3, 4), (4, 3), (5, 7)] {
            let imp = Graph::implicit_torus(r, c).unwrap();
            let gen = crate::topology::torus(r, c).unwrap();
            assert_eq!(imp.node_count(), gen.node_count());
            assert_eq!(imp.edge_count(), gen.edge_count());
            assert_eq!(imp.edges(), gen.edges());
            for v in 0..imp.node_count() {
                assert_eq!(imp.collect_neighbors(v), gen.neighbors(v));
                assert_eq!(imp.degree(v), 4);
            }
        }
        assert!(Graph::implicit_torus(2, 5).is_err());
        assert!(Graph::implicit_torus(3, 2).is_err());
    }

    #[test]
    fn implicit_grid_matches_generator() {
        for (r, c) in [(1, 1), (1, 6), (4, 1), (2, 2), (3, 5), (6, 4)] {
            let imp = Graph::implicit_grid(r, c);
            let gen = crate::topology::grid(r, c).unwrap();
            assert_eq!(imp.node_count(), gen.node_count());
            assert_eq!(imp.edge_count(), gen.edge_count());
            assert_eq!(imp.edges(), gen.edges());
            assert_eq!(imp.max_degree(), gen.max_degree());
            for v in 0..imp.node_count() {
                assert_eq!(imp.collect_neighbors(v), gen.neighbors(v));
                assert_eq!(imp.degree(v), gen.degree(v));
            }
        }
    }

    #[test]
    fn delta_csr_roundtrips_and_compresses() {
        let g = triangle_plus_tail();
        let dc = g.to_delta_csr().unwrap();
        assert_eq!(dc.repr(), AdjacencyRepr::DeltaCsr);
        assert_eq!(dc.node_count(), g.node_count());
        assert_eq!(dc.edge_count(), g.edge_count());
        assert_eq!(dc.max_degree(), g.max_degree());
        assert_eq!(dc.edges(), g.edges());
        for v in 0..g.node_count() {
            assert_eq!(dc.collect_neighbors(v), g.neighbors(v));
            assert_eq!(dc.degree(v), g.degree(v));
        }
        assert_eq!(dc.materialize(), g);
        assert!(dc.adjacency_bytes() < g.adjacency_bytes());
        assert!(dc.has_edge(0, 1));
        assert!(!dc.has_edge(0, 3));
        assert!(!dc.has_edge(0, 99));
    }

    #[test]
    fn range_scans_agree_with_full_scans() {
        let g = crate::topology::torus(4, 5).unwrap();
        for graph in [
            g.clone(),
            g.to_delta_csr().unwrap(),
            Graph::implicit_torus(4, 5).unwrap(),
            Graph::implicit_complete(20),
        ] {
            for v in 0..graph.node_count() {
                for (lo, hi) in [(0, 20), (0, 7), (7, 13), (13, 20), (5, 5)] {
                    let mut ranged = Vec::new();
                    graph.for_each_neighbor_in_range(v, lo, hi, |u| ranged.push(u));
                    let expect: Vec<_> = graph
                        .collect_neighbors(v)
                        .into_iter()
                        .filter(|&u| u >= lo && u < hi)
                        .collect();
                    assert_eq!(ranged, expect, "v={v} lo={lo} hi={hi}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "materialized CSR")]
    fn neighbors_panics_on_implicit() {
        let g = Graph::implicit_complete(4);
        let _ = g.neighbors(0);
    }
}
