//! Undirected simple graphs in compressed sparse row form.

use crate::error::GraphError;

/// Index of a node in a [`Graph`] (`0..n`).
pub type NodeId = usize;

/// An undirected simple graph over nodes `0..n`, stored in CSR form for
/// cache-friendly neighborhood scans (the engine touches every adjacency
/// list every round).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges collapse; edge
    /// direction is irrelevant.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if an edge joins a node to itself.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Ok(Graph { offsets, neighbors })
    }

    /// The number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges `m`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The maximum degree `Δ` (0 for an empty or edgeless graph). This is
    /// the parameter every bound in the paper is expressed in.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge (binary search over the sorted adjacency
    /// list).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// All edges as `(min, max)` pairs, each once, lexicographic order.
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.node_count() {
            for &v in self.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// BFS distances from `source`; `None` for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    #[must_use]
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        assert!(source < self.node_count());
        let mut dist = vec![None; self.node_count()];
        dist[source] = Some(0);
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in self.neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }

    /// The diameter `D` of the graph, or `None` if disconnected (or empty).
    /// Runs BFS from every node; fine at simulation scales.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut best = 0;
        for v in 0..self.node_count() {
            for d in self.bfs_distances(v) {
                best = best.max(d?);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.diameter(), None);
        let g = Graph::from_edges(5, &[]).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_listing() {
        let g = triangle_plus_tail();
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn bfs_and_diameter() {
        let g = triangle_plus_tail();
        let d = g.bfs_distances(3);
        assert_eq!(d, vec![Some(2), Some(2), Some(1), Some(0)]);
        assert_eq!(g.diameter(), Some(2));
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.diameter(), None);
        assert!(!g.is_connected());
    }
}
