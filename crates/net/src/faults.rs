//! Deterministic node-fault plans: the overlay between submitted actions
//! and the channel.
//!
//! The paper assumes every node runs its protocol faithfully. A
//! [`FaultPlan`] drops that assumption while keeping the engine's
//! determinism contract intact: it assigns a [`FaultKind`] to a subset of
//! nodes, and the engine applies the plan to the *submitted* actions of
//! every round before the neighborhood OR and the channel run. With a plan
//! installed, a transcript is a pure function of
//! `(graph, channel, faults, seed, actions, shard_count)` — still
//! bit-identical at every thread count, because the overlay edits the
//! beeper bitmap before the round fans out into shards and never touches
//! the per-shard channel streams.
//!
//! Plans are either written down explicitly
//! ([`FaultPlan::try_from_assignments`]) or *realized* from a seed
//! ([`FaultPlan::realize`]): a fraction of the nodes is sampled without
//! replacement from the reserved [`FAULT_PLAN_STREAM`] shard of the same
//! counter-keyed generator the channel models use, so the faulty set is
//! reproducible from the seed alone and independent of every channel
//! stream.

use crate::error::NetError;
use crate::node::Action;
use crate::noise::noise_stream_seed;
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The reserved shard index of the fault-plan realization stream.
///
/// [`FaultPlan::realize`] draws its node sample from
/// `StdRng::seed_from_u64(noise_stream_seed(seed, 0, FAULT_PLAN_STREAM))`.
/// Like [`ROUND_STATE_STREAM`](crate::ROUND_STATE_STREAM) (`u64::MAX`),
/// this index is far outside any real shard range (shard counts are small
/// constants), so the plan's randomness never collides with a channel
/// noise stream or the Gilbert–Elliott state stream.
pub const FAULT_PLAN_STREAM: u64 = u64::MAX - 1;

/// How a faulty node misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node runs correctly until engine round `round`, then halts: from
    /// that round on it never beeps *and hears nothing* — its received bit
    /// is forced to 0 after the channel, so protocol feedback sees silence.
    Crash {
        /// First engine round (0-based, the network's cumulative round
        /// counter) in which the node is down.
        round: u64,
    },
    /// Byzantine jammer: the node beeps in every round regardless of its
    /// protocol. On a carrier-sense channel this is indistinguishable from
    /// an honest node that legitimately beeps every round.
    ByzantineSpam,
    /// Byzantine mute: the node never beeps (it still hears normally). The
    /// OR-channel dual of [`FaultKind::ByzantineSpam`].
    ByzantineMute,
}

impl FaultKind {
    /// The stable spec/report keyword of this kind (`crash`, `spam`,
    /// `mute`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::ByzantineSpam => "spam",
            FaultKind::ByzantineMute => "mute",
        }
    }
}

/// A deterministic assignment of [`FaultKind`]s to nodes.
///
/// The plan sits between submitted actions and the channel: in every round
/// the engine overrides the actions of faulty nodes
/// ([`effective_action`](Self::effective_action) /
/// [`apply_to_beepers`](Self::apply_to_beepers)) *before* the neighborhood
/// OR, and forces crashed nodes' received bits to 0
/// ([`silence_crashed`](Self::silence_crashed)) *after* the channel. An
/// empty plan (the default on every [`crate::BeepNetwork`]) leaves each
/// round — including its RNG streams — byte-identical to a plan-free run.
///
/// ```
/// use beep_bits::BitVec;
/// use beep_net::{topology, BeepNetwork, FaultKind, FaultPlan, Noise};
///
/// let plan = FaultPlan::try_from_assignments(vec![
///     (1, FaultKind::ByzantineSpam),
///     (3, FaultKind::Crash { round: 1 }),
/// ])
/// .unwrap();
/// let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
/// net.set_fault_plan(plan).unwrap();
/// // Round 0: nobody submits a beep, but the spammer at node 1 beeps
/// // anyway — nodes 0..=2 hear it.
/// let heard = net.run_round_bitset(&BitVec::zeros(5)).unwrap();
/// assert_eq!(heard.to_string(), "11100");
/// // Round 1: node 3 submits a beep but has crashed — silence, and the
/// // spammer's beep cannot reach the deaf node 3 either.
/// let heard = net.run_round_bitset(&BitVec::from_indices(5, [3])).unwrap();
/// assert_eq!(heard.to_string(), "11100");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Assignments sorted by node id, one per node.
    assignments: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// The empty plan: every node behaves. Identical to `Default`.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit `(node, kind)` assignments.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidFaultPlan`] if a node is assigned twice.
    pub fn try_from_assignments(
        mut assignments: Vec<(usize, FaultKind)>,
    ) -> Result<Self, NetError> {
        assignments.sort_by_key(|&(node, _)| node);
        if let Some(w) = assignments.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(NetError::InvalidFaultPlan {
                detail: format!("node {} assigned two faults", w[0].0),
            });
        }
        Ok(FaultPlan { assignments })
    }

    /// Realizes a plan over `n` nodes: `⌊fraction · n⌋` distinct nodes are
    /// sampled uniformly without replacement (partial Fisher–Yates) from
    /// the seed's reserved [`FAULT_PLAN_STREAM`], and each gets `kind`.
    ///
    /// The sample is a pure function of `(n, fraction, seed)` — two plans
    /// realized from the same tuple pick the same nodes — and the stream is
    /// disjoint from every channel stream, so adding faults to a recorded
    /// experiment never perturbs its noise.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidFaultPlan`] if `fraction` is outside `[0, 1]`
    /// (including NaN).
    pub fn realize(n: usize, fraction: f64, kind: FaultKind, seed: u64) -> Result<Self, NetError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(NetError::InvalidFaultPlan {
                detail: format!("fault fraction {fraction} outside [0, 1]"),
            });
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let count = ((fraction * n as f64).floor() as usize).min(n);
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(seed, 0, FAULT_PLAN_STREAM));
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        let mut nodes: Vec<usize> = pool[..count].to_vec();
        nodes.sort_unstable();
        Ok(FaultPlan {
            assignments: nodes.into_iter().map(|v| (v, kind)).collect(),
        })
    }

    /// `true` iff no node is faulty (the plan is a guaranteed no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of faulty nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// The `(node, kind)` assignments, sorted by node id.
    #[must_use]
    pub fn assignments(&self) -> &[(usize, FaultKind)] {
        &self.assignments
    }

    /// The largest faulty node id, if any (plans are validated against the
    /// node count when installed on a network).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.assignments.last().map(|&(node, _)| node)
    }

    /// The fault assigned to `node`, if any.
    #[must_use]
    pub fn fault_of(&self, node: usize) -> Option<FaultKind> {
        self.assignments
            .binary_search_by_key(&node, |&(v, _)| v)
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// `true` iff `node` has crashed by engine round `round`.
    #[must_use]
    pub fn is_crashed(&self, node: usize, round: u64) -> bool {
        matches!(self.fault_of(node), Some(FaultKind::Crash { round: r }) if round >= r)
    }

    /// The action `node` actually performs in `round`, given what its
    /// protocol submitted: crashed and mute nodes listen, spammers beep,
    /// everyone else does as submitted.
    #[must_use]
    pub fn effective_action(&self, node: usize, round: u64, submitted: Action) -> Action {
        match self.fault_of(node) {
            Some(FaultKind::Crash { round: r }) if round >= r => Action::Listen,
            Some(FaultKind::ByzantineSpam) => Action::Beep,
            Some(FaultKind::ByzantineMute) => Action::Listen,
            _ => submitted,
        }
    }

    /// Applies the round's action overrides to a beeper bitmap in place —
    /// the bitset-kernel form of [`effective_action`](Self::effective_action).
    pub fn apply_to_beepers(&self, round: u64, beepers: &mut BitVec) {
        for &(node, kind) in &self.assignments {
            match kind {
                FaultKind::Crash { round: r } => {
                    if round >= r {
                        beepers.set(node, false);
                    }
                }
                FaultKind::ByzantineSpam => beepers.set(node, true),
                FaultKind::ByzantineMute => beepers.set(node, false),
            }
        }
    }

    /// Forces the received bits of nodes crashed by `round` to 0 — crashed
    /// nodes are deaf, so protocol `feedback` sees silence.
    pub fn silence_crashed(&self, round: u64, received: &mut BitVec) {
        for &(node, kind) in &self.assignments {
            if let FaultKind::Crash { round: r } = kind {
                if round >= r {
                    received.set(node, false);
                }
            }
        }
    }

    /// The nodes crashed by `round`, in ascending order.
    pub fn crashed(&self, round: u64) -> impl Iterator<Item = usize> + '_ {
        self.assignments.iter().filter_map(move |&(node, kind)| {
            matches!(kind, FaultKind::Crash { round: r } if round >= r).then_some(node)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_a_no_op() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.max_node(), None);
        let mut beepers = BitVec::from_indices(8, [1, 5]);
        let before = beepers.clone();
        plan.apply_to_beepers(3, &mut beepers);
        plan.silence_crashed(3, &mut beepers);
        assert_eq!(beepers, before);
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = FaultPlan::try_from_assignments(vec![
            (2, FaultKind::ByzantineSpam),
            (2, FaultKind::ByzantineMute),
        ])
        .unwrap_err();
        assert!(matches!(err, NetError::InvalidFaultPlan { .. }), "{err}");
        assert!(err.to_string().contains("node 2"));
    }

    #[test]
    fn assignments_are_sorted_and_queryable() {
        let plan = FaultPlan::try_from_assignments(vec![
            (7, FaultKind::ByzantineMute),
            (2, FaultKind::Crash { round: 4 }),
        ])
        .unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.max_node(), Some(7));
        assert_eq!(plan.assignments()[0].0, 2);
        assert_eq!(plan.fault_of(7), Some(FaultKind::ByzantineMute));
        assert_eq!(plan.fault_of(3), None);
    }

    #[test]
    fn crash_activates_at_its_round() {
        let plan =
            FaultPlan::try_from_assignments(vec![(1, FaultKind::Crash { round: 3 })]).unwrap();
        for round in 0..3 {
            assert!(!plan.is_crashed(1, round));
            assert_eq!(
                plan.effective_action(1, round, Action::Beep),
                Action::Beep,
                "still healthy in round {round}"
            );
        }
        for round in 3..6 {
            assert!(plan.is_crashed(1, round));
            assert_eq!(
                plan.effective_action(1, round, Action::Beep),
                Action::Listen
            );
            assert_eq!(plan.crashed(round).collect::<Vec<_>>(), vec![1]);
        }
        assert!(plan.crashed(0).next().is_none());
    }

    #[test]
    fn spam_and_mute_override_in_both_forms() {
        let plan = FaultPlan::try_from_assignments(vec![
            (0, FaultKind::ByzantineSpam),
            (2, FaultKind::ByzantineMute),
        ])
        .unwrap();
        assert_eq!(plan.effective_action(0, 9, Action::Listen), Action::Beep);
        assert_eq!(plan.effective_action(2, 9, Action::Beep), Action::Listen);
        assert_eq!(plan.effective_action(1, 9, Action::Beep), Action::Beep);
        let mut beepers = BitVec::from_indices(4, [2, 3]);
        plan.apply_to_beepers(9, &mut beepers);
        assert_eq!(beepers.to_string(), "1001");
        // Neither kind is deaf.
        let mut received = BitVec::ones(4);
        plan.silence_crashed(9, &mut received);
        assert_eq!(received.count_ones(), 4);
    }

    #[test]
    fn realize_is_deterministic_and_counts_floor() {
        let a = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 7).unwrap();
        let b = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // Distinct nodes, all in range, sorted.
        let nodes: Vec<usize> = a.assignments().iter().map(|&(v, _)| v).collect();
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(nodes.iter().all(|&v| v < 40));
        // Another seed picks another set (overwhelmingly likely).
        let c = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn realize_edge_fractions() {
        assert!(FaultPlan::realize(10, 0.0, FaultKind::ByzantineMute, 1)
            .unwrap()
            .is_empty());
        let all = FaultPlan::realize(10, 1.0, FaultKind::ByzantineMute, 1).unwrap();
        assert_eq!(all.len(), 10);
        // Sub-1/n fractions floor to zero faulty nodes.
        assert!(FaultPlan::realize(10, 0.09, FaultKind::ByzantineMute, 1)
            .unwrap()
            .is_empty());
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = FaultPlan::realize(10, bad, FaultKind::ByzantineMute, 1).unwrap_err();
            assert!(matches!(err, NetError::InvalidFaultPlan { .. }));
        }
    }

    #[test]
    fn realize_draws_from_the_reserved_stream() {
        // The sample must be reproducible from the documented stream alone:
        // re-derive it here with a hand-rolled Fisher–Yates.
        let n = 16;
        let plan = FaultPlan::realize(n, 0.5, FaultKind::ByzantineSpam, 99).unwrap();
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(99, 0, FAULT_PLAN_STREAM));
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..8 {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        let mut expected = pool[..8].to_vec();
        expected.sort_unstable();
        let got: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn keywords_are_stable() {
        assert_eq!(FaultKind::Crash { round: 0 }.keyword(), "crash");
        assert_eq!(FaultKind::ByzantineSpam.keyword(), "spam");
        assert_eq!(FaultKind::ByzantineMute.keyword(), "mute");
    }
}
