//! Deterministic node-fault plans: the overlay between submitted actions
//! and the channel.
//!
//! The paper assumes every node runs its protocol faithfully. A
//! [`FaultPlan`] drops that assumption while keeping the engine's
//! determinism contract intact: it assigns a [`FaultKind`] to a subset of
//! nodes, and the engine applies the plan to the *submitted* actions of
//! every round before the neighborhood OR and the channel run. With a plan
//! installed, a transcript is a pure function of
//! `(graph, channel, faults, seed, actions, shard_count)` — still
//! bit-identical at every thread count, because the overlay edits the
//! beeper bitmap before the round fans out into shards and never touches
//! the per-shard channel streams.
//!
//! Plans are either written down explicitly
//! ([`FaultPlan::try_from_assignments`]) or *realized* from a seed
//! ([`FaultPlan::realize`]): a fraction of the nodes is sampled without
//! replacement from the reserved [`FAULT_PLAN_STREAM`] shard of the same
//! counter-keyed generator the channel models use, so the faulty set is
//! reproducible from the seed alone and independent of every channel
//! stream.
//!
//! # Adaptive adversaries
//!
//! A static plan fixes its targets before round 0. An [`AdaptivePolicy`]
//! (installed with [`FaultPlan::with_policy`]) instead chooses fresh
//! per-round faults from what the adversary has *observed*: the round's
//! submitted beeper set (a rushing adversary sees submissions before
//! delivery), each node's cumulative beep count, and when the network was
//! last active. The choice is a pure function of that observed transcript
//! prefix plus the reserved [`ADAPTIVE_POLICY_STREAM`] — so adaptive runs
//! stay bit-identical at every thread and shard count, and a policy draws
//! from a stream disjoint from both the channel streams and the static
//! plan realization stream.

use crate::error::NetError;
use crate::node::Action;
use crate::noise::noise_stream_seed;
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The reserved shard index of the fault-plan realization stream.
///
/// [`FaultPlan::realize`] draws its node sample from
/// `StdRng::seed_from_u64(noise_stream_seed(seed, 0, FAULT_PLAN_STREAM))`.
/// Like [`ROUND_STATE_STREAM`](crate::ROUND_STATE_STREAM) (`u64::MAX`),
/// this index is far outside any real shard range (shard counts are small
/// constants), so the plan's randomness never collides with a channel
/// noise stream or the Gilbert–Elliott state stream.
pub const FAULT_PLAN_STREAM: u64 = u64::MAX - 1;

/// The reserved shard index of the adaptive-adversary decision stream.
///
/// An [`AdaptivePolicy`] that needs randomness (e.g.
/// [`AdaptivePolicy::RushingSpam`]'s target selection) draws round `r`'s
/// choices from
/// `StdRng::seed_from_u64(noise_stream_seed(seed, r, ADAPTIVE_POLICY_STREAM))`.
/// This must be its *own* reserved index: keying adaptive draws by
/// [`FAULT_PLAN_STREAM`] would collide with static plan realization at
/// round 0, and reusing [`ROUND_STATE_STREAM`](crate::ROUND_STATE_STREAM)
/// would collide with the channel's per-round state draws in **every**
/// round. The [`crate::RESERVED_STREAMS`] registry (and its collision
/// test) pins all reserved indices pairwise distinct.
pub const ADAPTIVE_POLICY_STREAM: u64 = u64::MAX - 2;

/// How a faulty node misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node runs correctly until engine round `round`, then halts: from
    /// that round on it never beeps *and hears nothing* — its received bit
    /// is forced to 0 after the channel, so protocol feedback sees silence.
    Crash {
        /// First engine round (0-based, the network's cumulative round
        /// counter) in which the node is down.
        round: u64,
    },
    /// Byzantine jammer: the node beeps in every round regardless of its
    /// protocol. On a carrier-sense channel this is indistinguishable from
    /// an honest node that legitimately beeps every round.
    ByzantineSpam,
    /// Byzantine mute: the node never beeps (it still hears normally). The
    /// OR-channel dual of [`FaultKind::ByzantineSpam`].
    ByzantineMute,
}

impl FaultKind {
    /// The stable spec/report keyword of this kind (`crash`, `spam`,
    /// `mute`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::ByzantineSpam => "spam",
            FaultKind::ByzantineMute => "mute",
        }
    }
}

/// What an adaptive adversary observes when choosing one round's faults.
///
/// Everything here is a pure function of the execution prefix (plus the
/// static fault overlay), identical in every kernel at every thread and
/// shard count — which is exactly why adaptive decisions preserve the
/// engine's determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryView<'a> {
    /// The network seed (adaptive draws key their reserved stream off it).
    pub seed: u64,
    /// The engine round about to execute (0-based cumulative counter).
    pub round: u64,
    /// The round's submitted beeper set *after* static fault overrides —
    /// a rushing adversary reacts to submissions before they are
    /// delivered.
    pub beepers: &'a BitVec,
    /// Cumulative effective beeps per node over all earlier rounds.
    pub beeps_per_node: &'a [u64],
    /// The most recent earlier round in which any node effectively beeped
    /// (before adaptive additions), `None` if the network has been silent.
    pub last_activity: Option<u64>,
}

impl AdversaryView<'_> {
    /// Number of nodes in the network.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.beepers.len()
    }
}

/// One round's adaptive fault choices: node sets the adversary forces to
/// beep, forces silent, or deafens. Applied by every kernel through the
/// same two override passes as a static plan: `spam`/`mute` edit the
/// beeper bitmap before the shard fan-out (mute wins where both name a
/// node), `deafen` clears received bits after the channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundFaults {
    spam: Vec<usize>,
    mute: Vec<usize>,
    deafen: Vec<usize>,
}

impl RoundFaults {
    /// The empty decision: the adversary sits this round out.
    #[must_use]
    pub fn none() -> Self {
        RoundFaults::default()
    }

    /// Builds a decision from sorted-or-not node lists (each is sorted
    /// internally; duplicates are harmless — set/clear is idempotent).
    #[must_use]
    pub fn new(mut spam: Vec<usize>, mut mute: Vec<usize>, mut deafen: Vec<usize>) -> Self {
        spam.sort_unstable();
        mute.sort_unstable();
        deafen.sort_unstable();
        RoundFaults { spam, mute, deafen }
    }

    /// `true` iff the decision changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spam.is_empty() && self.mute.is_empty() && self.deafen.is_empty()
    }

    /// Nodes forced to beep this round, ascending.
    #[must_use]
    pub fn spam(&self) -> &[usize] {
        &self.spam
    }

    /// Nodes forced silent this round, ascending.
    #[must_use]
    pub fn mute(&self) -> &[usize] {
        &self.mute
    }

    /// Nodes whose received bit is cleared after the channel, ascending.
    #[must_use]
    pub fn deafen(&self) -> &[usize] {
        &self.deafen
    }

    /// Pass 1: edits the round's beeper bitmap in place — spam bits are
    /// set first, then mute bits cleared, so mute wins on overlap.
    pub fn apply_to_beepers(&self, beepers: &mut BitVec) {
        for &v in &self.spam {
            beepers.set(v, true);
        }
        for &v in &self.mute {
            beepers.set(v, false);
        }
    }

    /// Pass 2: clears deafened nodes' received bits after the channel.
    pub fn apply_to_received(&self, received: &mut BitVec) {
        for &v in &self.deafen {
            received.set(v, false);
        }
    }
}

/// An adversary that chooses faults from the observed execution rather
/// than a static plan. [`AdaptivePolicy`] is the closed enum of shipped
/// implementations (mirroring how [`crate::NoiseModel`] relates to
/// [`crate::ChannelModel`]).
pub trait AdaptiveAdversary {
    /// Stable id string, used in reports and campaign cell ids.
    fn label(&self) -> String;

    /// `true` iff [`decide`](Self::decide) provably returns the empty
    /// decision in every round — such a policy must be a byte-identical
    /// no-op on the transcript (pinned by the golden suite).
    fn is_noop(&self) -> bool;

    /// Chooses this round's faults from the observed prefix. Must be a
    /// pure function of `view` (randomness only via the reserved
    /// [`ADAPTIVE_POLICY_STREAM`] keyed by `(view.seed, view.round)`).
    fn decide(&self, view: &AdversaryView<'_>) -> RoundFaults;
}

/// The closed set of adaptive adversaries the engine ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptivePolicy {
    /// Targets the `budget` nodes with the highest cumulative beep count
    /// (ties to the lower id; nodes that never beeped are not worth a
    /// slot of the budget) and jams them for the round: they are both
    /// muted and deafened — a per-round targeted outage of whoever
    /// carries the most information.
    TargetLoudest {
        /// Maximum nodes jammed per round (0 = provable no-op).
        budget: usize,
    },
    /// A rushing spammer: whenever any node submits a beep this round —
    /// the adversary sees submissions before delivery — or the network
    /// was active within the last `window` rounds, it forces `budget`
    /// silent nodes (drawn without replacement from the reserved
    /// [`ADAPTIVE_POLICY_STREAM`]) to beep too, flooding the carrier
    /// right when the protocol is trying to say something.
    RushingSpam {
        /// Maximum nodes forced to beep per active round (0 = no-op).
        budget: usize,
        /// How many rounds after observed activity the spam keeps going.
        window: u64,
    },
}

impl AdaptiveAdversary for AdaptivePolicy {
    fn label(&self) -> String {
        match *self {
            AdaptivePolicy::TargetLoudest { budget } => format!("loudest-b{budget}"),
            AdaptivePolicy::RushingSpam { budget, window } => {
                format!("rushing-b{budget}-w{window}")
            }
        }
    }

    fn is_noop(&self) -> bool {
        match *self {
            AdaptivePolicy::TargetLoudest { budget }
            | AdaptivePolicy::RushingSpam { budget, .. } => budget == 0,
        }
    }

    fn decide(&self, view: &AdversaryView<'_>) -> RoundFaults {
        match *self {
            AdaptivePolicy::TargetLoudest { budget } => {
                if budget == 0 {
                    return RoundFaults::none();
                }
                let mut loud: Vec<usize> = (0..view.node_count())
                    .filter(|&v| view.beeps_per_node[v] > 0)
                    .collect();
                loud.sort_by(|&a, &b| {
                    view.beeps_per_node[b]
                        .cmp(&view.beeps_per_node[a])
                        .then(a.cmp(&b))
                });
                loud.truncate(budget);
                RoundFaults::new(Vec::new(), loud.clone(), loud)
            }
            AdaptivePolicy::RushingSpam { budget, window } => {
                if budget == 0 {
                    return RoundFaults::none();
                }
                let rushing = view.beepers.count_ones() > 0;
                let lingering = view.last_activity.is_some_and(|a| view.round - a <= window);
                if !rushing && !lingering {
                    return RoundFaults::none();
                }
                let mut silent: Vec<usize> = (0..view.node_count())
                    .filter(|&v| !view.beepers.get(v))
                    .collect();
                let count = budget.min(silent.len());
                let mut rng = StdRng::seed_from_u64(noise_stream_seed(
                    view.seed,
                    view.round,
                    ADAPTIVE_POLICY_STREAM,
                ));
                for i in 0..count {
                    let j = rng.random_range(i..silent.len());
                    silent.swap(i, j);
                }
                silent.truncate(count);
                RoundFaults::new(silent, Vec::new(), Vec::new())
            }
        }
    }
}

/// A deterministic assignment of [`FaultKind`]s to nodes.
///
/// The plan sits between submitted actions and the channel: in every round
/// the engine overrides the actions of faulty nodes
/// ([`effective_action`](Self::effective_action) /
/// [`apply_to_beepers`](Self::apply_to_beepers)) *before* the neighborhood
/// OR, and forces crashed nodes' received bits to 0
/// ([`silence_crashed`](Self::silence_crashed)) *after* the channel. An
/// empty plan (the default on every [`crate::BeepNetwork`]) leaves each
/// round — including its RNG streams — byte-identical to a plan-free run.
///
/// ```
/// use beep_bits::BitVec;
/// use beep_net::{topology, BeepNetwork, FaultKind, FaultPlan, Noise};
///
/// let plan = FaultPlan::try_from_assignments(vec![
///     (1, FaultKind::ByzantineSpam),
///     (3, FaultKind::Crash { round: 1 }),
/// ])
/// .unwrap();
/// let mut net = BeepNetwork::new(topology::path(5).unwrap(), Noise::Noiseless, 0);
/// net.set_fault_plan(plan).unwrap();
/// // Round 0: nobody submits a beep, but the spammer at node 1 beeps
/// // anyway — nodes 0..=2 hear it.
/// let heard = net.run_round_bitset(&BitVec::zeros(5)).unwrap();
/// assert_eq!(heard.to_string(), "11100");
/// // Round 1: node 3 submits a beep but has crashed — silence, and the
/// // spammer's beep cannot reach the deaf node 3 either.
/// let heard = net.run_round_bitset(&BitVec::from_indices(5, [3])).unwrap();
/// assert_eq!(heard.to_string(), "11100");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Assignments sorted by node id, one per node.
    assignments: Vec<(usize, FaultKind)>,
    /// Optional adaptive adversary choosing additional per-round faults
    /// from the observed transcript (applied after the static overrides).
    policy: Option<AdaptivePolicy>,
}

impl FaultPlan {
    /// The empty plan: every node behaves. Identical to `Default`.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit `(node, kind)` assignments.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidFaultPlan`] if a node is assigned twice.
    pub fn try_from_assignments(
        mut assignments: Vec<(usize, FaultKind)>,
    ) -> Result<Self, NetError> {
        assignments.sort_by_key(|&(node, _)| node);
        if let Some(w) = assignments.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(NetError::InvalidFaultPlan {
                detail: format!("node {} assigned two faults", w[0].0),
            });
        }
        Ok(FaultPlan {
            assignments,
            policy: None,
        })
    }

    /// Realizes a plan over `n` nodes: `⌊fraction · n⌋` distinct nodes are
    /// sampled uniformly without replacement (partial Fisher–Yates) from
    /// the seed's reserved [`FAULT_PLAN_STREAM`], and each gets `kind`.
    ///
    /// The sample is a pure function of `(n, fraction, seed)` — two plans
    /// realized from the same tuple pick the same nodes — and the stream is
    /// disjoint from every channel stream, so adding faults to a recorded
    /// experiment never perturbs its noise.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidFaultPlan`] if `fraction` is outside `[0, 1]`
    /// (including NaN).
    pub fn realize(n: usize, fraction: f64, kind: FaultKind, seed: u64) -> Result<Self, NetError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(NetError::InvalidFaultPlan {
                detail: format!("fault fraction {fraction} outside [0, 1]"),
            });
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let count = ((fraction * n as f64).floor() as usize).min(n);
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(seed, 0, FAULT_PLAN_STREAM));
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        let mut nodes: Vec<usize> = pool[..count].to_vec();
        nodes.sort_unstable();
        Ok(FaultPlan {
            assignments: nodes.into_iter().map(|v| (v, kind)).collect(),
            policy: None,
        })
    }

    /// Attaches an [`AdaptivePolicy`] to the plan: from then on the
    /// engine asks the policy for extra per-round faults (computed once
    /// per round, before the shard fan-out) on top of the static
    /// assignments.
    #[must_use]
    pub fn with_policy(mut self, policy: AdaptivePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// A plan with no static assignments, only an adaptive policy.
    #[must_use]
    pub fn from_policy(policy: AdaptivePolicy) -> Self {
        FaultPlan::none().with_policy(policy)
    }

    /// The attached adaptive policy, if any.
    #[must_use]
    pub fn policy(&self) -> Option<AdaptivePolicy> {
        self.policy
    }

    /// `true` iff the attached policy can actually act (present and not a
    /// provable no-op).
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.policy.is_some_and(|p| !p.is_noop())
    }

    /// Asks the attached policy (if it can act) for this round's extra
    /// faults; static-only and no-op-policy plans return the empty
    /// decision without consuming any stream.
    #[must_use]
    pub fn decide(&self, view: &AdversaryView<'_>) -> RoundFaults {
        match self.policy {
            Some(p) if !p.is_noop() => p.decide(view),
            _ => RoundFaults::none(),
        }
    }

    /// `true` iff no node is faulty and no adaptive policy can act — the
    /// plan is a guaranteed (byte-identical) no-op.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty() && !self.is_adaptive()
    }

    /// Number of faulty nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// The `(node, kind)` assignments, sorted by node id.
    #[must_use]
    pub fn assignments(&self) -> &[(usize, FaultKind)] {
        &self.assignments
    }

    /// The largest faulty node id, if any (plans are validated against the
    /// node count when installed on a network).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.assignments.last().map(|&(node, _)| node)
    }

    /// The fault assigned to `node`, if any.
    #[must_use]
    pub fn fault_of(&self, node: usize) -> Option<FaultKind> {
        self.assignments
            .binary_search_by_key(&node, |&(v, _)| v)
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// `true` iff `node` has crashed by engine round `round`.
    #[must_use]
    pub fn is_crashed(&self, node: usize, round: u64) -> bool {
        matches!(self.fault_of(node), Some(FaultKind::Crash { round: r }) if round >= r)
    }

    /// The action `node` actually performs in `round`, given what its
    /// protocol submitted: crashed and mute nodes listen, spammers beep,
    /// everyone else does as submitted.
    #[must_use]
    pub fn effective_action(&self, node: usize, round: u64, submitted: Action) -> Action {
        match self.fault_of(node) {
            Some(FaultKind::Crash { round: r }) if round >= r => Action::Listen,
            Some(FaultKind::ByzantineSpam) => Action::Beep,
            Some(FaultKind::ByzantineMute) => Action::Listen,
            _ => submitted,
        }
    }

    /// Applies the round's action overrides to a beeper bitmap in place —
    /// the bitset-kernel form of [`effective_action`](Self::effective_action).
    pub fn apply_to_beepers(&self, round: u64, beepers: &mut BitVec) {
        for &(node, kind) in &self.assignments {
            match kind {
                FaultKind::Crash { round: r } => {
                    if round >= r {
                        beepers.set(node, false);
                    }
                }
                FaultKind::ByzantineSpam => beepers.set(node, true),
                FaultKind::ByzantineMute => beepers.set(node, false),
            }
        }
    }

    /// Forces the received bits of nodes crashed by `round` to 0 — crashed
    /// nodes are deaf, so protocol `feedback` sees silence.
    pub fn silence_crashed(&self, round: u64, received: &mut BitVec) {
        for &(node, kind) in &self.assignments {
            if let FaultKind::Crash { round: r } = kind {
                if round >= r {
                    received.set(node, false);
                }
            }
        }
    }

    /// The nodes crashed by `round`, in ascending order.
    pub fn crashed(&self, round: u64) -> impl Iterator<Item = usize> + '_ {
        self.assignments.iter().filter_map(move |&(node, kind)| {
            matches!(kind, FaultKind::Crash { round: r } if round >= r).then_some(node)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_a_no_op() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.max_node(), None);
        let mut beepers = BitVec::from_indices(8, [1, 5]);
        let before = beepers.clone();
        plan.apply_to_beepers(3, &mut beepers);
        plan.silence_crashed(3, &mut beepers);
        assert_eq!(beepers, before);
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = FaultPlan::try_from_assignments(vec![
            (2, FaultKind::ByzantineSpam),
            (2, FaultKind::ByzantineMute),
        ])
        .unwrap_err();
        assert!(matches!(err, NetError::InvalidFaultPlan { .. }), "{err}");
        assert!(err.to_string().contains("node 2"));
    }

    #[test]
    fn assignments_are_sorted_and_queryable() {
        let plan = FaultPlan::try_from_assignments(vec![
            (7, FaultKind::ByzantineMute),
            (2, FaultKind::Crash { round: 4 }),
        ])
        .unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.max_node(), Some(7));
        assert_eq!(plan.assignments()[0].0, 2);
        assert_eq!(plan.fault_of(7), Some(FaultKind::ByzantineMute));
        assert_eq!(plan.fault_of(3), None);
    }

    #[test]
    fn crash_activates_at_its_round() {
        let plan =
            FaultPlan::try_from_assignments(vec![(1, FaultKind::Crash { round: 3 })]).unwrap();
        for round in 0..3 {
            assert!(!plan.is_crashed(1, round));
            assert_eq!(
                plan.effective_action(1, round, Action::Beep),
                Action::Beep,
                "still healthy in round {round}"
            );
        }
        for round in 3..6 {
            assert!(plan.is_crashed(1, round));
            assert_eq!(
                plan.effective_action(1, round, Action::Beep),
                Action::Listen
            );
            assert_eq!(plan.crashed(round).collect::<Vec<_>>(), vec![1]);
        }
        assert!(plan.crashed(0).next().is_none());
    }

    #[test]
    fn spam_and_mute_override_in_both_forms() {
        let plan = FaultPlan::try_from_assignments(vec![
            (0, FaultKind::ByzantineSpam),
            (2, FaultKind::ByzantineMute),
        ])
        .unwrap();
        assert_eq!(plan.effective_action(0, 9, Action::Listen), Action::Beep);
        assert_eq!(plan.effective_action(2, 9, Action::Beep), Action::Listen);
        assert_eq!(plan.effective_action(1, 9, Action::Beep), Action::Beep);
        let mut beepers = BitVec::from_indices(4, [2, 3]);
        plan.apply_to_beepers(9, &mut beepers);
        assert_eq!(beepers.to_string(), "1001");
        // Neither kind is deaf.
        let mut received = BitVec::ones(4);
        plan.silence_crashed(9, &mut received);
        assert_eq!(received.count_ones(), 4);
    }

    #[test]
    fn realize_is_deterministic_and_counts_floor() {
        let a = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 7).unwrap();
        let b = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // Distinct nodes, all in range, sorted.
        let nodes: Vec<usize> = a.assignments().iter().map(|&(v, _)| v).collect();
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(nodes.iter().all(|&v| v < 40));
        // Another seed picks another set (overwhelmingly likely).
        let c = FaultPlan::realize(40, 0.25, FaultKind::ByzantineSpam, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn realize_edge_fractions() {
        assert!(FaultPlan::realize(10, 0.0, FaultKind::ByzantineMute, 1)
            .unwrap()
            .is_empty());
        let all = FaultPlan::realize(10, 1.0, FaultKind::ByzantineMute, 1).unwrap();
        assert_eq!(all.len(), 10);
        // Sub-1/n fractions floor to zero faulty nodes.
        assert!(FaultPlan::realize(10, 0.09, FaultKind::ByzantineMute, 1)
            .unwrap()
            .is_empty());
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = FaultPlan::realize(10, bad, FaultKind::ByzantineMute, 1).unwrap_err();
            assert!(matches!(err, NetError::InvalidFaultPlan { .. }));
        }
    }

    #[test]
    fn realize_draws_from_the_reserved_stream() {
        // The sample must be reproducible from the documented stream alone:
        // re-derive it here with a hand-rolled Fisher–Yates.
        let n = 16;
        let plan = FaultPlan::realize(n, 0.5, FaultKind::ByzantineSpam, 99).unwrap();
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(99, 0, FAULT_PLAN_STREAM));
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..8 {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        let mut expected = pool[..8].to_vec();
        expected.sort_unstable();
        let got: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn keywords_are_stable() {
        assert_eq!(FaultKind::Crash { round: 0 }.keyword(), "crash");
        assert_eq!(FaultKind::ByzantineSpam.keyword(), "spam");
        assert_eq!(FaultKind::ByzantineMute.keyword(), "mute");
    }

    fn view<'a>(
        seed: u64,
        round: u64,
        beepers: &'a BitVec,
        beeps: &'a [u64],
        last_activity: Option<u64>,
    ) -> AdversaryView<'a> {
        AdversaryView {
            seed,
            round,
            beepers,
            beeps_per_node: beeps,
            last_activity,
        }
    }

    #[test]
    fn policy_labels_are_stable() {
        use crate::faults::AdaptiveAdversary;
        assert_eq!(
            AdaptivePolicy::TargetLoudest { budget: 2 }.label(),
            "loudest-b2"
        );
        assert_eq!(
            AdaptivePolicy::RushingSpam {
                budget: 3,
                window: 4
            }
            .label(),
            "rushing-b3-w4"
        );
    }

    #[test]
    fn zero_budget_policies_are_noops_and_keep_plans_empty() {
        use crate::faults::AdaptiveAdversary;
        for p in [
            AdaptivePolicy::TargetLoudest { budget: 0 },
            AdaptivePolicy::RushingSpam {
                budget: 0,
                window: 9,
            },
        ] {
            assert!(p.is_noop());
            let beepers = BitVec::ones(6);
            let beeps = vec![5; 6];
            assert!(p.decide(&view(1, 3, &beepers, &beeps, Some(2))).is_empty());
            let plan = FaultPlan::from_policy(p);
            assert!(plan.is_empty(), "no-op policy must keep the plan empty");
            assert!(!plan.is_adaptive());
        }
        let active = FaultPlan::from_policy(AdaptivePolicy::TargetLoudest { budget: 1 });
        assert!(!active.is_empty());
        assert!(active.is_adaptive());
        assert_eq!(active.len(), 0, "no static assignments");
    }

    #[test]
    fn target_loudest_jams_top_beepers_ties_to_lower_id() {
        let p = AdaptivePolicy::TargetLoudest { budget: 2 };
        let beepers = BitVec::zeros(6);
        // Counts: node 4 loudest, nodes 1 and 3 tied — the tie goes to 1.
        let beeps = vec![0, 3, 0, 3, 7, 1];
        let d = FaultPlan::from_policy(p).decide(&view(9, 5, &beepers, &beeps, Some(4)));
        assert_eq!(d.mute(), &[1, 4]);
        assert_eq!(d.deafen(), &[1, 4]);
        assert!(d.spam().is_empty());
        // An all-silent history gives the adversary nothing to target.
        let silent = vec![0; 6];
        assert!(FaultPlan::from_policy(p)
            .decide(&view(9, 5, &beepers, &silent, None))
            .is_empty());
    }

    #[test]
    fn rushing_spam_reacts_to_submissions_and_lingers_in_its_window() {
        let p = AdaptivePolicy::RushingSpam {
            budget: 2,
            window: 3,
        };
        let plan = FaultPlan::from_policy(p);
        let beeps = vec![0; 8];
        // Nothing observed, nothing submitted: no spam.
        let quiet = BitVec::zeros(8);
        assert!(plan.decide(&view(7, 0, &quiet, &beeps, None)).is_empty());
        // A submission this round triggers spam of silent nodes only.
        let loud = BitVec::from_indices(8, [2]);
        let d = plan.decide(&view(7, 1, &loud, &beeps, None));
        assert_eq!(d.spam().len(), 2);
        assert!(d.spam().iter().all(|&v| v != 2 && v < 8));
        assert!(d.mute().is_empty() && d.deafen().is_empty());
        // Within the window after observed activity the spam keeps going…
        assert!(!plan.decide(&view(7, 4, &quiet, &beeps, Some(1))).is_empty());
        // …and stops once the window has passed.
        assert!(plan.decide(&view(7, 5, &quiet, &beeps, Some(1))).is_empty());
    }

    #[test]
    fn rushing_spam_draws_from_the_reserved_adaptive_stream() {
        // Re-derive the target selection from the documented stream alone.
        let p = AdaptivePolicy::RushingSpam {
            budget: 3,
            window: 0,
        };
        let n = 12;
        let loud = BitVec::from_indices(n, [5]);
        let beeps = vec![0; n];
        let d = FaultPlan::from_policy(p).decide(&view(42, 6, &loud, &beeps, None));
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(42, 6, ADAPTIVE_POLICY_STREAM));
        let mut silent: Vec<usize> = (0..n).filter(|&v| v != 5).collect();
        for i in 0..3 {
            let j = rng.random_range(i..silent.len());
            silent.swap(i, j);
        }
        let mut expected = silent[..3].to_vec();
        expected.sort_unstable();
        assert_eq!(d.spam(), expected.as_slice());
        // Same view, same decision: the draw is counter-keyed, not stateful.
        let again = FaultPlan::from_policy(p).decide(&view(42, 6, &loud, &beeps, None));
        assert_eq!(d, again);
    }

    #[test]
    fn round_faults_apply_spam_then_mute_then_deafen() {
        let d = RoundFaults::new(vec![3, 1], vec![3], vec![0]);
        assert_eq!(
            (d.spam(), d.mute(), d.deafen()),
            (&[1, 3][..], &[3][..], &[0][..])
        );
        let mut beepers = BitVec::from_indices(5, [4]);
        d.apply_to_beepers(&mut beepers);
        // 1 spammed, 3 spammed-then-muted (mute wins), 4 untouched.
        assert_eq!(beepers.to_string(), "01001");
        let mut received = BitVec::ones(5);
        d.apply_to_received(&mut received);
        assert_eq!(received.to_string(), "01111");
        assert!(RoundFaults::none().is_empty());
        assert!(!d.is_empty());
    }

    #[test]
    fn reserved_stream_ids_never_collide() {
        // Satellite fix: adaptive-policy draws must not collide with the
        // channel's ROUND_STATE_STREAM (or any other reserved stream).
        // Enumerate ALL reserved shard ids: pairwise distinct, far outside
        // any real shard range, and keying distinct streams.
        let streams = crate::RESERVED_STREAMS;
        assert_eq!(streams.len(), 4, "register new reserved streams here");
        for (i, &(name_a, id_a)) in streams.iter().enumerate() {
            assert!(
                id_a > u64::MAX - 64,
                "{name_a} must sit far above real shard indices"
            );
            for &(name_b, id_b) in &streams[i + 1..] {
                assert_ne!(id_a, id_b, "{name_a} collides with {name_b}");
                // And the keyed streams differ at every (seed, round) the
                // reserved draws actually use (round 0 = realization).
                for round in [0u64, 1, 7] {
                    assert_ne!(
                        noise_stream_seed(11, round, id_a),
                        noise_stream_seed(11, round, id_b),
                        "{name_a} and {name_b} key the same stream at round {round}"
                    );
                }
            }
        }
        let ids: Vec<u64> = streams.iter().map(|&(_, id)| id).collect();
        assert!(ids.contains(&crate::ROUND_STATE_STREAM));
        assert!(ids.contains(&FAULT_PLAN_STREAM));
        assert!(ids.contains(&ADAPTIVE_POLICY_STREAM));
        assert!(ids.contains(&crate::PROTOCOL_COIN_STREAM));
    }
}
