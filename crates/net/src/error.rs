//! Error types for graph construction and network execution.

use std::error::Error;
use std::fmt;

/// Errors from building a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The graph size.
        n: usize,
    },
    /// An edge connected a node to itself (the beeping model's graphs are
    /// simple).
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// A topology generator was asked for an impossible shape.
    InvalidTopology {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::InvalidTopology { detail } => write!(f, "invalid topology: {detail}"),
        }
    }
}

impl Error for GraphError {}

/// Errors from running a [`crate::BeepNetwork`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The action slice length did not match the node count.
    ActionCount {
        /// Expected number of actions (= node count).
        expected: usize,
        /// Provided number of actions.
        actual: usize,
    },
    /// A frame in a [`crate::BeepNetwork::run_frame`] batch had the wrong
    /// length (all transmitted frames must cover the same bit-rounds).
    FrameLength {
        /// The node whose frame was malformed.
        node: usize,
        /// Expected frame length in bit-rounds.
        expected: usize,
        /// Provided frame length.
        actual: usize,
    },
    /// A noise rate outside the paper's open interval `ε ∈ (0, ½)` was
    /// requested (see [`crate::Noise::try_bernoulli`]).
    InvalidNoise {
        /// The rejected flip probability.
        epsilon: f64,
    },
    /// A protocol run exceeded its round budget without completing.
    RoundBudgetExhausted {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// A channel model was built with out-of-range parameters (see the
    /// `try_new` constructors in [`crate::channel`]).
    InvalidChannel {
        /// Human-readable description of the offending parameter.
        detail: String,
    },
    /// A fault plan was malformed (duplicate node, out-of-range fraction,
    /// or a node id beyond the network it was installed on) — see
    /// [`crate::FaultPlan`].
    InvalidFaultPlan {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ActionCount { expected, actual } => {
                write!(f, "got {actual} actions for {expected} nodes")
            }
            NetError::FrameLength {
                node,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "node {node}'s frame is {actual} bits but the batch runs {expected} rounds"
                )
            }
            NetError::InvalidNoise { epsilon } => {
                write!(f, "noise rate ε = {epsilon} outside (0, 1/2)")
            }
            NetError::RoundBudgetExhausted { budget } => {
                write!(f, "protocols did not complete within {budget} rounds")
            }
            NetError::InvalidChannel { detail } => {
                write!(f, "invalid channel model: {detail}")
            }
            NetError::InvalidFaultPlan { detail } => {
                write!(f, "invalid fault plan: {detail}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        assert!(GraphError::NodeOutOfRange { node: 9, n: 5 }
            .to_string()
            .contains('9'));
        assert!(GraphError::SelfLoop { node: 3 }.to_string().contains('3'));
        assert!(NetError::ActionCount {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains('4'));
        assert!(NetError::RoundBudgetExhausted { budget: 100 }
            .to_string()
            .contains("100"));
        assert!(NetError::InvalidNoise { epsilon: 0.7 }
            .to_string()
            .contains("0.7"));
        assert!(NetError::InvalidChannel {
            detail: "eps_bad = 0.9".into()
        }
        .to_string()
        .contains("0.9"));
        assert!(NetError::InvalidFaultPlan {
            detail: "node 7 assigned two faults".into()
        }
        .to_string()
        .contains("node 7"));
        assert!(NetError::FrameLength {
            node: 2,
            expected: 8,
            actual: 6
        }
        .to_string()
        .contains('6'));
    }
}
