//! Round/energy accounting and transcript recording.

use beep_bits::BitVec;

/// Cumulative statistics of a [`crate::BeepNetwork`] run.
///
/// `rounds` is the unit every theorem in the paper is stated in; `beeps`
/// counts total energy pulses, the natural energy measure for the weak
/// devices the model targets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rounds executed so far.
    pub rounds: usize,
    /// Total beeps emitted across all nodes and rounds.
    pub beeps: u64,
    /// Total listen actions across all nodes and rounds.
    pub listens: u64,
}

impl NetStats {
    /// Mean beeps per round (0 for an unstarted network).
    #[must_use]
    pub fn beeps_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.beeps as f64 / self.rounds as f64
        }
    }
}

/// An optional per-round record of which nodes beeped.
///
/// Row `r` is a node-indexed bitmap of the beepers in round `r`. The
/// lower-bound experiments (Lemma 14, Theorem 22) reason about how many
/// *distinct transcripts* a protocol can produce; this type is how they
/// observe transcripts. It is also invaluable when debugging protocols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transcript {
    rows: Vec<BitVec>,
}

impl Transcript {
    /// Creates an empty transcript.
    #[must_use]
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Appends one round's beep bitmap.
    pub fn push(&mut self, beepers: BitVec) {
        self.rows.push(beepers);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rows.len()
    }

    /// The beep bitmap of round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` rounds were not recorded.
    #[must_use]
    pub fn round(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Projects the transcript onto what a *blind observer of a node set*
    /// can distinguish: for each round, whether **any** node in `observed`
    /// beeped. This is exactly the information available to the right part
    /// of `K_{Δ,Δ}` in the Lemma 14 / Theorem 22 arguments (all right nodes
    /// hear the same OR of the left part).
    ///
    /// # Panics
    ///
    /// Panics if an index in `observed` is out of range for the bitmaps.
    #[must_use]
    pub fn or_projection(&self, observed: &[usize]) -> BitVec {
        // Build the observer mask once, then answer each round with a
        // word-level intersection test instead of per-position bit probes
        // (this sits on the lower-bound census hot path).
        let Some(first) = self.rows.first() else {
            return BitVec::zeros(0);
        };
        let mask = BitVec::from_indices(first.len(), observed.iter().copied());
        BitVec::from_fn(self.rows.len(), |r| self.rows[r].intersects(&mask))
    }

    /// Iterates over the recorded rounds.
    pub fn iter(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_rates() {
        let s = NetStats {
            rounds: 4,
            beeps: 6,
            listens: 10,
        };
        assert!((s.beeps_per_round() - 1.5).abs() < 1e-12);
        assert_eq!(NetStats::default().beeps_per_round(), 0.0);
    }

    #[test]
    fn transcript_projection() {
        let mut t = Transcript::new();
        t.push(BitVec::from_indices(4, [0]));
        t.push(BitVec::from_indices(4, [2]));
        t.push(BitVec::from_indices(4, []));
        t.push(BitVec::from_indices(4, [1, 3]));
        assert_eq!(t.rounds(), 4);
        // Observer of {0, 1}: beeped in rounds 0 and 3.
        assert_eq!(t.or_projection(&[0, 1]).to_string(), "1001");
        // Observer of {2}: round 1 only.
        assert_eq!(t.or_projection(&[2]).to_string(), "0100");
        // Observer of nothing hears silence.
        assert_eq!(t.or_projection(&[]).to_string(), "0000");
    }

    #[test]
    fn transcript_round_access() {
        let mut t = Transcript::new();
        t.push(BitVec::from_indices(2, [1]));
        assert!(t.round(0).get(1));
        assert_eq!(t.iter().count(), 1);
    }
}
