//! The per-node protocol interface.

/// What a node does in one round (Section 1.1: "each node chooses to either
/// beep or listen").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Emit a unary pulse of energy this round.
    Beep,
    /// Carrier-sense this round.
    Listen,
}

impl Action {
    /// Encodes a bit the way the paper's codes do: 1 = beep, 0 = silence.
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Action::Beep
        } else {
            Action::Listen
        }
    }
}

/// A node-local protocol driven by the [`crate::BeepNetwork`] engine.
///
/// Each round the engine calls [`act`](Self::act) on every node, resolves
/// the channel, and reports back through [`feedback`](Self::feedback). A
/// protocol sees *only* its own state and the single bit per round the
/// model allows — the engine enforces the information bottleneck that makes
/// beeping-model results meaningful.
pub trait BeepProtocol {
    /// Chooses this round's action. `round` counts from 0.
    fn act(&mut self, round: usize) -> Action;

    /// Receives the bit for this round, per the paper's Section 1.5
    /// convention: `true` if the node beeped itself or heard a beep
    /// (after noise, in the noisy model).
    fn feedback(&mut self, round: usize, received: bool);

    /// Whether this node's protocol has terminated. The engine's
    /// [`run_protocols`](crate::BeepNetwork::run_protocols) loop stops when
    /// every node is done. Default: never (run to the round budget).
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_from_bit() {
        assert_eq!(Action::from_bit(true), Action::Beep);
        assert_eq!(Action::from_bit(false), Action::Listen);
    }
}
