#![warn(missing_docs)]

//! A synchronous beeping-model network simulator.
//!
//! Implements the execution models of "Optimal Message-Passing with Noisy
//! Beeps" (Davies, PODC 2023), Section 1.1:
//!
//! * a network is an undirected graph over `n` nodes with maximum degree
//!   `Δ` ([`Graph`], with generators in [`topology`]);
//! * time proceeds in synchronous rounds with a shared global clock;
//! * in each round every node either **beeps** or **listens**
//!   ([`Action`]);
//! * a listening node hears a beep iff at least one neighbor beeped
//!   (carrier sensing: no sender identity, no multiplicity);
//! * in the **noisy** model the bit each node receives is flipped
//!   independently with probability `ε ∈ (0, ½)` ([`Noise`]).
//!
//! Beyond the paper's iid channel, the [`channel`] module generalizes
//! corruption into pluggable [`NoiseModel`]s — bursty
//! ([`GilbertElliott`]), heterogeneous ([`PerNodeEps`]) and adversarial
//! ([`AdversarialErasure`]) — all under the same counter-keyed
//! determinism contract. The [`faults`] module drops the assumption that
//! every node behaves: a deterministic [`FaultPlan`] (crash / Byzantine
//! spam / Byzantine mute) overrides faulty nodes' actions between
//! submission and the channel, in every kernel.
//!
//! Following the paper's Section 1.5 convention, a node that beeps
//! "receives" a 1 in that round (and, per the paper's footnote 2, that bit
//! is also subject to noise by default so the analysis carries over
//! verbatim; [`BeepNetwork::set_self_hearing_noisy`] turns the more
//! realistic noise-free self-hearing on).
//!
//! The engine is deterministic given a seed: every experiment in the
//! workspace is exactly reproducible.
//!
//! Rounds run on one of three equivalent kernels: the scalar reference
//! [`BeepNetwork::run_round`] (kept as a differential-testing oracle), the
//! bit-parallel [`BeepNetwork::run_round_bitset`] /
//! [`BeepNetwork::run_frame`] that the simulators and protocols in the
//! workspace use, and — inside the bitset kernel — a sharded
//! multi-threaded execution path ([`BeepNetwork::set_parallelism`]) whose
//! noisy transcripts are bit-identical at every thread count because
//! channel noise is keyed by `(seed, round, shard)`
//! ([`noise_stream_seed`]). See ARCHITECTURE.md at the repository root for
//! the full determinism contract.
//!
//! # Example
//!
//! ```
//! use beep_net::{topology, Action, BeepNetwork, Noise};
//!
//! // A 4-cycle; node 0 beeps once, everyone else listens.
//! let graph = topology::cycle(4).unwrap();
//! let mut net = BeepNetwork::new(graph, Noise::Noiseless, 7);
//! let heard = net.run_round(&[Action::Beep, Action::Listen, Action::Listen, Action::Listen]);
//! assert_eq!(heard.unwrap(), vec![true, true, false, true]); // neighbors 1 and 3 hear it
//! ```

pub mod channel;
mod engine;
mod error;
pub mod faults;
mod graph;
mod node;
mod noise;
pub mod topology;
mod trace;

pub use channel::{
    AdversarialErasure, ChannelCtx, ChannelModel, GilbertElliott, NoiseModel, PerNodeEps,
    ROUND_STATE_STREAM,
};
pub use engine::BeepNetwork;
pub use error::{GraphError, NetError};
pub use faults::{
    AdaptiveAdversary, AdaptivePolicy, AdversaryView, FaultKind, FaultPlan, RoundFaults,
    ADAPTIVE_POLICY_STREAM, FAULT_PLAN_STREAM,
};
pub use graph::{AdjacencyRepr, Graph, NodeId};
pub use node::{Action, BeepProtocol};
pub use noise::{noise_stream_seed, protocol_coin, Noise, PROTOCOL_COIN_STREAM};
pub use trace::{NetStats, Transcript};

/// Every reserved shard index in the workspace, by stable name.
///
/// Real shard indices are `0..S` for small constant shard counts; reserved
/// indices sit at the top of the `u64` range so counter-keyed draws that
/// are *not* per-shard channel noise (per-round channel state, fault-plan
/// realization, adaptive-adversary decisions, protocol coins) can never
/// collide with any shard's flip stream — or with each other. The
/// registry exists so the collision test in `faults.rs` enumerates *all*
/// reserved indices: adding a stream without registering it here fails
/// that test's count check.
pub const RESERVED_STREAMS: [(&str, u64); 4] = [
    ("round-state", ROUND_STATE_STREAM),
    ("fault-plan", FAULT_PLAN_STREAM),
    ("adaptive-policy", ADAPTIVE_POLICY_STREAM),
    ("protocol-coin", PROTOCOL_COIN_STREAM),
];
