//! Pluggable channel models beyond uniform iid Bernoulli noise.
//!
//! The paper's channel flips every received bit independently with one
//! global rate `ε` ([`Noise`]). Real deployments are messier: links fade
//! in bursts, nodes differ in radio quality, and a worst-case analysis
//! wants an adversary, not a coin. This module generalizes the engine's
//! channel into the [`NoiseModel`] trait with four implementations:
//!
//! * [`Noise`] — the iid Bernoulli channel (the default, and the
//!   back-compat type every existing API keeps accepting);
//! * [`GilbertElliott`] — a two-state bursty channel (good/bad) whose
//!   Markov state evolves per round;
//! * [`PerNodeEps`] — a heterogeneous per-node `ε` vector;
//! * [`AdversarialErasure`] — a budgeted adversary erasing the
//!   highest-impact beep bits under a deterministic greedy rule.
//!
//! # Determinism contract
//!
//! Every model is **counter-keyed**: all randomness for the bits of shard
//! `s` in round `r` comes from
//! `StdRng::seed_from_u64(`[`noise_stream_seed`]`(seed, r, s))`, and any
//! per-round global state (the Gilbert–Elliott good/bad switch) comes
//! from the reserved stream index [`ROUND_STATE_STREAM`]. No model draws
//! from a sequential RNG, so a transcript is a pure function of
//! `(graph, channel, seed, actions, shard_count)` — bit-identical at
//! every thread count, exactly like the iid channel since PR 2. The
//! [`AdversarialErasure`] model draws zero random bytes at all.
//!
//! | model | per-shard stream `(seed, r, s)` | round-state stream `(seed, r, ROUND_STATE_STREAM)` |
//! |---|---|---|
//! | [`Noise`] (iid) | geometric-skip flips | — |
//! | [`GilbertElliott`] | flips at the active state's rate | one `f64`: the Markov transition |
//! | [`PerNodeEps`] | one `f64` per owned node | — |
//! | [`AdversarialErasure`] | — (deterministic greedy) | — |

use crate::error::NetError;
use crate::graph::Graph;
use crate::noise::{noise_stream_seed, Noise};
use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;

/// The reserved shard index of the per-round *state* stream: channel
/// models that carry global per-round state (today only
/// [`GilbertElliott`]'s good/bad switch) draw it from
/// [`noise_stream_seed`]`(seed, round, ROUND_STATE_STREAM)`.
///
/// Real shards are numbered `0..shard_count` and `shard_count` is a small
/// `usize`, so `u64::MAX` can never collide with a data shard's stream.
pub const ROUND_STATE_STREAM: u64 = u64::MAX;

/// The read-only context a channel model receives when asked to corrupt
/// one shard of a round's received frame.
///
/// Everything a counter-keyed model may depend on is here — and nothing
/// else: no thread ids, no sequential RNG, no mutable engine state.
#[derive(Debug, Clone, Copy)]
pub struct ChannelCtx<'a> {
    /// The network graph (e.g. for degree-aware adversaries).
    pub graph: &'a Graph,
    /// The network's base seed.
    pub seed: u64,
    /// The round counter (the engine's cumulative round count).
    pub round: u64,
    /// This shard's index in `0..shard_count`.
    pub shard: u64,
    /// Total shard count `S` of this round's layout.
    pub shard_count: usize,
    /// The model's own per-round state, as returned by
    /// [`NoiseModel::round_state`] for `(seed, round)` — computed once
    /// per round and passed to every shard, so shards never recompute
    /// (or lock) shared state.
    pub round_state: u64,
    /// Bits that must not be corrupted (the beeper set when self-hearing
    /// is configured noise-free), indexed by global bit position.
    pub protect: Option<&'a BitVec>,
}

impl ChannelCtx<'_> {
    /// Whether global bit position `v` is protected from corruption.
    #[must_use]
    pub fn is_protected(&self, v: usize) -> bool {
        self.protect.is_some_and(|p| p.get(v))
    }
}

/// A channel model: how the bits nodes receive get corrupted.
///
/// Implementations MUST be counter-keyed (see the [module
/// docs](self)): all randomness for shard `s` of round `r` comes from
/// `StdRng::seed_from_u64(`[`noise_stream_seed`]`(ctx.seed, ctx.round,
/// ctx.shard))`, and per-round global state from
/// [`round_state`](Self::round_state) via the reserved
/// [`ROUND_STATE_STREAM`]. A model that draws from anywhere else breaks
/// the engine's thread-count invariance.
///
/// ```
/// use beep_bits::BitVec;
/// use beep_net::{topology, BeepNetwork, GilbertElliott, NoiseModel};
///
/// let ge = GilbertElliott::try_new(0.01, 0.4, 0.1, 0.5).unwrap();
/// assert!(!ge.is_noiseless());
/// // Any NoiseModel drops into BeepNetwork where a Noise used to go.
/// let mut net = BeepNetwork::new(topology::cycle(64).unwrap(), ge, 7);
/// let received = net.run_round_bitset(&BitVec::zeros(64)).unwrap();
/// assert_eq!(received.len(), 64);
/// ```
pub trait NoiseModel: std::fmt::Debug + Send + Sync {
    /// A short, stable, human-readable label (used in reports and ids).
    fn label(&self) -> String;

    /// The iid rate the surrounding machinery should calibrate against:
    /// the `ε` fed to `SimulationParams::calibrated` and checked by the
    /// simulators' noise-mismatch guards. For the iid channel this is
    /// `ε` itself; heterogeneous models report their worst-case rate.
    fn calibration_epsilon(&self) -> f64;

    /// Whether the model never corrupts any bit — lets the engine skip
    /// the per-shard channel pass entirely.
    fn is_noiseless(&self) -> bool;

    /// The model's global state for `round`, derived deterministically
    /// from `(seed, round)` only — typically via the reserved
    /// [`ROUND_STATE_STREAM`]. The engine calls this once per round and
    /// hands the value to every shard in [`ChannelCtx::round_state`].
    /// Stateless models keep the default `0`.
    fn round_state(&self, _seed: u64, _round: u64) -> u64 {
        0
    }

    /// Corrupts the received bits at global positions `lo..hi` (with
    /// `lo` word-aligned) inside `words`, whose first word holds bits
    /// `lo..lo + 64`. Must touch only `[lo, hi)`, must respect
    /// `ctx.protect`, and must draw randomness only as the trait docs
    /// prescribe.
    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>);
}

/// The iid Bernoulli channel is the back-compat [`NoiseModel`]: the
/// per-shard geometric-skip pass the engine has always run, byte-for-byte
/// (the golden transcript pins prove it).
impl NoiseModel for Noise {
    fn label(&self) -> String {
        format!("eps{}", self.epsilon())
    }

    fn calibration_epsilon(&self) -> f64 {
        self.epsilon()
    }

    fn is_noiseless(&self) -> bool {
        matches!(self, Noise::Noiseless)
    }

    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>) {
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(ctx.seed, ctx.round, ctx.shard));
        self.apply_to_words(words, lo, hi, ctx.protect, &mut rng);
    }
}

/// A two-state bursty channel (Gilbert–Elliott): each round the whole
/// network is either in the *good* state (flip rate `eps_good`) or the
/// *bad* state (flip rate `eps_bad`), and the state evolves as a Markov
/// chain over rounds — good→bad with probability `p_good_to_bad`,
/// bad→good with probability `p_bad_to_good`. Round 0 starts good.
///
/// The state sequence is a pure function of `(seed, round)`: the
/// transition draw for round `r` comes from the reserved
/// [`ROUND_STATE_STREAM`], so random access to any round replays the
/// chain deterministically (an internal cache makes sequential access
/// O(1) per round).
///
/// ```
/// use beep_net::GilbertElliott;
///
/// let ge = GilbertElliott::try_new(0.01, 0.4, 0.1, 0.5).unwrap();
/// // Round 0 always starts in the good state.
/// assert!(!ge.in_bad_state(7, 0));
/// // The state sequence is deterministic in (seed, round): random
/// // access and a fresh instance agree with sequential replay.
/// let fresh = GilbertElliott::try_new(0.01, 0.4, 0.1, 0.5).unwrap();
/// for r in 0..50 {
///     assert_eq!(ge.in_bad_state(7, r), fresh.in_bad_state(7, r));
/// }
/// assert_eq!(ge.in_bad_state(7, 20), fresh.in_bad_state(7, 20));
/// ```
pub struct GilbertElliott {
    eps_good: f64,
    eps_bad: f64,
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    /// Sequential-access cache: `(seed, round, in_bad_state)` of the most
    /// recently computed round. Purely an optimization — a miss replays
    /// the chain from round 0, landing on the same deterministic state.
    cache: Mutex<Option<(u64, u64, bool)>>,
}

impl GilbertElliott {
    /// Builds a Gilbert–Elliott channel after validating the parameters:
    /// both flip rates in `[0, ½)` and both transition probabilities in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidChannel`] on any out-of-range (or NaN)
    /// parameter.
    pub fn try_new(
        eps_good: f64,
        eps_bad: f64,
        p_good_to_bad: f64,
        p_bad_to_good: f64,
    ) -> Result<Self, NetError> {
        for (name, eps) in [("eps_good", eps_good), ("eps_bad", eps_bad)] {
            if !(0.0..0.5).contains(&eps) {
                return Err(NetError::InvalidChannel {
                    detail: format!("{name} = {eps} outside [0, 1/2)"),
                });
            }
        }
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::InvalidChannel {
                    detail: format!("{name} = {p} outside [0, 1]"),
                });
            }
        }
        Ok(GilbertElliott {
            eps_good,
            eps_bad,
            p_good_to_bad,
            p_bad_to_good,
            cache: Mutex::new(None),
        })
    }

    /// The good-state flip rate.
    #[must_use]
    pub fn eps_good(&self) -> f64 {
        self.eps_good
    }

    /// The bad-state flip rate.
    #[must_use]
    pub fn eps_bad(&self) -> f64 {
        self.eps_bad
    }

    /// Whether the chain is in the bad state in `round` under `seed`.
    ///
    /// Round 0 is always good; the transition into round `r ≥ 1` draws
    /// one `f64` from the `(seed, r, `[`ROUND_STATE_STREAM`]`)` stream.
    #[must_use]
    pub fn in_bad_state(&self, seed: u64, round: u64) -> bool {
        let mut cache = self.cache.lock().expect("state cache");
        let (mut r, mut bad) = match *cache {
            Some((s, r, b)) if s == seed && r <= round => (r, b),
            _ => (0, false),
        };
        while r < round {
            r += 1;
            let u: f64 =
                StdRng::seed_from_u64(noise_stream_seed(seed, r, ROUND_STATE_STREAM)).random();
            bad = if bad {
                u >= self.p_bad_to_good
            } else {
                u < self.p_good_to_bad
            };
        }
        *cache = Some((seed, round, bad));
        bad
    }
}

impl std::fmt::Debug for GilbertElliott {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GilbertElliott")
            .field("eps_good", &self.eps_good)
            .field("eps_bad", &self.eps_bad)
            .field("p_good_to_bad", &self.p_good_to_bad)
            .field("p_bad_to_good", &self.p_bad_to_good)
            .finish()
    }
}

impl Clone for GilbertElliott {
    fn clone(&self) -> Self {
        GilbertElliott {
            eps_good: self.eps_good,
            eps_bad: self.eps_bad,
            p_good_to_bad: self.p_good_to_bad,
            p_bad_to_good: self.p_bad_to_good,
            // The cache is a replayable optimization, not state: a clone
            // starting cold computes identical state sequences.
            cache: Mutex::new(None),
        }
    }
}

impl PartialEq for GilbertElliott {
    fn eq(&self, other: &Self) -> bool {
        (
            self.eps_good,
            self.eps_bad,
            self.p_good_to_bad,
            self.p_bad_to_good,
        ) == (
            other.eps_good,
            other.eps_bad,
            other.p_good_to_bad,
            other.p_bad_to_good,
        )
    }
}

impl NoiseModel for GilbertElliott {
    fn label(&self) -> String {
        format!(
            "ge-g{}-b{}-pgb{}-pbg{}",
            self.eps_good, self.eps_bad, self.p_good_to_bad, self.p_bad_to_good
        )
    }

    fn calibration_epsilon(&self) -> f64 {
        self.eps_good.max(self.eps_bad)
    }

    fn is_noiseless(&self) -> bool {
        self.eps_good == 0.0 && self.eps_bad == 0.0
    }

    fn round_state(&self, seed: u64, round: u64) -> u64 {
        u64::from(self.in_bad_state(seed, round))
    }

    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>) {
        let eps = if ctx.round_state == 1 {
            self.eps_bad
        } else {
            self.eps_good
        };
        if eps == 0.0 {
            return;
        }
        // The per-shard flips reuse the iid geometric-skip pass at the
        // active state's rate, on the normal (seed, round, shard) stream.
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(ctx.seed, ctx.round, ctx.shard));
        Noise::Bernoulli(eps).apply_to_words(words, lo, hi, ctx.protect, &mut rng);
    }
}

/// A heterogeneous channel: node `v`'s received bit flips with its own
/// rate `eps[v mod len]` (the vector is applied cyclically, so one
/// pattern serves every network size — e.g. "every fourth node has a
/// bad radio").
///
/// The model is word-sliced: a shard draws exactly one `f64` per node it
/// owns — for every node, flipped or not, protected or not — so each
/// shard's stream is self-contained and the transcript never depends on
/// which thread ran which shard.
///
/// ```
/// use beep_bits::BitVec;
/// use beep_net::{topology, BeepNetwork, NoiseModel, PerNodeEps};
///
/// // Nodes 0, 3, 6, … are clean; the rest flip at 20%.
/// let ch = PerNodeEps::try_new(vec![0.0, 0.2, 0.2]).unwrap();
/// assert_eq!(ch.epsilon_of(0), 0.0);
/// assert_eq!(ch.epsilon_of(4), 0.2);
/// assert_eq!(ch.calibration_epsilon(), 0.2);
/// let mut net = BeepNetwork::new(topology::cycle(30).unwrap(), ch, 3);
/// for _ in 0..50 {
///     let heard = net.run_round_bitset(&BitVec::zeros(30)).unwrap();
///     assert!(!heard.get(0), "an eps = 0 node heard a phantom beep");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerNodeEps {
    eps: Vec<f64>,
}

impl PerNodeEps {
    /// Builds a per-node channel from a non-empty pattern of flip rates,
    /// each in `[0, ½)`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidChannel`] if the pattern is empty or any rate
    /// is outside `[0, ½)` (including NaN).
    pub fn try_new(eps: Vec<f64>) -> Result<Self, NetError> {
        if eps.is_empty() {
            return Err(NetError::InvalidChannel {
                detail: "per-node epsilon pattern is empty".into(),
            });
        }
        for (i, &e) in eps.iter().enumerate() {
            if !(0.0..0.5).contains(&e) {
                return Err(NetError::InvalidChannel {
                    detail: format!("eps[{i}] = {e} outside [0, 1/2)"),
                });
            }
        }
        Ok(PerNodeEps { eps })
    }

    /// The flip-rate pattern.
    #[must_use]
    pub fn pattern(&self) -> &[f64] {
        &self.eps
    }

    /// Node `v`'s flip rate (`eps[v mod len]`).
    #[must_use]
    pub fn epsilon_of(&self, v: usize) -> f64 {
        self.eps[v % self.eps.len()]
    }
}

impl NoiseModel for PerNodeEps {
    fn label(&self) -> String {
        let rates: Vec<String> = self.eps.iter().map(ToString::to_string).collect();
        format!("pernode-{}", rates.join("-"))
    }

    fn calibration_epsilon(&self) -> f64 {
        self.eps.iter().copied().fold(0.0, f64::max)
    }

    fn is_noiseless(&self) -> bool {
        self.eps.iter().all(|&e| e == 0.0)
    }

    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>) {
        let mut rng = StdRng::seed_from_u64(noise_stream_seed(ctx.seed, ctx.round, ctx.shard));
        for v in lo..hi {
            // One draw per owned node unconditionally: the stream must
            // not depend on the protect set or the rates.
            let u: f64 = rng.random();
            if u < self.epsilon_of(v) && !ctx.is_protected(v) {
                words[(v - lo) / 64] ^= 1u64 << (v % 64);
            }
        }
    }
}

/// A budgeted adversary: each round it may erase (1 → 0) up to `budget`
/// received beep bits, and greedily picks the highest-impact targets —
/// the set bits of the highest-degree nodes (ties broken toward lower
/// node ids). Erasure-only, so silence is always delivered faithfully;
/// protected bits are never touched.
///
/// The rule is fully deterministic — the model draws **zero** random
/// bytes — which makes it the worst-case counterpart of the stochastic
/// models: same inputs, same corruption, at any thread count. The budget
/// is split across shards (`budget/S` each, the first `budget mod S`
/// shards taking one extra), so the shard layout stays part of the
/// determinism tuple exactly as for the stochastic models.
///
/// `design_epsilon` is the iid rate the surrounding machinery calibrates
/// against ([`NoiseModel::calibration_epsilon`]): the adversary is *not*
/// an iid channel, so the caller states explicitly which ε-calibrated
/// protocol parameters the adversary should be attacking.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialErasure {
    budget: usize,
    design_epsilon: f64,
}

impl AdversarialErasure {
    /// Builds an adversary erasing at most `budget` bits per round,
    /// attacking protocols calibrated for `design_epsilon ∈ [0, ½)`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidChannel`] if `design_epsilon` is outside
    /// `[0, ½)` (including NaN).
    pub fn try_new(budget: usize, design_epsilon: f64) -> Result<Self, NetError> {
        if !(0.0..0.5).contains(&design_epsilon) {
            return Err(NetError::InvalidChannel {
                detail: format!("design_epsilon = {design_epsilon} outside [0, 1/2)"),
            });
        }
        Ok(AdversarialErasure {
            budget,
            design_epsilon,
        })
    }

    /// The per-round erasure budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The iid rate this adversary is declared to attack.
    #[must_use]
    pub fn design_epsilon(&self) -> f64 {
        self.design_epsilon
    }
}

impl NoiseModel for AdversarialErasure {
    fn label(&self) -> String {
        format!("adv-b{}-e{}", self.budget, self.design_epsilon)
    }

    fn calibration_epsilon(&self) -> f64 {
        self.design_epsilon
    }

    fn is_noiseless(&self) -> bool {
        self.budget == 0
    }

    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>) {
        let shards = ctx.shard_count.max(1);
        let shard = usize::try_from(ctx.shard).expect("shard index fits usize");
        let share = self.budget / shards + usize::from(shard < self.budget % shards);
        if share == 0 {
            return;
        }
        // Candidates: every unprotected received 1 this shard owns.
        let mut candidates: Vec<usize> = Vec::new();
        for (w, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = lo + w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if v >= hi {
                    break;
                }
                if !ctx.is_protected(v) {
                    candidates.push(v);
                }
            }
        }
        // Greedy: highest degree first (a hub losing its bit hurts the
        // most listeners downstream), node id as the deterministic
        // tie-break.
        candidates.sort_by_key(|&v| (std::cmp::Reverse(ctx.graph.degree(v)), v));
        for &v in candidates.iter().take(share) {
            words[(v - lo) / 64] &= !(1u64 << (v % 64));
        }
    }
}

/// The closed set of channel models the engine ships, as one value type —
/// what [`crate::BeepNetwork`] stores. Every concrete model (and
/// [`Noise`] itself) converts in via `From`, so existing
/// `BeepNetwork::new(graph, Noise::…, seed)` call sites compile
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChannelModel {
    /// The iid Bernoulli channel (the paper's model; the default).
    Iid(Noise),
    /// The two-state bursty channel.
    GilbertElliott(GilbertElliott),
    /// The heterogeneous per-node channel.
    PerNodeEps(PerNodeEps),
    /// The budgeted greedy erasure adversary.
    AdversarialErasure(AdversarialErasure),
}

impl NoiseModel for ChannelModel {
    fn label(&self) -> String {
        match self {
            ChannelModel::Iid(m) => m.label(),
            ChannelModel::GilbertElliott(m) => m.label(),
            ChannelModel::PerNodeEps(m) => m.label(),
            ChannelModel::AdversarialErasure(m) => m.label(),
        }
    }

    fn calibration_epsilon(&self) -> f64 {
        match self {
            ChannelModel::Iid(m) => m.calibration_epsilon(),
            ChannelModel::GilbertElliott(m) => m.calibration_epsilon(),
            ChannelModel::PerNodeEps(m) => m.calibration_epsilon(),
            ChannelModel::AdversarialErasure(m) => m.calibration_epsilon(),
        }
    }

    fn is_noiseless(&self) -> bool {
        match self {
            ChannelModel::Iid(m) => m.is_noiseless(),
            ChannelModel::GilbertElliott(m) => m.is_noiseless(),
            ChannelModel::PerNodeEps(m) => m.is_noiseless(),
            ChannelModel::AdversarialErasure(m) => m.is_noiseless(),
        }
    }

    fn round_state(&self, seed: u64, round: u64) -> u64 {
        match self {
            ChannelModel::Iid(m) => m.round_state(seed, round),
            ChannelModel::GilbertElliott(m) => m.round_state(seed, round),
            ChannelModel::PerNodeEps(m) => m.round_state(seed, round),
            ChannelModel::AdversarialErasure(m) => m.round_state(seed, round),
        }
    }

    fn apply_to_shard(&self, words: &mut [u64], lo: usize, hi: usize, ctx: &ChannelCtx<'_>) {
        match self {
            ChannelModel::Iid(m) => m.apply_to_shard(words, lo, hi, ctx),
            ChannelModel::GilbertElliott(m) => m.apply_to_shard(words, lo, hi, ctx),
            ChannelModel::PerNodeEps(m) => m.apply_to_shard(words, lo, hi, ctx),
            ChannelModel::AdversarialErasure(m) => m.apply_to_shard(words, lo, hi, ctx),
        }
    }
}

impl From<Noise> for ChannelModel {
    fn from(noise: Noise) -> Self {
        ChannelModel::Iid(noise)
    }
}

impl From<GilbertElliott> for ChannelModel {
    fn from(model: GilbertElliott) -> Self {
        ChannelModel::GilbertElliott(model)
    }
}

impl From<PerNodeEps> for ChannelModel {
    fn from(model: PerNodeEps) -> Self {
        ChannelModel::PerNodeEps(model)
    }
}

impl From<AdversarialErasure> for ChannelModel {
    fn from(model: AdversarialErasure) -> Self {
        ChannelModel::AdversarialErasure(model)
    }
}

/// Applies `channel` to a whole received frame using the *exact* shard
/// layout of the bitset kernel (`per = ⌈words/S⌉` words per shard), so
/// callers outside the kernel — the scalar oracle path — produce
/// bit-identical corruption for every counter-keyed model.
pub(crate) fn apply_channel_sharded(
    channel: &ChannelModel,
    graph: &Graph,
    seed: u64,
    round: u64,
    shard_count: usize,
    protect: Option<&BitVec>,
    frame: &mut BitVec,
) {
    if channel.is_noiseless() {
        return;
    }
    let n = frame.len();
    let round_state = channel.round_state(seed, round);
    let words = frame.as_words_mut();
    let per = words.len().div_ceil(shard_count).max(1);
    for (s, chunk) in words.chunks_mut(per).enumerate() {
        let lo = s * per * 64;
        let hi = (lo + chunk.len() * 64).min(n);
        let ctx = ChannelCtx {
            graph,
            seed,
            round,
            shard: s as u64,
            shard_count,
            round_state,
            protect,
        };
        channel.apply_to_shard(chunk, lo, hi, &ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn ctx<'a>(graph: &'a Graph, shard: u64, protect: Option<&'a BitVec>) -> ChannelCtx<'a> {
        ChannelCtx {
            graph,
            seed: 7,
            round: 3,
            shard,
            shard_count: 2,
            round_state: 0,
            protect,
        }
    }

    #[test]
    fn constructors_validate_parameters() {
        assert!(GilbertElliott::try_new(0.0, 0.4, 0.1, 0.5).is_ok());
        for bad in [
            GilbertElliott::try_new(0.5, 0.1, 0.1, 0.5),
            GilbertElliott::try_new(0.1, -0.1, 0.1, 0.5),
            GilbertElliott::try_new(0.1, 0.1, 1.5, 0.5),
            GilbertElliott::try_new(0.1, 0.1, 0.5, f64::NAN),
        ] {
            assert!(matches!(bad, Err(NetError::InvalidChannel { .. })));
        }
        assert!(PerNodeEps::try_new(vec![0.0, 0.3]).is_ok());
        assert!(matches!(
            PerNodeEps::try_new(vec![]),
            Err(NetError::InvalidChannel { .. })
        ));
        assert!(matches!(
            PerNodeEps::try_new(vec![0.1, 0.5]),
            Err(NetError::InvalidChannel { .. })
        ));
        assert!(AdversarialErasure::try_new(3, 0.1).is_ok());
        assert!(matches!(
            AdversarialErasure::try_new(3, 0.6),
            Err(NetError::InvalidChannel { .. })
        ));
    }

    #[test]
    fn iid_model_mirrors_noise() {
        let m = Noise::bernoulli(0.25);
        assert_eq!(m.calibration_epsilon(), 0.25);
        assert!(!m.is_noiseless());
        assert!(Noise::Noiseless.is_noiseless());
        assert_eq!(m.round_state(1, 2), 0);
        let channel: ChannelModel = m.into();
        assert_eq!(channel, ChannelModel::Iid(Noise::Bernoulli(0.25)));
        assert_eq!(channel.label(), "eps0.25");
    }

    #[test]
    fn ge_round_zero_is_good_and_sequence_is_deterministic() {
        let ge = GilbertElliott::try_new(0.01, 0.4, 0.3, 0.5).unwrap();
        assert!(!ge.in_bad_state(11, 0));
        let sequential: Vec<bool> = (0..200).map(|r| ge.in_bad_state(11, r)).collect();
        // Random access (cold cache) replays to the same states.
        let fresh = ge.clone();
        for &r in &[199, 0, 57, 123, 57] {
            assert_eq!(fresh.in_bad_state(11, r), sequential[r as usize], "{r}");
        }
        // A different seed keys a different state sequence.
        let other: Vec<bool> = (0..200).map(|r| ge.in_bad_state(12, r)).collect();
        assert_ne!(sequential, other);
        // The chain actually visits both states at these rates.
        assert!(sequential.iter().any(|&b| b));
        assert!(sequential.iter().any(|&b| !b));
    }

    #[test]
    fn ge_with_certain_transitions_alternates() {
        // p_good_to_bad = p_bad_to_good = 1: u ∈ [0, 1) always transitions,
        // so the state alternates G, B, G, B, … from round 0.
        let ge = GilbertElliott::try_new(0.0, 0.4, 1.0, 1.0).unwrap();
        for r in 0..20 {
            assert_eq!(ge.in_bad_state(5, r), r % 2 == 1, "round {r}");
        }
    }

    #[test]
    fn ge_good_state_with_zero_rate_is_clean() {
        // Never leaves the good state; eps_good = 0 ⇒ no flips ever.
        let ge = GilbertElliott::try_new(0.0, 0.4, 0.0, 1.0).unwrap();
        let g = topology::cycle(128).unwrap();
        let mut words = [0u64; 2];
        for round in 0..20 {
            let c = ChannelCtx {
                round,
                round_state: ge.round_state(7, round),
                ..ctx(&g, 0, None)
            };
            ge.apply_to_shard(&mut words, 0, 128, &c);
        }
        assert_eq!(words, [0, 0]);
        assert!(!ge.is_noiseless(), "eps_bad > 0 is reachable in principle");
    }

    #[test]
    fn per_node_zero_rate_nodes_never_flip_and_pattern_cycles() {
        let ch = PerNodeEps::try_new(vec![0.0, 0.45]).unwrap();
        assert_eq!(ch.epsilon_of(0), 0.0);
        assert_eq!(ch.epsilon_of(7), 0.45);
        assert_eq!(ch.calibration_epsilon(), 0.45);
        let g = topology::cycle(128).unwrap();
        let mut flipped = [0usize; 128];
        for round in 0..300 {
            let mut words = [0u64; 2];
            let c = ChannelCtx {
                round,
                ..ctx(&g, 0, None)
            };
            ch.apply_to_shard(&mut words, 0, 128, &c);
            for v in 0..128 {
                if words[v / 64] >> (v % 64) & 1 == 1 {
                    flipped[v] += 1;
                }
            }
        }
        for (v, &count) in flipped.iter().enumerate() {
            if v % 2 == 0 {
                assert_eq!(count, 0, "eps = 0 node {v} flipped");
            }
        }
        let noisy_total: usize = flipped.iter().skip(1).step_by(2).sum();
        let rate = noisy_total as f64 / (64.0 * 300.0);
        assert!((rate - 0.45).abs() < 0.05, "noisy-node rate {rate}");
    }

    #[test]
    fn per_node_respects_protect_but_keeps_the_stream() {
        // Same stream with and without protection: unprotected positions
        // flip identically, protected ones never do.
        let ch = PerNodeEps::try_new(vec![0.4]).unwrap();
        let g = topology::cycle(64).unwrap();
        let protect = BitVec::from_fn(64, |v| v % 3 == 0);
        let mut bare = [0u64; 1];
        let mut guarded = [0u64; 1];
        ch.apply_to_shard(&mut bare, 0, 64, &ctx(&g, 0, None));
        ch.apply_to_shard(&mut guarded, 0, 64, &ctx(&g, 0, Some(&protect)));
        assert_eq!(guarded[0] & protect.as_words()[0], 0);
        assert_eq!(guarded[0], bare[0] & !protect.as_words()[0]);
    }

    #[test]
    fn adversary_erases_highest_degree_first_within_budget() {
        // Star: the hub (node 0) has degree n−1, leaves degree 1.
        let g = topology::star(10).unwrap();
        let ch = AdversarialErasure::try_new(2, 0.1).unwrap();
        let mut words = [0b111u64]; // hub and leaves 1, 2 received a 1
        let c = ChannelCtx {
            shard_count: 1,
            ..ctx(&g, 0, None)
        };
        ch.apply_to_shard(&mut words, 0, 10, &c);
        // Budget 2: hub first (degree 9), then leaf 1 (lowest id among
        // the degree-1 ties). Leaf 2 survives.
        assert_eq!(words[0], 0b100);
    }

    #[test]
    fn adversary_splits_budget_across_shards_and_never_sets_bits() {
        let g = topology::cycle(128).unwrap();
        let ch = AdversarialErasure::try_new(3, 0.1).unwrap();
        // Shard 0 gets ⌈3/2⌉ = 2, shard 1 gets 1.
        let mut words = [u64::MAX, u64::MAX];
        for shard in 0..2u64 {
            let lo = 64 * shard as usize;
            let c = ctx(&g, shard, None);
            ch.apply_to_shard(&mut words[shard as usize..=shard as usize], lo, lo + 64, &c);
        }
        let cleared = 128 - (words[0].count_ones() + words[1].count_ones());
        assert_eq!(cleared, 3);
        assert_eq!(words[0].count_ones(), 62);
        assert_eq!(words[1].count_ones(), 63);
        // Erasure-only: an all-zero frame stays all-zero.
        let mut silent = [0u64; 2];
        ch.apply_to_shard(&mut silent, 0, 128, &ctx(&g, 0, None));
        assert_eq!(silent, [0, 0]);
    }

    #[test]
    fn adversary_respects_protection() {
        let g = topology::star(4).unwrap();
        let ch = AdversarialErasure::try_new(4, 0.1).unwrap();
        let protect = BitVec::from_indices(4, [0]);
        let mut words = [0b1111u64];
        let c = ChannelCtx {
            shard_count: 1,
            ..ctx(&g, 0, Some(&protect))
        };
        ch.apply_to_shard(&mut words, 0, 4, &c);
        assert_eq!(words[0], 0b0001, "protected hub bit must survive");
    }

    #[test]
    fn channel_model_delegates_and_zero_budget_is_noiseless() {
        let m: ChannelModel = AdversarialErasure::try_new(0, 0.1).unwrap().into();
        assert!(m.is_noiseless());
        assert_eq!(m.calibration_epsilon(), 0.1);
        let ge: ChannelModel = GilbertElliott::try_new(0.1, 0.3, 0.2, 0.2).unwrap().into();
        assert_eq!(ge.calibration_epsilon(), 0.3);
        assert!(ge.label().starts_with("ge-"));
        let pn: ChannelModel = PerNodeEps::try_new(vec![0.0, 0.0]).unwrap().into();
        assert!(pn.is_noiseless());
    }

    #[test]
    fn sharded_helper_matches_manual_shard_loop() {
        let g = topology::cycle(200).unwrap();
        let channel: ChannelModel = PerNodeEps::try_new(vec![0.1, 0.3, 0.0]).unwrap().into();
        let mut via_helper = BitVec::zeros(200);
        apply_channel_sharded(&channel, &g, 9, 4, 2, None, &mut via_helper);
        // Manual replication of the kernel's layout: 4 words, 2 per shard.
        let mut manual = BitVec::zeros(200);
        let words = manual.as_words_mut();
        for s in 0..2usize {
            let lo = s * 2 * 64;
            let hi = (lo + 128).min(200);
            let c = ChannelCtx {
                graph: &g,
                seed: 9,
                round: 4,
                shard: s as u64,
                shard_count: 2,
                round_state: 0,
                protect: None,
            };
            channel.apply_to_shard(&mut words[s * 2..(s * 2 + 2).min(4)], lo, hi, &c);
        }
        assert_eq!(via_helper, manual);
    }
}
