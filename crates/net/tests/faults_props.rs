//! Property tests for the fault layer: `FaultPlan::realize` respects its
//! fraction budget, is seed-deterministic, and never samples out-of-range
//! nodes; `try_from_assignments` rejects duplicates regardless of input
//! order; and `AdaptivePolicy` decisions are deterministic, in-range, and
//! within budget for every policy.

use beep_bits::BitVec;
use beep_net::{AdaptiveAdversary, AdaptivePolicy, AdversaryView, FaultKind, FaultPlan, NetError};
use proptest::prelude::*;

/// The three fault kinds, indexed for the integer-only proptest shim.
fn kind(ix: usize) -> FaultKind {
    match ix % 3 {
        0 => FaultKind::Crash { round: 4 },
        1 => FaultKind::ByzantineSpam,
        _ => FaultKind::ByzantineMute,
    }
}

/// The policy under test for an integer case index, at the given budget.
fn policy(ix: usize, budget: usize) -> AdaptivePolicy {
    if ix.is_multiple_of(2) {
        AdaptivePolicy::TargetLoudest { budget }
    } else {
        AdaptivePolicy::RushingSpam { budget, window: 2 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- FaultPlan::realize invariants.

    #[test]
    fn realize_respects_the_fraction_budget(
        n in 1usize..200,
        frac_ticks in 0usize..=20,
        kind_ix in 0usize..3,
        seed in 0u64..1000,
    ) {
        // The shim has integer strategies only; quantize the fraction.
        let fraction = frac_ticks as f64 * 0.05;
        let plan = FaultPlan::realize(n, fraction, kind(kind_ix), seed).unwrap();
        let expected = ((fraction * n as f64).floor() as usize).min(n);
        prop_assert_eq!(plan.len(), expected);
    }

    #[test]
    fn realize_is_seed_deterministic(
        n in 1usize..200,
        frac_ticks in 0usize..=20,
        kind_ix in 0usize..3,
        seed in 0u64..1000,
    ) {
        let fraction = frac_ticks as f64 * 0.05;
        let a = FaultPlan::realize(n, fraction, kind(kind_ix), seed).unwrap();
        let b = FaultPlan::realize(n, fraction, kind(kind_ix), seed).unwrap();
        prop_assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn realize_never_samples_out_of_range_or_duplicate_nodes(
        n in 1usize..200,
        frac_ticks in 1usize..=20,
        kind_ix in 0usize..3,
        seed in 0u64..1000,
    ) {
        let fraction = frac_ticks as f64 * 0.05;
        let plan = FaultPlan::realize(n, fraction, kind(kind_ix), seed).unwrap();
        let nodes: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
        for &v in &nodes {
            prop_assert!(v < n, "node {} out of range {}", v, n);
        }
        // Assignments are sorted and duplicate-free by construction.
        for w in nodes.windows(2) {
            prop_assert!(w[0] < w[1], "unsorted or duplicate: {:?}", w);
        }
    }

    #[test]
    fn realize_rejects_invalid_fractions(n in 1usize..50, seed in 0u64..100) {
        for bad in [-0.25, 1.5, f64::NAN] {
            let err = FaultPlan::realize(n, bad, FaultKind::ByzantineSpam, seed).unwrap_err();
            prop_assert!(matches!(err, NetError::InvalidFaultPlan { .. }));
        }
    }

    // --- try_from_assignments rejects duplicates in any order.

    #[test]
    fn duplicate_assignments_are_rejected_regardless_of_order(
        node in 0usize..64,
        other in 0usize..64,
        kind_a in 0usize..3,
        kind_b in 0usize..3,
        swap in 0usize..2,
    ) {
        // Build [dup, dup, other(≠dup)] and optionally reverse it: the
        // constructor sorts internally, so the duplicate must be caught
        // wherever it sits in the input.
        let other = if other == node { (other + 1) % 64 } else { other };
        let mut assignments = vec![
            (node, kind(kind_a)),
            (node, kind(kind_b)),
            (other, FaultKind::ByzantineMute),
        ];
        if swap == 1 {
            assignments.reverse();
        }
        let err = FaultPlan::try_from_assignments(assignments).unwrap_err();
        prop_assert!(matches!(err, NetError::InvalidFaultPlan { .. }));
        let msg = err.to_string();
        prop_assert!(msg.contains(&node.to_string()), "{}", msg);
    }

    #[test]
    fn distinct_assignments_are_accepted_in_any_order(
        base in 0usize..40,
        stride in 1usize..7,
        swap in 0usize..2,
    ) {
        let mut assignments = vec![
            (base, FaultKind::ByzantineSpam),
            (base + stride, FaultKind::ByzantineMute),
            (base + 2 * stride, FaultKind::Crash { round: 1 }),
        ];
        if swap == 1 {
            assignments.reverse();
        }
        let plan = FaultPlan::try_from_assignments(assignments).unwrap();
        prop_assert_eq!(plan.len(), 3);
        // Output order is canonical (sorted) whatever the input order.
        let nodes: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
        prop_assert_eq!(nodes, vec![base, base + stride, base + 2 * stride]);
    }

    // --- AdaptivePolicy decision invariants.

    #[test]
    fn adaptive_decisions_are_deterministic_in_the_view(
        n in 1usize..100,
        seed in 0u64..500,
        round in 0u64..16,
        policy_ix in 0usize..2,
        budget in 0usize..20,
        salt in 0u64..64,
    ) {
        let beepers = BitVec::from_fn(n, |v| (v as u64).wrapping_mul(salt + 1).is_multiple_of(3));
        let energy: Vec<u64> = (0..n as u64).map(|v| (v ^ salt) % 7).collect();
        let p = policy(policy_ix, budget);
        let last_activity = if round > 2 { Some(round - 2) } else { None };
        let make_view = || AdversaryView {
            seed,
            round,
            beepers: &beepers,
            beeps_per_node: &energy,
            last_activity,
        };
        prop_assert_eq!(p.decide(&make_view()), p.decide(&make_view()));
    }

    #[test]
    fn adaptive_decisions_stay_in_range_and_within_budget(
        n in 1usize..100,
        seed in 0u64..500,
        round in 0u64..16,
        policy_ix in 0usize..2,
        budget in 0usize..20,
        salt in 0u64..64,
    ) {
        let beepers = BitVec::from_fn(n, |v| (v as u64 ^ salt) % 4 == 1);
        let energy: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(salt) % 5).collect();
        let p = policy(policy_ix, budget);
        let decision = p.decide(&AdversaryView {
            seed,
            round,
            beepers: &beepers,
            beeps_per_node: &energy,
            last_activity: Some(round),
        });
        for list in [decision.spam(), decision.mute(), decision.deafen()] {
            prop_assert!(list.len() <= budget, "{} faults > budget {}", list.len(), budget);
            for &v in list {
                prop_assert!(v < n, "node {} out of range {}", v, n);
            }
            for w in list.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate: {:?}", w);
            }
        }
    }

    #[test]
    fn zero_budget_policies_never_act(
        n in 1usize..100,
        seed in 0u64..500,
        round in 0u64..16,
        policy_ix in 0usize..2,
        salt in 0u64..64,
    ) {
        let beepers = BitVec::from_fn(n, |v| (v as u64 ^ salt).is_multiple_of(2));
        let p = policy(policy_ix, 0);
        prop_assert!(p.is_noop());
        prop_assert!(!FaultPlan::from_policy(p).is_adaptive());
        prop_assert!(FaultPlan::from_policy(p).is_empty());
        let decision = p.decide(&AdversaryView {
            seed,
            round,
            beepers: &beepers,
            beeps_per_node: &[],
            last_activity: None,
        });
        prop_assert!(decision.is_empty());
    }

    #[test]
    fn target_loudest_only_jams_nodes_that_have_beeped(
        n in 2usize..100,
        budget in 1usize..20,
        quiet_stride in 2usize..6,
    ) {
        // Nodes at multiples of the stride never beeped; the policy must
        // leave them alone no matter the budget.
        let energy: Vec<u64> = (0..n)
            .map(|v| if v % quiet_stride == 0 { 0 } else { v as u64 + 1 })
            .collect();
        let beepers = BitVec::zeros(n);
        let decision = AdaptivePolicy::TargetLoudest { budget }.decide(&AdversaryView {
            seed: 1,
            round: 3,
            beepers: &beepers,
            beeps_per_node: &energy,
            last_activity: None,
        });
        for &v in decision.mute() {
            prop_assert!(energy[v] > 0, "jammed silent node {}", v);
        }
        prop_assert_eq!(decision.mute(), decision.deafen());
        prop_assert!(decision.spam().is_empty());
    }

    #[test]
    fn rushing_spam_only_targets_silent_nodes_while_active(
        n in 2usize..100,
        budget in 1usize..20,
        seed in 0u64..200,
        round in 0u64..16,
    ) {
        let beepers = BitVec::from_fn(n, |v| v % 3 == 0);
        let decision = AdaptivePolicy::RushingSpam { budget, window: 2 }.decide(&AdversaryView {
            seed,
            round,
            beepers: &beepers,
            beeps_per_node: &[],
            last_activity: Some(round),
        });
        prop_assert!(!decision.spam().is_empty(), "active round, nonzero budget");
        for &v in decision.spam() {
            prop_assert!(!beepers.get(v), "spammed a node already beeping: {}", v);
        }
        prop_assert!(decision.mute().is_empty());
        prop_assert!(decision.deafen().is_empty());
    }
}
