//! Golden pins for the noisy RNG stream of the sharded bitset kernel.
//!
//! A noisy bitset transcript is a pure function of
//! `(graph, noise, seed, actions, shard_count)` — that tuple is the
//! reproducibility key every recorded experiment in the workspace relies
//! on. These tests pin actual transcript bits per `(seed, ε, shard_count)`
//! cell, so an accidental change to `noise_stream_seed`, to the geometric
//! gap sampler, or to the shard layout fails loudly here instead of
//! silently shifting every noisy result in the repository.
//!
//! If you change the stream *deliberately*, regenerate the constants below
//! (run with `--nocapture`; each test prints its computed values) and
//! document the break in CHANGES.md.
//!
//! Platform caveat: the geometric gap sampler computes `f64::ln`, which is
//! not guaranteed bit-identical across libm implementations. The pinned
//! transcripts are exact on the CI toolchain (glibc Linux); if a test
//! fails on another platform with a *one-flip* divergence while
//! `noise_stream_seed_is_pinned` still passes, suspect a last-ULP `ln`
//! difference crossing an integer boundary, not a stream break.

use beep_bits::BitVec;
use beep_net::{
    noise_stream_seed, protocol_coin, topology, AdaptivePolicy, AdversarialErasure, BeepNetwork,
    ChannelModel, FaultKind, FaultPlan, GilbertElliott, Graph, Noise, PerNodeEps,
    PROTOCOL_COIN_STREAM,
};

/// FNV-1a over the words of a sequence of received frames — a stable,
/// dependency-free transcript fingerprint.
fn transcript_fingerprint(frames: &[BitVec]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for frame in frames {
        for &word in frame.as_words() {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    hash
}

/// Runs `rounds` noisy bitset rounds on a cycle of `n` nodes with a fixed
/// sparse beeper set and the given stream key.
fn noisy_transcript(n: usize, seed: u64, eps: f64, shards: usize, rounds: usize) -> Vec<BitVec> {
    let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), Noise::bernoulli(eps), seed);
    net.set_shard_count(shards);
    let beepers = BitVec::from_fn(n, |v| v % 37 == 0);
    (0..rounds)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect()
}

#[test]
fn noise_stream_seed_is_pinned() {
    let computed: Vec<u64> = [
        (0u64, 0u64, 0u64),
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (7, 3, 1),
        (7, 1, 3),
        (0xDEAD_BEEF, 41, 6),
    ]
    .iter()
    .map(|&(seed, round, shard)| noise_stream_seed(seed, round, shard))
    .collect();
    println!("noise_stream_seed pins: {computed:#018X?}");
    assert_eq!(
        computed,
        vec![
            0x0000_0000_0000_0000,
            0x0000_0000_0000_0001,
            0x9E37_79B9_7F4A_7C15,
            0x9FB2_1C65_1E98_DF25,
            0x4514_7149_6347_AB1D,
            0x4121_2C96_2480_E17D,
            0xE8CE_D4EB_0BD5_5B6C,
        ]
    );
}

#[test]
fn golden_noisy_transcripts_per_seed_eps_shards() {
    let mut computed = Vec::new();
    for &(seed, eps, shards) in &[
        (1u64, 0.1f64, 1usize),
        (1, 0.1, 2),
        (1, 0.1, 8),
        (1, 0.3, 8),
        (9, 0.1, 8),
        (9, 0.3, 2),
    ] {
        let frames = noisy_transcript(512, seed, eps, shards, 8);
        computed.push(transcript_fingerprint(&frames));
    }
    println!("golden fingerprints: {computed:#018X?}");
    assert_eq!(
        computed,
        vec![
            0x921A_3CE2_256B_220F,
            0x82B3_1D36_3CB4_E383,
            0xF20B_61B1_63CB_81F1,
            0x9680_2B6D_B193_2DD8,
            0xDE08_FFD2_7515_D85D,
            0x1535_F8E0_530E_2E9C,
        ]
    );
}

#[test]
fn golden_small_transcript_is_bit_pinned() {
    // One cell pinned bit-for-bit (not just fingerprinted), so a stream
    // break shows the actual divergence in the failure message.
    let frames = noisy_transcript(64, 3, 0.2, 1, 3);
    let rendered: Vec<String> = frames.iter().map(BitVec::to_string).collect();
    for f in &rendered {
        println!("\"{f}\",");
    }
    assert_eq!(
        rendered,
        vec![
            "0100010000000001000000001000011100000110110001101001100011000001",
            "1100000000000000001000100000000000110101110011000110000001100001",
            "1000000101000000101001001001000000011111000010000000001100110101",
        ]
    );
}

/// Like [`noisy_transcript`], but for an arbitrary channel model.
fn channel_transcript(
    channel: ChannelModel,
    seed: u64,
    shards: usize,
    rounds: usize,
) -> Vec<BitVec> {
    let n = 512;
    let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), channel, seed);
    net.set_shard_count(shards);
    let beepers = BitVec::from_fn(n, |v| v % 37 == 0);
    (0..rounds)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect()
}

/// The golden channel suite: one parameterization per non-iid family,
/// shared by the fingerprint and thread-invariance pins below.
fn golden_channels() -> Vec<(&'static str, ChannelModel)> {
    vec![
        (
            "ge",
            GilbertElliott::try_new(0.05, 0.3, 0.3, 0.5).unwrap().into(),
        ),
        (
            "pernode",
            PerNodeEps::try_new(vec![0.0, 0.1, 0.3]).unwrap().into(),
        ),
        ("adv", AdversarialErasure::try_new(7, 0.1).unwrap().into()),
    ]
}

#[test]
fn golden_channel_transcripts_per_model_seed_shards() {
    // Each non-iid channel family draws from the same counter-keyed
    // streams as the iid channel (plus, for Gilbert–Elliott, the reserved
    // ROUND_STATE_STREAM shard), so each gets its own transcript pin: a
    // change to any model's sampling order or shard split fails here.
    let mut computed = Vec::new();
    for (key, channel) in golden_channels() {
        for &(seed, shards) in &[(1u64, 1usize), (1, 8)] {
            let frames = channel_transcript(channel.clone(), seed, shards, 8);
            let fp = transcript_fingerprint(&frames);
            println!("{key} seed={seed} shards={shards}: {fp:#018X}");
            computed.push(fp);
        }
    }
    assert_eq!(
        computed,
        vec![
            0xE03B_C123_9E1C_B0C7,
            0xE83D_B18B_2912_0A2C,
            0x8578_A5BC_660B_4821,
            0x0507_455B_0DD4_102F,
            0x80DA_AA7C_9E51_E6C5,
            0xC5DD_03C3_D240_0515,
        ]
    );
}

#[test]
fn golden_gilbert_elliott_state_sequence_is_pinned() {
    // The per-round Markov draw comes from the reserved ROUND_STATE_STREAM
    // shard of the same counter-keyed generator. Pinning the state bits
    // directly separates "the chain moved" from "the flips moved" when a
    // Gilbert–Elliott transcript pin breaks.
    let ge = GilbertElliott::try_new(0.05, 0.3, 0.3, 0.5).unwrap();
    let states: String = (0..32)
        .map(|round| if ge.in_bad_state(1, round) { 'B' } else { 'g' })
        .collect();
    println!("ge state sequence (seed 1): {states}");
    assert_eq!(states, "gggBBgBBgBBgggggggBggBBBBBBBggBB");
}

#[test]
fn golden_channel_transcripts_survive_any_thread_count() {
    // Every model's pinned stream is thread-count-invariant: the parallel
    // path must reproduce the single-thread fingerprint exactly.
    for (key, channel) in golden_channels() {
        let reference = transcript_fingerprint(&channel_transcript(channel.clone(), 1, 8, 8));
        for threads in [2, 4, 8] {
            let mut net = BeepNetwork::new(topology::cycle(512).unwrap(), channel.clone(), 1);
            net.set_shard_count(8);
            net.set_parallelism(threads);
            let beepers = BitVec::from_fn(512, |v| v % 37 == 0);
            let frames: Vec<BitVec> = (0..8)
                .map(|_| net.run_round_bitset(&beepers).unwrap())
                .collect();
            assert_eq!(
                transcript_fingerprint(&frames),
                reference,
                "{key} threads={threads}"
            );
        }
    }
}

#[test]
fn golden_fault_plan_realization_is_pinned() {
    // Plan realization draws from the reserved FAULT_PLAN_STREAM shard of
    // the same counter-keyed generator the channels use, so the sampled
    // node set is part of the reproducibility contract: pin it per
    // (n, fraction, kind, seed). A change to the sampler (or to the
    // reserved stream id) moves every faulted cell in every campaign.
    let mut computed = Vec::new();
    for &(n, fraction, kind, seed) in &[
        (16usize, 0.25f64, FaultKind::Crash { round: 5 }, 1u64),
        (16, 0.25, FaultKind::Crash { round: 5 }, 9),
        (16, 0.5, FaultKind::ByzantineSpam, 1),
        (512, 0.02, FaultKind::ByzantineMute, 7),
    ] {
        let plan = FaultPlan::realize(n, fraction, kind, seed).unwrap();
        let nodes: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
        println!("realize({n}, {fraction}, {kind:?}, {seed}) -> {nodes:?}");
        computed.push(nodes);
    }
    assert_eq!(
        computed,
        vec![
            vec![1usize, 4, 10, 15],
            vec![2, 5, 7, 12],
            vec![1, 2, 4, 5, 7, 10, 11, 15],
            vec![3, 20, 97, 180, 205, 246, 315, 367, 428, 492],
        ]
    );
}

/// Like [`noisy_transcript`], but under a fault plan realized from the
/// run seed (kind per call; fraction fixed at 1/8 of the nodes).
fn faulted_transcript(
    kind: FaultKind,
    seed: u64,
    shards: usize,
    rounds: usize,
    threads: usize,
) -> Vec<BitVec> {
    let n = 512;
    let plan = FaultPlan::realize(n, 0.125, kind, seed).unwrap();
    let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), Noise::bernoulli(0.1), seed);
    net.set_shard_count(shards);
    net.set_parallelism(threads);
    net.set_fault_plan(plan).unwrap();
    let beepers = BitVec::from_fn(n, |v| v % 37 == 0);
    (0..rounds)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect()
}

/// The golden fault suite: one entry per fault kind (the crash round sits
/// mid-transcript so the pin covers both regimes).
const GOLDEN_FAULTS: [(&str, FaultKind); 3] = [
    ("crash", FaultKind::Crash { round: 4 }),
    ("spam", FaultKind::ByzantineSpam),
    ("mute", FaultKind::ByzantineMute),
];

#[test]
fn golden_faulted_transcripts_per_kind_seed_shards() {
    // The fault overlay composes with the pinned noise stream without
    // disturbing it: each (kind, seed, shards) cell gets its own
    // fingerprint. A change to the overlay order (overlay before channel,
    // deafness after) or to plan realization fails here.
    let mut computed = Vec::new();
    for (key, kind) in GOLDEN_FAULTS {
        for &(seed, shards) in &[(1u64, 1usize), (1, 8), (9, 8)] {
            let fp = transcript_fingerprint(&faulted_transcript(kind, seed, shards, 8, 1));
            println!("{key} seed={seed} shards={shards}: {fp:#018X}");
            computed.push(fp);
        }
    }
    assert_eq!(
        computed,
        vec![
            0xCF55_2C3C_07E1_FB3A,
            0x8416_1AB7_9380_08BD,
            0x515D_5352_2EA9_F00F,
            0x7CA9_E1FB_E073_EAE3,
            0xED5C_E8D3_A2BE_C59D,
            0x8917_89B8_A392_014D,
            0xB2E4_DADD_15CC_9C23,
            0x8A8D_67C1_414E_81BD,
            0xF31A_4373_6281_2981,
        ]
    );
}

#[test]
fn golden_faulted_transcripts_survive_any_thread_count() {
    // Faulted pins are thread-count-invariant too: the parallel path must
    // reproduce the single-thread fingerprint for every fault kind.
    for (key, kind) in GOLDEN_FAULTS {
        let reference = transcript_fingerprint(&faulted_transcript(kind, 1, 8, 8, 1));
        for threads in [2, 4, 8] {
            assert_eq!(
                transcript_fingerprint(&faulted_transcript(kind, 1, 8, 8, threads)),
                reference,
                "{key} threads={threads}"
            );
        }
    }
}

/// Like [`faulted_transcript`], but under an arbitrary (possibly adaptive)
/// plan built by the caller.
fn adaptive_transcript(plan: FaultPlan, seed: u64, shards: usize, threads: usize) -> Vec<BitVec> {
    let n = 512;
    let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), Noise::bernoulli(0.1), seed);
    net.set_shard_count(shards);
    net.set_parallelism(threads);
    net.set_fault_plan(plan).unwrap();
    let beepers = BitVec::from_fn(n, |v| v % 37 == 0);
    (0..8)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect()
}

/// The golden adaptive suite: one actionable parameterization per policy,
/// plus a static + adaptive composition pinning the overlay order.
fn golden_policies() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "loudest",
            FaultPlan::from_policy(AdaptivePolicy::TargetLoudest { budget: 16 }),
        ),
        (
            "rushing",
            FaultPlan::from_policy(AdaptivePolicy::RushingSpam {
                budget: 16,
                window: 2,
            }),
        ),
        (
            "mute+rushing",
            FaultPlan::realize(512, 0.125, FaultKind::ByzantineMute, 1)
                .unwrap()
                .with_policy(AdaptivePolicy::RushingSpam {
                    budget: 8,
                    window: 1,
                }),
        ),
    ]
}

#[test]
fn golden_adaptive_transcripts_per_policy_seed_shards() {
    // The adaptive decision composes with the pinned noise stream without
    // disturbing it: each (policy, seed, shards) cell gets its own
    // fingerprint. A change to the decision inputs (post-static beepers,
    // cumulative energy, last activity), to the RushingSpam draw, or to
    // the reserved ADAPTIVE_POLICY_STREAM id fails here.
    let mut computed = Vec::new();
    for (key, plan) in golden_policies() {
        for &(seed, shards) in &[(1u64, 1usize), (1, 8), (9, 8)] {
            let fp = transcript_fingerprint(&adaptive_transcript(plan.clone(), seed, shards, 1));
            println!("{key} seed={seed} shards={shards}: {fp:#018X}");
            computed.push(fp);
        }
    }
    assert_eq!(
        computed,
        vec![
            0x0289_2B4C_3A86_C3B5,
            0xE659_0AE6_E582_CB27,
            0x4A68_4CEB_30AE_698A,
            0x178B_8F12_DAF8_F319,
            0x183C_D741_910D_3517,
            0x2902_07C4_1E8C_6956,
            0x37A7_0688_A2DC_8B10,
            0xF1DD_2931_51A4_D35A,
            0x499F_4A5D_C554_000C,
        ]
    );
}

#[test]
fn golden_adaptive_transcripts_survive_any_thread_count() {
    // Adaptive pins are thread-count-invariant too: the decision is made
    // once per round before the shard fan-out, so the parallel path must
    // reproduce the single-thread fingerprint for every policy.
    for (key, plan) in golden_policies() {
        let reference = transcript_fingerprint(&adaptive_transcript(plan.clone(), 1, 8, 1));
        for threads in [2, 4, 8] {
            assert_eq!(
                transcript_fingerprint(&adaptive_transcript(plan.clone(), 1, 8, threads)),
                reference,
                "{key} threads={threads}"
            );
        }
    }
}

#[test]
fn zero_budget_policies_leave_the_golden_stream_untouched() {
    // A zero-budget policy is a provable no-op: the plan stays empty, the
    // engine takes the fault-free fast path, and the fault-free golden
    // fingerprint must come out byte-identical.
    for policy in [
        AdaptivePolicy::TargetLoudest { budget: 0 },
        AdaptivePolicy::RushingSpam {
            budget: 0,
            window: 3,
        },
    ] {
        let frames = adaptive_transcript(FaultPlan::from_policy(policy), 1, 8, 1);
        assert_eq!(
            transcript_fingerprint(&frames),
            0xF20B_61B1_63CB_81F1,
            "{policy:?}"
        );
    }
}

#[test]
fn golden_protocol_coin_stream_values() {
    // Protocol coins draw from the reserved PROTOCOL_COIN_STREAM shard of
    // the same counter-keyed generator: pin the keyed seeds and the coin
    // bits themselves so a change to the stream id, the per-node mixing
    // constant, or the draw moves loudly. Recorded `beep_ben_or` runs
    // depend on exactly these bits.
    let keys: Vec<u64> = (0..3)
        .map(|phase| noise_stream_seed(1, phase, PROTOCOL_COIN_STREAM))
        .collect();
    println!("coin stream keys (seed 1): {keys:#018X?}");
    assert_eq!(
        computed_coin_grid(1),
        "1010100000001000_0001000000000111_1110111101000001",
        "coin grid (seed 1)"
    );
    assert_eq!(
        keys,
        vec![
            0x8137_8E6B_859C_836D,
            0x1F00_F7D2_FAD6_FF78,
            0xBD59_7D19_7B08_7B47,
        ]
    );
    // Coins are seed-sensitive and not constant per phase.
    assert_ne!(computed_coin_grid(1), computed_coin_grid(2));
}

/// Phases 0..3 × nodes 0..16 of the coin stream, one `_`-separated bit row
/// per phase (printed so a deliberate break can regenerate the pin).
fn computed_coin_grid(seed: u64) -> String {
    let grid: Vec<String> = (0..3)
        .map(|phase| {
            (0..16)
                .map(|v| {
                    if protocol_coin(seed, v, phase) {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect()
        })
        .collect();
    let joined = grid.join("_");
    println!("coin grid (seed {seed}): {joined}");
    joined
}

#[test]
fn empty_fault_plan_leaves_the_golden_stream_untouched() {
    // Installing an empty plan is a byte-level no-op: the fault-free
    // golden fingerprint must come out unchanged.
    let mut net = BeepNetwork::new(topology::cycle(512).unwrap(), Noise::bernoulli(0.1), 1);
    net.set_shard_count(8);
    net.set_fault_plan(FaultPlan::none()).unwrap();
    let beepers = BitVec::from_fn(512, |v| v % 37 == 0);
    let frames: Vec<BitVec> = (0..8)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect();
    assert_eq!(transcript_fingerprint(&frames), 0xF20B_61B1_63CB_81F1);
}

/// Like [`noisy_transcript`], but on a torus built by the given
/// constructor (512 = 8 × 64 nodes), so the implicit shift kernel and the
/// materialized CSR kernel can be pinned against the same stream.
fn torus_transcript(
    graph: Graph,
    seed: u64,
    eps: f64,
    shards: usize,
    rounds: usize,
) -> Vec<BitVec> {
    let n = graph.node_count();
    let mut net = BeepNetwork::new(graph, Noise::bernoulli(eps), seed);
    net.set_shard_count(shards);
    let beepers = BitVec::from_fn(n, |v| v % 37 == 0);
    (0..rounds)
        .map(|_| net.run_round_bitset(&beepers).unwrap())
        .collect()
}

#[test]
fn golden_implicit_torus_transcripts_per_seed_eps_shards() {
    // The adjacency representation is NOT part of the stream key: the
    // implicit shift kernel on `implicit_torus` must reproduce the exact
    // pinned fingerprints of the materialized CSR torus, per
    // (seed, ε, shard_count) cell. A change to the wide-word OR lanes, the
    // wrap masks, or the tail masking fails here.
    let mut computed = Vec::new();
    for &(seed, eps, shards) in &[(1u64, 0.1f64, 1usize), (1, 0.1, 8), (9, 0.3, 2)] {
        let implicit = torus_transcript(
            topology::implicit_torus(8, 64).unwrap(),
            seed,
            eps,
            shards,
            8,
        );
        let materialized = torus_transcript(topology::torus(8, 64).unwrap(), seed, eps, shards, 8);
        assert_eq!(
            implicit, materialized,
            "implicit vs csr seed={seed} eps={eps} shards={shards}"
        );
        let fp = transcript_fingerprint(&implicit);
        println!("implicit torus seed={seed} eps={eps} shards={shards}: {fp:#018X}");
        computed.push(fp);
    }
    assert_eq!(
        computed,
        vec![
            0x6299_4147_3091_564F,
            0xC001_B994_3269_9EF9,
            0x50E9_8667_924A_E85C,
        ]
    );
}

/// Transposes per-node heard frames (the `run_frame*` output shape) into
/// the per-round bitmaps the golden fingerprints are computed over.
fn per_round_bitmaps(heard: &[BitVec], rounds: usize) -> Vec<BitVec> {
    (0..rounds)
        .map(|r| BitVec::from_fn(heard.len(), |v| heard[v].get(r)))
        .collect()
}

#[test]
fn batched_frames_reproduce_the_golden_per_round_stream() {
    // Frame batching is NOT part of the stream key either: driving the
    // same 8-round schedule through `run_frames_batched` must reproduce
    // the original fault-free golden fingerprint byte-for-byte.
    let mut net = BeepNetwork::new(topology::cycle(512).unwrap(), Noise::bernoulli(0.1), 1);
    net.set_shard_count(8);
    let frames: Vec<Option<BitVec>> = (0..512)
        .map(|v| Some(BitVec::from_fn(8, |_| v % 37 == 0)))
        .collect();
    let heard = net.run_frames_batched(&frames, 8).unwrap();
    assert_eq!(
        transcript_fingerprint(&per_round_bitmaps(&heard, 8)),
        0xF20B_61B1_63CB_81F1
    );
}

#[test]
fn golden_batched_implicit_transcript_crosses_a_block_boundary() {
    // One pin covering both new paths at once: a 40-round schedule (two
    // cache blocks) through `run_frames_batched` on the implicit torus.
    // The per-round loop on the materialized torus must produce the same
    // bytes, and the fingerprint is pinned so a change to the block
    // pre-pass ordering or the slab scatter fails loudly.
    let rounds = 40;
    let frames: Vec<Option<BitVec>> = (0..512)
        .map(|v| Some(BitVec::from_fn(rounds, |r| (v + r) % 37 == 0)))
        .collect();
    let mut batched = BeepNetwork::new(
        topology::implicit_torus(8, 64).unwrap(),
        Noise::bernoulli(0.1),
        1,
    );
    batched.set_shard_count(8);
    let heard = batched.run_frames_batched(&frames, rounds).unwrap();

    let mut reference = BeepNetwork::new(topology::torus(8, 64).unwrap(), Noise::bernoulli(0.1), 1);
    reference.set_shard_count(8);
    let expected: Vec<BitVec> = (0..rounds)
        .map(|r| {
            let beepers = BitVec::from_fn(512, |v| (v + r) % 37 == 0);
            reference.run_round_bitset(&beepers).unwrap()
        })
        .collect();
    assert_eq!(per_round_bitmaps(&heard, rounds), expected);
    let fp = transcript_fingerprint(&expected);
    println!("batched implicit torus 40 rounds: {fp:#018X}");
    assert_eq!(fp, 0x8ABB_5AE8_D342_DCB2);
}

#[test]
fn golden_transcripts_survive_any_thread_count() {
    // The pinned stream is thread-count-invariant: the same fingerprints
    // must come out of the parallel path.
    for threads in [2, 4, 8] {
        let mut net = BeepNetwork::new(topology::cycle(512).unwrap(), Noise::bernoulli(0.1), 1);
        net.set_shard_count(8);
        net.set_parallelism(threads);
        let beepers = BitVec::from_fn(512, |v| v % 37 == 0);
        let frames: Vec<BitVec> = (0..8)
            .map(|_| net.run_round_bitset(&beepers).unwrap())
            .collect();
        assert_eq!(
            transcript_fingerprint(&frames),
            0xF20B_61B1_63CB_81F1,
            "threads={threads}"
        );
    }
}
