//! Property tests for the topology generators the scenario layer sweeps:
//! seeded determinism (the campaign reproducibility contract) and
//! structural invariants (node/edge counts, degree bounds, torus
//! 4-regularity, RGG radius respected).

use beep_net::topology;
use beep_net::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical edge list for graph equality across constructions.
fn edges(g: &Graph) -> Vec<(usize, usize)> {
    let mut e = g.edges();
    e.sort_unstable();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- Seeded determinism: same seed ⇒ identical graph; the random
    // families must be pure functions of (params, seed).

    #[test]
    fn gnp_is_seed_deterministic(n in 2usize..40, seed in 0u64..1000) {
        let a = topology::gnp(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = topology::gnp(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edges(&a), edges(&b));
    }

    #[test]
    fn rgg_is_seed_deterministic(n in 1usize..40, seed in 0u64..1000) {
        let (a, pa) = topology::random_geometric(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        let (b, pb) = topology::random_geometric(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edges(&a), edges(&b));
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn random_regular_is_seed_deterministic(k in 3usize..12, seed in 0u64..1000) {
        let n = 2 * k; // n·d always even
        let a = topology::random_regular(n, 4, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = topology::random_regular(n, 4, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edges(&a), edges(&b));
    }

    #[test]
    fn preferential_attachment_is_seed_deterministic(n in 4usize..40, seed in 0u64..1000) {
        let a = topology::preferential_attachment(n, 2, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = topology::preferential_attachment(n, 2, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edges(&a), edges(&b));
    }

    #[test]
    fn random_tree_is_seed_deterministic(n in 1usize..40, seed in 0u64..1000) {
        let a = topology::random_tree(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = topology::random_tree(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edges(&a), edges(&b));
    }

    // --- Structural invariants.

    #[test]
    fn torus_is_4_regular_with_exact_counts(rows in 3usize..12, cols in 3usize..12) {
        let g = topology::torus(rows, cols).unwrap();
        let n = rows * cols;
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), 2 * n);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), 4, "node {} of {}x{}", v, rows, cols);
        }
        prop_assert!(g.is_connected());
    }

    #[test]
    fn random_regular_degrees_are_exact(k in 2usize..16, d in 2usize..6, seed in 0u64..500) {
        let n = 2 * (k + d); // even product, d < n
        let g = topology::random_regular(n, d, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n * d / 2);
        prop_assert_eq!(g.max_degree(), d);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    #[test]
    fn rgg_respects_the_radius_exactly(n in 2usize..28, seed in 0u64..500, r_ticks in 1usize..18) {
        // The proptest shim has integer strategies only; quantize r.
        let r = r_ticks as f64 * 0.05;
        let (g, pos) = topology::random_geometric(n, r, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(pos.len(), n);
        // Positions stay in the unit square.
        for &(x, y) in &pos {
            prop_assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
        // Edge ⇔ within radius, checked over all pairs.
        for u in 0..n {
            for v in u + 1..n {
                let dx = pos[u].0 - pos[v].0;
                let dy = pos[u].1 - pos[v].1;
                let within = dx * dx + dy * dy <= r * r;
                prop_assert_eq!(g.has_edge(u, v), within, "pair ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn preferential_attachment_counts_and_degree_bounds(
        n in 4usize..48,
        m in 1usize..4, // m ≤ 3 < 4 ≤ n, so n > m always holds
        seed in 0u64..500,
    ) {
        let g = topology::preferential_attachment(n, m, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), n);
        // Seed star has m edges; each of the n−m−1 arrivals adds exactly m.
        prop_assert_eq!(g.edge_count(), m + m * (n - m - 1));
        prop_assert!(g.is_connected());
        // Every arrival keeps degree ≥ m; seed nodes ≥ 1.
        for v in m + 1..n {
            prop_assert!(g.degree(v) >= m, "arrival {} has degree {}", v, g.degree(v));
        }
        for v in 0..=m {
            prop_assert!(g.degree(v) >= 1);
        }
    }

    #[test]
    fn random_tree_is_spanning_and_acyclic(n in 1usize..48, seed in 0u64..500) {
        let g = topology::random_tree(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n.saturating_sub(1));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn different_seeds_usually_differ(seed in 0u64..500) {
        // Not a tautology — a generator ignoring its RNG would pass
        // determinism. 40-node G(n, 0.3) collisions across adjacent seeds
        // are astronomically unlikely.
        let a = topology::gnp(40, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = topology::gnp(40, 0.3, &mut StdRng::seed_from_u64(seed + 1)).unwrap();
        prop_assert_ne!(edges(&a), edges(&b));
    }
}
