//! Oracle test: the engine's round semantics checked against an
//! independent, naive re-implementation of the Section 1.1 spec, over
//! randomized graphs and action schedules.

use beep_net::{topology, Action, BeepNetwork, Graph, Noise};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// The spec, written as directly as possible: a node receives 1 iff it
/// beeps, or at least one neighbor beeps.
fn oracle_round(graph: &Graph, actions: &[Action]) -> Vec<bool> {
    (0..graph.node_count())
        .map(|v| match actions[v] {
            Action::Beep => true,
            Action::Listen => graph
                .neighbors(v)
                .iter()
                .any(|&u| matches!(actions[u], Action::Beep)),
        })
        .collect()
}

fn arb_graph_and_schedule() -> impl Strategy<Value = (Graph, Vec<Vec<Action>>)> {
    (2usize..12).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |pairs| {
            let filtered: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            Graph::from_edges(n, &filtered).expect("valid edges")
        });
        let schedule = prop::collection::vec(
            prop::collection::vec(prop::bool::ANY, n).prop_map(|bits| {
                bits.into_iter()
                    .map(Action::from_bit)
                    .collect::<Vec<Action>>()
            }),
            1..8,
        );
        (edges, schedule)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_oracle_noiselessly((graph, schedule) in arb_graph_and_schedule()) {
        let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 0);
        for actions in &schedule {
            let engine = net.run_round(actions).expect("valid action count");
            let oracle = oracle_round(&graph, actions);
            prop_assert_eq!(engine, oracle);
        }
        // Stats bookkeeping: rounds and action tallies add up.
        let stats = net.stats();
        prop_assert_eq!(stats.rounds, schedule.len());
        let beeps: u64 = schedule
            .iter()
            .flat_map(|row| row.iter())
            .filter(|a| matches!(a, Action::Beep))
            .count() as u64;
        prop_assert_eq!(stats.beeps, beeps);
        prop_assert_eq!(
            stats.beeps + stats.listens,
            (schedule.len() * graph.node_count()) as u64
        );
        // Per-node energy sums to the global count.
        prop_assert_eq!(net.beeps_by_node().iter().sum::<u64>(), beeps);
    }
}

#[test]
fn noisy_engine_flip_rate_matches_epsilon_per_node() {
    // Statistical oracle for the noisy channel: with everyone silent,
    // every node's phantom-beep rate must match ε individually (noise is
    // per-listener independent, not shared).
    let eps = 0.2;
    let n = 8;
    let rounds = 3000;
    let g = topology::complete(n).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 42);
    let silent = vec![Action::Listen; n];
    let mut phantom = vec![0usize; n];
    for _ in 0..rounds {
        for (v, heard) in net.run_round(&silent).unwrap().into_iter().enumerate() {
            if heard {
                phantom[v] += 1;
            }
        }
    }
    for (v, &count) in phantom.iter().enumerate() {
        let rate = count as f64 / rounds as f64;
        assert!((rate - eps).abs() < 0.04, "node {v}: rate {rate}");
    }
}

#[test]
fn noise_is_independent_across_nodes() {
    // Correlation check: two listeners' noise flips must be uncorrelated.
    let eps = 0.3;
    let rounds = 4000;
    let g = topology::path(2).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 7);
    let silent = vec![Action::Listen; 2];
    let (mut a, mut b, mut both) = (0usize, 0usize, 0usize);
    for _ in 0..rounds {
        let heard = net.run_round(&silent).unwrap();
        if heard[0] {
            a += 1;
        }
        if heard[1] {
            b += 1;
        }
        if heard[0] && heard[1] {
            both += 1;
        }
    }
    let pa = a as f64 / rounds as f64;
    let pb = b as f64 / rounds as f64;
    let pboth = both as f64 / rounds as f64;
    assert!(
        (pboth - pa * pb).abs() < 0.03,
        "joint {pboth} vs independent product {}",
        pa * pb
    );
}

#[test]
fn randomized_schedules_with_noise_never_panic() {
    // Fuzz the noisy engine with arbitrary schedules; only the statistics
    // are random, never the control flow.
    let mut rng = StdRng::seed_from_u64(13);
    for trial in 0..20 {
        let n = 2 + (trial % 7);
        let g = topology::gnp(n, 0.4, &mut rng).unwrap();
        let mut net = BeepNetwork::new(g, Noise::bernoulli(0.45), trial as u64);
        for _ in 0..50 {
            let actions: Vec<Action> = (0..n)
                .map(|_| Action::from_bit(rng.random_bool(0.5)))
                .collect();
            net.run_round(&actions).unwrap();
        }
        assert_eq!(net.stats().rounds, 50);
    }
}
