//! Differential oracle: the bit-parallel kernel (`run_round_bitset`,
//! `run_frame`) against the scalar reference `run_round`, bit-exact under
//! `Noise::Noiseless`, across **every** `topology::*` generator, both
//! adjacency kernels, and the sharded multi-threaded execution path at
//! thread counts {1, 2, 4, 8} — plus the statistical contract of the
//! batched noisy channel.
//!
//! CI runs this file explicitly (and fails if it vanishes or stops
//! executing tests): it is the proof that the production kernel and the
//! reference implementation are the same model.

use beep_bits::BitVec;
use beep_net::{
    topology, Action, AdaptiveAdversary, AdaptivePolicy, AdversarialErasure, BeepNetwork,
    ChannelModel, FaultKind, FaultPlan, GilbertElliott, Graph, Noise, PerNodeEps,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Every topology generator in `beep_net::topology`, instantiated at small
/// but structurally interesting sizes.
fn all_topologies() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xBEE9);
    vec![
        ("complete(9)".into(), topology::complete(9).unwrap()),
        (
            "complete_bipartite(4,7)".into(),
            topology::complete_bipartite(4, 7).unwrap(),
        ),
        (
            "complete_bipartite_with_isolated(3,11)".into(),
            topology::complete_bipartite_with_isolated(3, 11).unwrap(),
        ),
        ("path(13)".into(), topology::path(13).unwrap()),
        ("cycle(10)".into(), topology::cycle(10).unwrap()),
        ("star(12)".into(), topology::star(12).unwrap()),
        ("grid(3,5)".into(), topology::grid(3, 5).unwrap()),
        ("binary_tree(14)".into(), topology::binary_tree(14).unwrap()),
        ("hypercube(4)".into(), topology::hypercube(4).unwrap()),
        (
            "gnp(15,0.3)".into(),
            topology::gnp(15, 0.3, &mut rng).unwrap(),
        ),
        (
            "random_geometric(15,0.4)".into(),
            topology::random_geometric(15, 0.4, &mut rng).unwrap().0,
        ),
        (
            "random_regular(14,4)".into(),
            topology::random_regular(14, 4, &mut rng).unwrap(),
        ),
        (
            "random_tree(16)".into(),
            topology::random_tree(16, &mut rng).unwrap(),
        ),
        // Compressed/implicit adjacency representations: same edge sets as
        // generator-built CSR graphs, zero (or delta-varint) storage. Every
        // oracle in this file sweeps them alongside the materialized forms.
        ("torus(4,5)".into(), topology::torus(4, 5).unwrap()),
        (
            "implicit_torus(4,5)".into(),
            topology::implicit_torus(4, 5).unwrap(),
        ),
        (
            "implicit_grid(3,5)".into(),
            topology::implicit_grid(3, 5).unwrap(),
        ),
        (
            "implicit_complete(9)".into(),
            topology::implicit_complete(9).unwrap(),
        ),
        (
            "delta_csr(pa(15,2))".into(),
            topology::preferential_attachment(15, 2, &mut rng)
                .unwrap()
                .to_delta_csr()
                .unwrap(),
        ),
        (
            "delta_csr(gnp(15,0.3))".into(),
            topology::gnp(15, 0.3, &mut rng)
                .unwrap()
                .to_delta_csr()
                .unwrap(),
        ),
    ]
}

/// Random beep probability per round, chosen to cover silent, sparse and
/// dense beeper sets.
fn random_actions(n: usize, density: f64, rng: &mut StdRng) -> Vec<Action> {
    (0..n)
        .map(|_| Action::from_bit(rng.random_bool(density)))
        .collect()
}

fn beeper_bitmap(actions: &[Action]) -> BitVec {
    BitVec::from_fn(actions.len(), |v| actions[v] == Action::Beep)
}

#[test]
fn bitset_kernel_is_bit_identical_to_scalar_on_every_topology() {
    let mut rng = StdRng::seed_from_u64(7);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        // `None` keeps the auto-selected kernel (the implicit shift kernel
        // on implicit graphs); the overrides force the generic sparse and
        // dense-row kernels, so every representation is checked under
        // every kernel it can run.
        for mode in [None, Some(false), Some(true)] {
            let mut scalar = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
            let mut bitset = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
            if let Some(dense) = mode {
                bitset.set_dense_adjacency(dense);
            }
            scalar.record_transcript();
            bitset.record_transcript();
            for round in 0..12 {
                let density = [0.0, 0.05, 0.3, 1.0][round % 4];
                let actions = random_actions(n, density, &mut rng);
                let beepers = beeper_bitmap(&actions);
                let via_scalar = scalar.run_round(&actions).unwrap();
                let via_bitset = bitset.run_round_bitset(&beepers).unwrap();
                assert_eq!(
                    via_scalar,
                    via_bitset.iter_bits().collect::<Vec<bool>>(),
                    "{name} (kernel={}) round {round}",
                    bitset.kernel_label()
                );
            }
            // Bookkeeping must agree too: stats, per-node energy,
            // transcript.
            assert_eq!(scalar.stats(), bitset.stats(), "{name} stats");
            assert_eq!(
                scalar.beeps_by_node(),
                bitset.beeps_by_node(),
                "{name} energy"
            );
            assert_eq!(
                scalar.transcript(),
                bitset.transcript(),
                "{name} transcript"
            );
        }
    }
}

#[test]
fn run_frame_matches_round_by_round_scalar_driving() {
    let mut rng = StdRng::seed_from_u64(21);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 24;
        // Half the nodes transmit a random frame, half listen.
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 2 == 0).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        let mut scalar = BeepNetwork::new(graph.clone(), Noise::Noiseless, 2);
        let mut batched = BeepNetwork::new(graph.clone(), Noise::Noiseless, 2);
        let mut expected: Vec<BitVec> = (0..n).map(|_| BitVec::zeros(len)).collect();
        let mut actions = vec![Action::Listen; n];
        for i in 0..len {
            for (v, frame) in frames.iter().enumerate() {
                actions[v] = match frame {
                    Some(f) if f.get(i) => Action::Beep,
                    _ => Action::Listen,
                };
            }
            for (v, &bit) in scalar.run_round(&actions).unwrap().iter().enumerate() {
                if bit {
                    expected[v].set(i, true);
                }
            }
        }
        let heard = batched.run_frame(&frames).unwrap();
        assert_eq!(heard, expected, "{name}");
        assert_eq!(scalar.stats(), batched.stats(), "{name} stats");
    }
}

/// Thread counts the sharded-kernel oracles sweep (the acceptance
/// criterion's {1, 2, 4, 8}).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn threaded_kernel_is_bit_identical_to_scalar_on_every_topology() {
    // scalar ≡ bitset ≡ threaded, noiseless, for every topology generator,
    // every swept thread count, and shard counts on both sides of the
    // words-per-shard boundary.
    let mut rng = StdRng::seed_from_u64(97);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let mut scalar = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
        let mut threaded: Vec<BeepNetwork> = THREAD_COUNTS
            .iter()
            .flat_map(|&threads| {
                [1, 2, 8].map(|shards| {
                    let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, 1);
                    net.set_parallelism(threads);
                    net.set_shard_count(shards);
                    net
                })
            })
            .collect();
        for round in 0..8 {
            let density = [0.0, 0.05, 0.3, 1.0][round % 4];
            let actions = random_actions(n, density, &mut rng);
            let beepers = beeper_bitmap(&actions);
            let expected = scalar.run_round(&actions).unwrap();
            for net in &mut threaded {
                let received = net.run_round_bitset(&beepers).unwrap();
                assert_eq!(
                    expected,
                    received.iter_bits().collect::<Vec<bool>>(),
                    "{name} round {round} threads={} shards={}",
                    net.parallelism(),
                    net.shard_count()
                );
            }
        }
        for net in &threaded {
            assert_eq!(scalar.stats(), net.stats(), "{name} stats");
            assert_eq!(scalar.beeps_by_node(), net.beeps_by_node(), "{name} energy");
        }
    }
}

#[test]
fn noisy_transcripts_are_thread_count_invariant_on_every_topology() {
    // The tentpole determinism contract: with (graph, noise, seed, actions,
    // shard_count) fixed, every thread count — including 1 — produces a
    // bit-identical noisy transcript.
    let mut rng = StdRng::seed_from_u64(131);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let beeper_sets: Vec<BitVec> = (0..6)
            .map(|round| {
                let density = [0.0, 0.1, 0.5][round % 3];
                beeper_bitmap(&random_actions(n, density, &mut rng))
            })
            .collect();
        let run = |threads: usize| {
            let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.25), 7);
            net.set_parallelism(threads);
            beeper_sets
                .iter()
                .map(|b| net.run_round_bitset(b).unwrap())
                .collect::<Vec<BitVec>>()
        };
        let reference = run(THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            assert_eq!(run(threads), reference, "{name} threads={threads}");
        }
    }
}

#[test]
fn run_frame_into_is_thread_count_invariant_under_noise() {
    // The frame-level API inherits the per-round contract.
    let mut rng = StdRng::seed_from_u64(163);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 20;
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 3 != 1).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        let run = |threads: usize| {
            let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.1), 5);
            net.set_parallelism(threads);
            let mut heard = Vec::new();
            net.run_frame_into(&frames, len, &mut heard).unwrap();
            heard
        };
        let reference = run(THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            assert_eq!(run(threads), reference, "{name} threads={threads}");
        }
    }
}

#[test]
fn batched_noise_phantom_rate_matches_epsilon() {
    // Statistical oracle for the geometric-skip channel through the full
    // engine: with everyone silent, each node's phantom-beep rate must be
    // ≈ ε (the batched analogue of the scalar noise tests in
    // tests/oracle.rs).
    let eps = 0.2;
    let n = 64;
    let rounds = 3_000;
    let g = topology::cycle(n).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 11);
    let silent = BitVec::zeros(n);
    let mut phantom = vec![0usize; n];
    for _ in 0..rounds {
        for v in net.run_round_bitset(&silent).unwrap().iter_ones() {
            phantom[v] += 1;
        }
    }
    let global = phantom.iter().sum::<usize>() as f64 / (n * rounds) as f64;
    assert!((global - eps).abs() < 0.01, "global phantom rate {global}");
    for (v, &count) in phantom.iter().enumerate() {
        let rate = count as f64 / rounds as f64;
        assert!((rate - eps).abs() < 0.05, "node {v}: rate {rate}");
    }
}

#[test]
fn batched_noise_flips_ones_to_zeros_too() {
    // Everyone beeps: received is all-ones pre-noise, so the observed zero
    // rate is the flip rate.
    let eps = 0.3;
    let n = 50;
    let rounds = 2_000;
    let g = topology::complete(n).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 12);
    let everyone = BitVec::ones(n);
    let mut dropped = 0usize;
    for _ in 0..rounds {
        dropped += net.run_round_bitset(&everyone).unwrap().count_zeros();
    }
    let rate = dropped as f64 / (n * rounds) as f64;
    assert!((rate - eps).abs() < 0.01, "drop rate {rate}");
}

#[test]
fn batched_self_hearing_flag_protects_beepers() {
    // With noise-free self-hearing, a beeping node's own 1 never flips on
    // the bitset path either.
    let eps = 0.4;
    let n = 10;
    let g = topology::complete(n).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 13);
    net.set_self_hearing_noisy(false);
    let everyone = BitVec::ones(n);
    for _ in 0..500 {
        let received = net.run_round_bitset(&everyone).unwrap();
        assert_eq!(received.count_ones(), n, "a beeper's own bit flipped");
    }
}

/// Shard counts the channel oracles sweep (the acceptance criterion's
/// {1, 2, 8} — both sides of the words-per-shard boundary at these sizes).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// One representative of each non-iid channel family, at rates strong
/// enough that a stream break cannot hide inside an all-quiet noise pass.
/// The adversary's budget scales with `n` so every topology in the sweep
/// actually loses bits.
fn non_iid_channels(n: usize) -> Vec<(&'static str, ChannelModel)> {
    vec![
        (
            "ge",
            GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
                .unwrap()
                .into(),
        ),
        (
            "pernode",
            PerNodeEps::try_new(vec![0.0, 0.1, 0.3]).unwrap().into(),
        ),
        (
            "adv",
            AdversarialErasure::try_new(n / 4 + 1, 0.1).unwrap().into(),
        ),
    ]
}

#[test]
fn non_iid_channels_scalar_bitset_threaded_agree_bit_for_bit() {
    // Unlike the iid channel (whose scalar path draws bit-by-bit from the
    // sequential RNG and is only equal in distribution to the kernel),
    // every non-iid model is counter-keyed per (seed, round, shard), so
    // scalar ≡ bitset ≡ threaded holds *bit-for-bit* — across every
    // topology generator, threads {1, 2, 4, 8} × shards {1, 2, 8}.
    let mut rng = StdRng::seed_from_u64(0xC4A2);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        for (key, channel) in non_iid_channels(n) {
            for shards in SHARD_COUNTS {
                let mut scalar = BeepNetwork::new(graph.clone(), channel.clone(), 3);
                scalar.set_shard_count(shards);
                let mut threaded: Vec<BeepNetwork> = THREAD_COUNTS
                    .iter()
                    .map(|&threads| {
                        let mut net = BeepNetwork::new(graph.clone(), channel.clone(), 3);
                        net.set_shard_count(shards);
                        net.set_parallelism(threads);
                        net
                    })
                    .collect();
                for round in 0..6 {
                    let density = [0.0, 0.1, 0.5, 1.0][round % 4];
                    let actions = random_actions(n, density, &mut rng);
                    let beepers = beeper_bitmap(&actions);
                    let expected = scalar.run_round(&actions).unwrap();
                    for net in &mut threaded {
                        let received = net.run_round_bitset(&beepers).unwrap();
                        assert_eq!(
                            expected,
                            received.iter_bits().collect::<Vec<bool>>(),
                            "{name} {key} round {round} threads={} shards={shards}",
                            net.parallelism(),
                        );
                    }
                }
                for net in &threaded {
                    assert_eq!(
                        scalar.stats(),
                        net.stats(),
                        "{name} {key} shards={shards} stats"
                    );
                }
            }
        }
    }
}

#[test]
fn gilbert_elliott_flip_rates_track_the_round_state() {
    // Statistical oracle for the bursty channel through the full engine:
    // with everyone silent, a round's phantom rate must be ≈ ε_good in
    // good rounds and ≈ ε_bad in bad rounds, with the state sequence
    // replayable from (seed, round) alone.
    let (eps_good, eps_bad) = (0.05, 0.35);
    let ge = GilbertElliott::try_new(eps_good, eps_bad, 0.1, 0.5).unwrap();
    let oracle = ge.clone();
    let n = 256;
    let rounds = 2_000u64;
    let seed = 17;
    let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), ge, seed);
    let silent = BitVec::zeros(n);
    let (mut good, mut bad) = ((0usize, 0usize), (0usize, 0usize));
    for round in 0..rounds {
        let ones = net.run_round_bitset(&silent).unwrap().count_ones();
        let bucket = if oracle.in_bad_state(seed, round) {
            &mut bad
        } else {
            &mut good
        };
        bucket.0 += ones;
        bucket.1 += n;
    }
    // π_bad = p_gb / (p_gb + p_bg) = 1/6: both states must actually occur.
    assert!(good.1 > 0 && bad.1 > 0, "one state never occurred");
    let good_rate = good.0 as f64 / good.1 as f64;
    let bad_rate = bad.0 as f64 / bad.1 as f64;
    assert!(
        (good_rate - eps_good).abs() < 0.01,
        "good-state phantom rate {good_rate}"
    );
    assert!(
        (bad_rate - eps_bad).abs() < 0.02,
        "bad-state phantom rate {bad_rate}"
    );
}

#[test]
fn per_node_eps_phantom_rates_follow_the_pattern() {
    // Node v's phantom rate must be ≈ pattern[v mod len]; in particular
    // an ε = 0 node never hears a phantom beep, at any shard count.
    let pattern = vec![0.0, 0.1, 0.3];
    let n = 96;
    let rounds = 3_000;
    for shards in SHARD_COUNTS {
        let ch = PerNodeEps::try_new(pattern.clone()).unwrap();
        let mut net = BeepNetwork::new(topology::cycle(n).unwrap(), ch, 23);
        net.set_shard_count(shards);
        let silent = BitVec::zeros(n);
        let mut phantom = vec![0usize; n];
        for _ in 0..rounds {
            for v in net.run_round_bitset(&silent).unwrap().iter_ones() {
                phantom[v] += 1;
            }
        }
        for (v, &count) in phantom.iter().enumerate() {
            let expected = pattern[v % pattern.len()];
            let rate = count as f64 / f64::from(rounds);
            if expected == 0.0 {
                assert_eq!(count, 0, "clean node {v} heard {count} phantoms");
            } else {
                assert!(
                    (rate - expected).abs() < 0.04,
                    "node {v}: rate {rate}, expected {expected} (shards={shards})"
                );
            }
        }
    }
}

#[test]
fn adversarial_erasure_respects_budget_and_never_fabricates() {
    let n = 40;
    let budget = 5;
    let ch = AdversarialErasure::try_new(budget, 0.1).unwrap();
    let g = topology::complete(n).unwrap();
    for shards in SHARD_COUNTS {
        // Erasure-only: silence is always delivered faithfully.
        let mut net = BeepNetwork::new(g.clone(), ch.clone(), 29);
        net.set_shard_count(shards);
        let silent = BitVec::zeros(n);
        for _ in 0..20 {
            assert_eq!(
                net.run_round_bitset(&silent).unwrap().count_ones(),
                0,
                "the adversary fabricated a beep (shards={shards})"
            );
        }
        // Everyone beeps: pre-channel received is all-ones, so the zero
        // count is exactly the adversary's spend — never above budget.
        // The budget is split across *shards*, and at n = 40 only shard 0
        // owns any words, so shares handed to empty shards go unspent:
        // exact exhaustion holds at shards = 1, a positive spend within
        // budget everywhere else.
        let everyone = BitVec::ones(n);
        for _ in 0..20 {
            let zeros = net.run_round_bitset(&everyone).unwrap().count_zeros();
            assert!(zeros <= budget, "spent {zeros} > budget {budget}");
            assert!(zeros >= 1, "the adversary never spent (shards={shards})");
            if shards == 1 {
                assert_eq!(zeros, budget, "a full frame should exhaust the budget");
            }
        }
        // Noise-free self-hearing protects every beeper, leaving the
        // adversary no legal target at all.
        let mut protected = BeepNetwork::new(g.clone(), ch.clone(), 29);
        protected.set_shard_count(shards);
        protected.set_self_hearing_noisy(false);
        for _ in 0..20 {
            assert_eq!(
                protected.run_round_bitset(&everyone).unwrap().count_ones(),
                n,
                "a protected beeper lost its bit (shards={shards})"
            );
        }
    }
}

/// One realized plan per fault kind, plus a mixed hand-built plan, all
/// touching ≈ a quarter of the nodes. The crash round sits mid-run so
/// each transcript covers both the live and the dead regime.
fn fault_plans(n: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "crash",
            FaultPlan::realize(n, 0.25, FaultKind::Crash { round: 3 }, 0xFA).unwrap(),
        ),
        (
            "spam",
            FaultPlan::realize(n, 0.25, FaultKind::ByzantineSpam, 0xFB).unwrap(),
        ),
        (
            "mute",
            FaultPlan::realize(n, 0.25, FaultKind::ByzantineMute, 0xFC).unwrap(),
        ),
        (
            "mixed",
            FaultPlan::try_from_assignments(vec![
                (0, FaultKind::Crash { round: 0 }),
                (n / 2, FaultKind::ByzantineSpam),
                (n - 1, FaultKind::ByzantineMute),
            ])
            .unwrap(),
        ),
    ]
}

/// Every adaptive policy the oracles sweep: each pure-policy variant at a
/// budget that bites at these sizes, plus static + adaptive compositions
/// that pin the overlay order (static overrides first, then the adaptive
/// decision) in every kernel.
fn adaptive_plans(n: usize) -> Vec<(String, FaultPlan)> {
    let mut plans: Vec<(String, FaultPlan)> = [
        AdaptivePolicy::TargetLoudest { budget: n / 4 + 1 },
        AdaptivePolicy::RushingSpam {
            budget: n / 8 + 1,
            window: 2,
        },
    ]
    .into_iter()
    .map(|p| (p.label(), FaultPlan::from_policy(p)))
    .collect();
    plans.push((
        "crash+loudest".into(),
        FaultPlan::realize(n, 0.25, FaultKind::Crash { round: 3 }, 0xAE)
            .unwrap()
            .with_policy(AdaptivePolicy::TargetLoudest { budget: 3 }),
    ));
    plans.push((
        "mute+rushing".into(),
        FaultPlan::realize(n, 0.25, FaultKind::ByzantineMute, 0xAF)
            .unwrap()
            .with_policy(AdaptivePolicy::RushingSpam {
                budget: 2,
                window: 1,
            }),
    ));
    plans
}

#[test]
fn adaptive_scalar_bitset_threaded_agree_bit_for_bit() {
    // The adaptive decision is computed once per round from thread-
    // invariant observables (post-static submitted beepers, cumulative
    // per-node energy, last activity round) and applied through the same
    // two override passes as static faults — so scalar ≡ bitset ≡ threaded
    // must stay bit-for-bit under every AdaptivePolicy, across every
    // topology generator, threads {1, 2, 4, 8} × shards {1, 2, 8}.
    // Counter-keyed channel for the same reason as the static-fault oracle.
    let mut rng = StdRng::seed_from_u64(0xADA7);
    let channel: ChannelModel = GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
        .unwrap()
        .into();
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        for (key, plan) in adaptive_plans(n) {
            for shards in SHARD_COUNTS {
                let mut scalar = BeepNetwork::new(graph.clone(), channel.clone(), 23);
                scalar.set_shard_count(shards);
                scalar.set_fault_plan(plan.clone()).unwrap();
                let mut threaded: Vec<BeepNetwork> = THREAD_COUNTS
                    .iter()
                    .map(|&threads| {
                        let mut net = BeepNetwork::new(graph.clone(), channel.clone(), 23);
                        net.set_shard_count(shards);
                        net.set_parallelism(threads);
                        net.set_fault_plan(plan.clone()).unwrap();
                        net
                    })
                    .collect();
                for round in 0..6 {
                    let density = [0.0, 0.1, 0.5, 1.0][round % 4];
                    let actions = random_actions(n, density, &mut rng);
                    let beepers = beeper_bitmap(&actions);
                    let expected = scalar.run_round(&actions).unwrap();
                    for net in &mut threaded {
                        let received = net.run_round_bitset(&beepers).unwrap();
                        assert_eq!(
                            expected,
                            received.iter_bits().collect::<Vec<bool>>(),
                            "{name} {key} round {round} threads={} shards={shards}",
                            net.parallelism(),
                        );
                    }
                }
                for net in &threaded {
                    assert_eq!(
                        scalar.stats(),
                        net.stats(),
                        "{name} {key} shards={shards} stats"
                    );
                    assert_eq!(
                        scalar.beeps_by_node(),
                        net.beeps_by_node(),
                        "{name} {key} shards={shards} energy"
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_frames_match_round_by_round_driving() {
    // run_frame under an adaptive plan ≡ driving the same frame one
    // run_round at a time: the per-round decision must be recomputed per
    // slot inside the batched kernel (the adversary watches slots, not
    // frames).
    let mut rng = StdRng::seed_from_u64(0xADA8);
    let channel: ChannelModel = GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
        .unwrap()
        .into();
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 8;
        let plan = FaultPlan::realize(n, 0.2, FaultKind::Crash { round: 4 }, 0xB0)
            .unwrap()
            .with_policy(AdaptivePolicy::RushingSpam {
                budget: n / 8 + 1,
                window: 2,
            });
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 2 == 0).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        let mut scalar = BeepNetwork::new(graph.clone(), channel.clone(), 37);
        scalar.set_fault_plan(plan.clone()).unwrap();
        let mut batched = BeepNetwork::new(graph.clone(), channel.clone(), 37);
        batched.set_fault_plan(plan).unwrap();
        let mut expected: Vec<BitVec> = (0..n).map(|_| BitVec::zeros(len)).collect();
        let mut actions = vec![Action::Listen; n];
        for i in 0..len {
            for (v, frame) in frames.iter().enumerate() {
                actions[v] = match frame {
                    Some(f) if f.get(i) => Action::Beep,
                    _ => Action::Listen,
                };
            }
            for (v, &bit) in scalar.run_round(&actions).unwrap().iter().enumerate() {
                if bit {
                    expected[v].set(i, true);
                }
            }
        }
        let heard = batched.run_frame(&frames).unwrap();
        assert_eq!(heard, expected, "{name}");
        assert_eq!(scalar.stats(), batched.stats(), "{name} stats");
    }
}

#[test]
fn adaptive_noisy_transcripts_are_thread_and_shard_invariant() {
    // The determinism contract extended by the adaptive axis: transcripts
    // stay pure functions of (graph, channel, faults, seed, actions,
    // shard_count) — bit-identical at every tested thread count, for every
    // AdaptivePolicy.
    let mut rng = StdRng::seed_from_u64(0xADA9);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let beeper_sets: Vec<BitVec> = (0..6)
            .map(|round| {
                let density = [0.0, 0.1, 0.5][round % 3];
                beeper_bitmap(&random_actions(n, density, &mut rng))
            })
            .collect();
        for (key, plan) in adaptive_plans(n) {
            for shards in SHARD_COUNTS {
                let run = |threads: usize| {
                    let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.25), 7);
                    net.set_shard_count(shards);
                    net.set_parallelism(threads);
                    net.set_fault_plan(plan.clone()).unwrap();
                    beeper_sets
                        .iter()
                        .map(|b| net.run_round_bitset(b).unwrap())
                        .collect::<Vec<BitVec>>()
                };
                let reference = run(THREAD_COUNTS[0]);
                for &threads in &THREAD_COUNTS[1..] {
                    assert_eq!(
                        run(threads),
                        reference,
                        "{name} {key} threads={threads} shards={shards}"
                    );
                }
            }
        }
    }
}

#[test]
fn faulted_scalar_bitset_threaded_agree_bit_for_bit() {
    // The fault overlay edits the beeper set before the channel and
    // silences crashed listeners after it — both shard-independent, so
    // scalar ≡ bitset ≡ threaded must stay bit-for-bit under every
    // FaultKind, across every topology generator, threads {1, 2, 4, 8}
    // × shards {1, 2, 8}. The channel is a counter-keyed (non-iid) noisy
    // one — the scalar iid path draws from the sequential RNG and is
    // only distribution-equal, so it cannot anchor a bit-exact oracle.
    let mut rng = StdRng::seed_from_u64(0xFA17);
    let channel: ChannelModel = GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
        .unwrap()
        .into();
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        for (key, plan) in fault_plans(n) {
            for shards in SHARD_COUNTS {
                let mut scalar = BeepNetwork::new(graph.clone(), channel.clone(), 19);
                scalar.set_shard_count(shards);
                scalar.set_fault_plan(plan.clone()).unwrap();
                let mut threaded: Vec<BeepNetwork> = THREAD_COUNTS
                    .iter()
                    .map(|&threads| {
                        let mut net = BeepNetwork::new(graph.clone(), channel.clone(), 19);
                        net.set_shard_count(shards);
                        net.set_parallelism(threads);
                        net.set_fault_plan(plan.clone()).unwrap();
                        net
                    })
                    .collect();
                for round in 0..6 {
                    let density = [0.0, 0.1, 0.5, 1.0][round % 4];
                    let actions = random_actions(n, density, &mut rng);
                    let beepers = beeper_bitmap(&actions);
                    let expected = scalar.run_round(&actions).unwrap();
                    for net in &mut threaded {
                        let received = net.run_round_bitset(&beepers).unwrap();
                        assert_eq!(
                            expected,
                            received.iter_bits().collect::<Vec<bool>>(),
                            "{name} {key} round {round} threads={} shards={shards}",
                            net.parallelism(),
                        );
                    }
                }
                for net in &threaded {
                    assert_eq!(
                        scalar.stats(),
                        net.stats(),
                        "{name} {key} shards={shards} stats"
                    );
                    assert_eq!(
                        scalar.beeps_by_node(),
                        net.beeps_by_node(),
                        "{name} {key} shards={shards} energy"
                    );
                }
            }
        }
    }
}

#[test]
fn faulted_frames_match_round_by_round_driving() {
    // run_frame under a fault plan ≡ driving the same frame one
    // run_round at a time: the overlay must apply per-slot inside the
    // batched kernel too (a crash round can split a frame). Counter-keyed
    // channel for the same reason as the bit-exact oracle above.
    let mut rng = StdRng::seed_from_u64(0xFA18);
    let channel: ChannelModel = GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
        .unwrap()
        .into();
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 8;
        let plan = FaultPlan::realize(n, 0.3, FaultKind::Crash { round: 4 }, 0xFD).unwrap();
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 2 == 0).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        let mut scalar = BeepNetwork::new(graph.clone(), channel.clone(), 31);
        scalar.set_fault_plan(plan.clone()).unwrap();
        let mut batched = BeepNetwork::new(graph.clone(), channel.clone(), 31);
        batched.set_fault_plan(plan).unwrap();
        let mut expected: Vec<BitVec> = (0..n).map(|_| BitVec::zeros(len)).collect();
        let mut actions = vec![Action::Listen; n];
        for i in 0..len {
            for (v, frame) in frames.iter().enumerate() {
                actions[v] = match frame {
                    Some(f) if f.get(i) => Action::Beep,
                    _ => Action::Listen,
                };
            }
            for (v, &bit) in scalar.run_round(&actions).unwrap().iter().enumerate() {
                if bit {
                    expected[v].set(i, true);
                }
            }
        }
        let heard = batched.run_frame(&frames).unwrap();
        assert_eq!(heard, expected, "{name}");
        assert_eq!(scalar.stats(), batched.stats(), "{name} stats");
    }
}

#[test]
fn faulted_noisy_transcripts_are_thread_and_shard_invariant() {
    // The tentpole contract extended by the fault axis: transcripts are
    // pure functions of (graph, channel, faults, seed, actions,
    // shard_count) — bit-identical at every tested thread count, for
    // every FaultKind.
    let mut rng = StdRng::seed_from_u64(0xFA19);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let beeper_sets: Vec<BitVec> = (0..6)
            .map(|round| {
                let density = [0.0, 0.1, 0.5][round % 3];
                beeper_bitmap(&random_actions(n, density, &mut rng))
            })
            .collect();
        for (key, plan) in fault_plans(n) {
            for shards in SHARD_COUNTS {
                let run = |threads: usize| {
                    let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.25), 7);
                    net.set_shard_count(shards);
                    net.set_parallelism(threads);
                    net.set_fault_plan(plan.clone()).unwrap();
                    beeper_sets
                        .iter()
                        .map(|b| net.run_round_bitset(b).unwrap())
                        .collect::<Vec<BitVec>>()
                };
                let reference = run(THREAD_COUNTS[0]);
                for &threads in &THREAD_COUNTS[1..] {
                    assert_eq!(
                        run(threads),
                        reference,
                        "{name} {key} threads={threads} shards={shards}"
                    );
                }
            }
        }
    }
}

#[test]
fn implicit_and_compressed_reprs_reproduce_materialized_noisy_transcripts() {
    // The adjacency representation is NOT part of the determinism tuple:
    // an implicit or delta-compressed graph with the same edge set as a
    // materialized CSR graph must produce byte-identical noisy transcripts
    // at every thread and shard count, because channel noise is keyed by
    // (seed, round, shard) and the OR is representation-independent.
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let pairs: Vec<(String, Graph, Graph)> = vec![
        (
            "torus(5,7)".into(),
            topology::torus(5, 7).unwrap(),
            topology::implicit_torus(5, 7).unwrap(),
        ),
        (
            "grid(4,9)".into(),
            topology::grid(4, 9).unwrap(),
            topology::implicit_grid(4, 9).unwrap(),
        ),
        (
            "complete(11)".into(),
            topology::complete(11).unwrap(),
            topology::implicit_complete(11).unwrap(),
        ),
        (
            "pa(20,3)".into(),
            topology::preferential_attachment(20, 3, &mut rng).unwrap(),
            topology::preferential_attachment(20, 3, &mut StdRng::seed_from_u64(0xC0DE))
                .unwrap()
                .to_delta_csr()
                .unwrap(),
        ),
    ];
    // (The PA pair re-seeds its RNG so both builds sample the same graph.)
    let mut rng = StdRng::seed_from_u64(0x51AB);
    for (name, csr, compressed) in pairs {
        let n = csr.node_count();
        let beeper_sets: Vec<BitVec> = (0..10)
            .map(|round| {
                let density = [0.0, 0.1, 0.5, 1.0][round % 4];
                beeper_bitmap(&random_actions(n, density, &mut rng))
            })
            .collect();
        for shards in SHARD_COUNTS {
            for &threads in &THREAD_COUNTS {
                let run = |graph: &Graph| {
                    let mut net = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.25), 7);
                    net.set_shard_count(shards);
                    net.set_parallelism(threads);
                    beeper_sets
                        .iter()
                        .map(|b| net.run_round_bitset(b).unwrap())
                        .collect::<Vec<BitVec>>()
                };
                assert_eq!(
                    run(&csr),
                    run(&compressed),
                    "{name} threads={threads} shards={shards}"
                );
            }
        }
    }
}

#[test]
fn batched_frames_match_run_frame_on_every_topology() {
    // run_frames_batched ≡ run_frame, bit for bit, noisy, across every
    // topology (incl. implicit/compressed reprs), threads {1, 2, 4, 8} ×
    // shards {1, 2, 8}. The schedule is longer than one cache block so the
    // equivalence crosses a block boundary.
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 40; // > FRAME_BLOCK_ROUNDS: at least two blocks
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 3 != 1).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        for shards in SHARD_COUNTS {
            for &threads in &THREAD_COUNTS {
                let mut reference = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.2), 41);
                reference.set_shard_count(shards);
                reference.set_parallelism(threads);
                reference.record_transcript();
                let mut batched = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.2), 41);
                batched.set_shard_count(shards);
                batched.set_parallelism(threads);
                batched.record_transcript();
                let mut expected = Vec::new();
                reference
                    .run_frame_into(&frames, len, &mut expected)
                    .unwrap();
                let heard = batched.run_frames_batched(&frames, len).unwrap();
                assert_eq!(heard, expected, "{name} threads={threads} shards={shards}");
                assert_eq!(reference.stats(), batched.stats(), "{name} stats");
                assert_eq!(
                    reference.beeps_by_node(),
                    batched.beeps_by_node(),
                    "{name} energy"
                );
                assert_eq!(
                    reference.transcript(),
                    batched.transcript(),
                    "{name} transcript"
                );
            }
        }
    }
}

#[test]
fn batched_frames_match_run_frame_under_faults_and_adaptive_adversaries() {
    // The batched driver's sequential pre-pass must reproduce the fault
    // overlay exactly: static crashes mid-schedule, adaptive decisions
    // fed by the rounds the same block already prepared, crash deafness
    // applied per slot.
    let mut rng = StdRng::seed_from_u64(0xBA7D);
    let channel: ChannelModel = GilbertElliott::try_new(0.05, 0.3, 0.25, 0.4)
        .unwrap()
        .into();
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let len = 40;
        let plan = FaultPlan::realize(n, 0.2, FaultKind::Crash { round: 17 }, 0xB1)
            .unwrap()
            .with_policy(AdaptivePolicy::TargetLoudest { budget: n / 8 + 1 });
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 2 == 0).then(|| BitVec::random_uniform(len, &mut rng)))
            .collect();
        let mut reference = BeepNetwork::new(graph.clone(), channel.clone(), 43);
        reference.set_fault_plan(plan.clone()).unwrap();
        let mut batched = BeepNetwork::new(graph.clone(), channel.clone(), 43);
        batched.set_fault_plan(plan).unwrap();
        batched.set_parallelism(4);
        let expected = reference.run_frame_of_len(&frames, len).unwrap();
        let heard = batched.run_frames_batched(&frames, len).unwrap();
        assert_eq!(heard, expected, "{name}");
        assert_eq!(reference.stats(), batched.stats(), "{name} stats");
        assert_eq!(
            reference.beeps_by_node(),
            batched.beeps_by_node(),
            "{name} energy"
        );
    }
}

#[test]
fn batched_single_round_schedule_is_byte_identical_to_run_frame() {
    // Satellite regression: a 1-round schedule through run_frames_batched
    // is byte-identical to run_frame — the degenerate block still goes
    // through pre-pass/slab/post-pass and must change nothing.
    let mut rng = StdRng::seed_from_u64(0x0B01);
    for (name, graph) in all_topologies() {
        let n = graph.node_count();
        let frames: Vec<Option<BitVec>> = (0..n)
            .map(|v| (v % 2 == 0).then(|| BitVec::random_uniform(1, &mut rng)))
            .collect();
        let mut reference = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.3), 47);
        let mut batched = BeepNetwork::new(graph.clone(), Noise::bernoulli(0.3), 47);
        let expected = reference.run_frame(&frames).unwrap();
        let heard = batched.run_frames_batched(&frames, 1).unwrap();
        assert_eq!(heard, expected, "{name}");
        assert_eq!(reference.stats(), batched.stats(), "{name} stats");
    }
}

#[test]
fn noisy_bitset_runs_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let g = topology::random_regular(30, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        let mut net = BeepNetwork::new(g, Noise::bernoulli(0.25), seed);
        let beepers = BitVec::from_indices(30, [0, 7, 19]);
        (0..40)
            .map(|_| net.run_round_bitset(&beepers).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6), "different seeds should differ somewhere");
}
