//! Property tests for the compressed/implicit adjacency layer: the
//! delta-varint CSR must roundtrip any graph exactly, and the implicit
//! torus/grid/complete representations must expose the same neighbor sets
//! as the materialized generators on random sizes. These are the
//! structure-level guarantees underneath the kernel oracle in
//! `bitset_oracle.rs`.

use beep_net::{topology, AdjacencyRepr, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical edge list for graph equality across representations.
fn edges(g: &Graph) -> Vec<(usize, usize)> {
    let mut e = g.edges();
    e.sort_unstable();
    e
}

/// Sorted neighbor list via the repr-generic accessor.
fn neighbor_set(g: &Graph, v: usize) -> Vec<usize> {
    let mut ns = g.collect_neighbors(v);
    ns.sort_unstable();
    ns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- Delta-varint CSR: encode → decode is the identity on edge sets.

    #[test]
    fn delta_csr_roundtrips_random_graphs(n in 2usize..48, seed in 0u64..1000) {
        let g = topology::gnp(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        let compressed = g.to_delta_csr().unwrap();
        prop_assert_eq!(compressed.repr().name(), "delta-csr");
        prop_assert_eq!(compressed.node_count(), g.node_count());
        prop_assert_eq!(compressed.edge_count(), g.edge_count());
        prop_assert_eq!(compressed.max_degree(), g.max_degree());
        prop_assert_eq!(edges(&compressed), edges(&g));
        // And back: materialize() restores a plain CSR with the same edges.
        let restored = compressed.materialize();
        prop_assert!(matches!(restored.repr(), AdjacencyRepr::Csr));
        prop_assert_eq!(edges(&restored), edges(&g));
    }

    #[test]
    fn delta_csr_preserves_per_node_neighborhoods(n in 2usize..40, seed in 0u64..500) {
        let g = topology::preferential_attachment(n.max(4), 2, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let compressed = g.to_delta_csr().unwrap();
        for v in 0..g.node_count() {
            prop_assert_eq!(compressed.degree(v), g.degree(v), "degree of {}", v);
            prop_assert_eq!(neighbor_set(&compressed, v), neighbor_set(&g, v), "node {}", v);
        }
    }

    // --- Implicit shapes: zero-storage neighborhoods equal the
    // materialized generators' on random sizes.

    #[test]
    fn implicit_torus_matches_materialized_on_random_sizes(
        rows in 3usize..16,
        cols in 3usize..16,
    ) {
        let implicit = topology::implicit_torus(rows, cols).unwrap();
        let materialized = topology::torus(rows, cols).unwrap();
        prop_assert_eq!(implicit.adjacency_bytes(), 0);
        prop_assert_eq!(implicit.node_count(), rows * cols);
        prop_assert_eq!(implicit.edge_count(), materialized.edge_count());
        for v in 0..rows * cols {
            prop_assert_eq!(implicit.degree(v), 4, "node {} of {}x{}", v, rows, cols);
            prop_assert_eq!(
                neighbor_set(&implicit, v),
                neighbor_set(&materialized, v),
                "node {} of {}x{}", v, rows, cols
            );
        }
    }

    #[test]
    fn implicit_grid_matches_materialized_on_random_sizes(
        rows in 1usize..16,
        cols in 1usize..16,
    ) {
        let implicit = topology::implicit_grid(rows, cols).unwrap();
        let materialized = topology::grid(rows, cols).unwrap();
        prop_assert_eq!(implicit.adjacency_bytes(), 0);
        prop_assert_eq!(implicit.node_count(), rows * cols);
        prop_assert_eq!(implicit.edge_count(), materialized.edge_count());
        for v in 0..rows * cols {
            prop_assert_eq!(
                neighbor_set(&implicit, v),
                neighbor_set(&materialized, v),
                "node {} of {}x{}", v, rows, cols
            );
        }
    }

    #[test]
    fn implicit_complete_matches_materialized_on_random_sizes(n in 1usize..40) {
        let implicit = topology::implicit_complete(n).unwrap();
        let materialized = topology::complete(n).unwrap();
        prop_assert_eq!(implicit.adjacency_bytes(), 0);
        prop_assert_eq!(edges(&implicit), edges(&materialized));
        for v in 0..n {
            prop_assert_eq!(implicit.degree(v), n - 1);
        }
    }

    // --- has_edge agrees with the neighbor sets on every representation.

    #[test]
    fn has_edge_agrees_with_neighbor_sets(rows in 3usize..10, cols in 3usize..10) {
        let implicit = topology::implicit_torus(rows, cols).unwrap();
        let n = rows * cols;
        for v in 0..n {
            let ns = neighbor_set(&implicit, v);
            for u in 0..n {
                prop_assert_eq!(
                    implicit.has_edge(v, u),
                    ns.binary_search(&u).is_ok(),
                    "edge ({}, {}) of {}x{}", v, u, rows, cols
                );
            }
        }
    }
}
