//! Beep-wave single-source broadcast: the `O(D + b)` noiseless primitive
//! of Ghaffari–Haeupler [19], formalized by Czumaj–Davies [9], which the
//! paper cites as the foundational global tool of the beeping model.
//!
//! # Protocol
//!
//! * **Round 0 (sync wave):** the source beeps. Every node relays the
//!   first beep it ever hears one round later; the round a node first
//!   hears a beep fixes its distance `d` from the source.
//! * **Message waves:** the source transmits bit `i` at round `S + 3i`
//!   (`S = 3`), beeping for 1 and staying silent for 0. A node at
//!   distance `d` listens for bit `i` at round `S + 3i + (d−1)` and
//!   relays a heard beep one round later. The spacing of 3 keeps
//!   consecutive waves, relays, and echoes from colliding (each node's
//!   scheduled listen/relay rounds for different bits are distinct).
//!
//! Total rounds: `3 + 3b + D + 1 = O(D + b)`. Noiseless only — under
//! noise a single flipped bit forks a phantom wave; noisy broadcast goes
//! through the paper's simulation instead (e.g.
//! `beep_congest::algorithms::Flood` under `SimulatedBroadcastRunner`).

use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{Action, BeepNetwork, BeepProtocol, Graph, Noise};

/// Outcome of a beep-wave broadcast.
#[derive(Debug, Clone)]
pub struct BeepWaveReport {
    /// The message each node decoded (`None` if the wave never arrived —
    /// only possible on disconnected graphs).
    pub received: Vec<Option<BitVec>>,
    /// Beeping rounds executed.
    pub rounds: usize,
    /// Total beeps emitted (energy).
    pub beeps: u64,
}

/// Offset of the first message wave (after the sync wave has a 2-round
/// head start; see the interference analysis in the module docs).
const MESSAGE_START: usize = 3;

/// Per-node state of the wave protocol.
struct WaveNode {
    is_source: bool,
    message_bits: usize,
    /// The source's message (ignored elsewhere).
    input: BitVec,
    /// Distance from the source (source: 0), fixed by the sync wave.
    distance: Option<usize>,
    /// Decoded bits.
    bits: Vec<bool>,
    /// Bit index whose heard beep we must relay next round, if any.
    relay_pending: bool,
    done_at: Option<usize>,
}

impl WaveNode {
    fn listen_round(&self, bit: usize) -> Option<usize> {
        let d = self.distance?;
        if self.is_source {
            return None;
        }
        Some(MESSAGE_START + 3 * bit + d - 1)
    }
}

impl BeepProtocol for WaveNode {
    fn act(&mut self, round: usize) -> Action {
        if self.is_source {
            if round == 0 {
                return Action::Beep; // sync wave
            }
            // Bit i at round S + 3i.
            if round >= MESSAGE_START && (round - MESSAGE_START).is_multiple_of(3) {
                let i = (round - MESSAGE_START) / 3;
                if i < self.message_bits && self.input.get(i) {
                    return Action::Beep;
                }
            }
            return Action::Listen;
        }
        // Relay of the sync wave: one round after first hearing it.
        if let Some(d) = self.distance {
            if round == d {
                return Action::Beep;
            }
        }
        // Relay of a message wave.
        if self.relay_pending {
            self.relay_pending = false;
            return Action::Beep;
        }
        Action::Listen
    }

    fn feedback(&mut self, round: usize, received: bool) {
        if self.is_source {
            if round == MESSAGE_START + 3 * (self.message_bits.max(1) - 1) {
                self.done_at = Some(round);
            }
            return;
        }
        // The first beep ever heard fixes the distance: heard at round t ⇒
        // the beeper was at distance t, so we are at t + 1.
        if self.distance.is_none() {
            if received {
                self.distance = Some(round + 1);
            }
            return;
        }
        // Scheduled listen for the current bit?
        let next_bit = self.bits.len();
        if next_bit < self.message_bits && self.listen_round(next_bit) == Some(round) {
            self.bits.push(received);
            if received {
                self.relay_pending = true;
            }
            if self.bits.len() == self.message_bits {
                // One more round may be needed to relay the final bit.
                self.done_at = Some(round + 1);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some() && !self.relay_pending
    }
}

/// Broadcasts `message` from `source` to every node using beep waves.
///
/// # Errors
///
/// * [`AppError::Net`] if the round budget (derived from `n + 3b + 4`,
///   always sufficient on connected graphs) is exhausted — in practice
///   this means the graph is disconnected.
pub fn beep_wave_broadcast(
    graph: &Graph,
    source: usize,
    message: &BitVec,
    seed: u64,
) -> Result<BeepWaveReport, AppError> {
    let n = graph.node_count();
    let b = message.len();
    let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, seed);
    let mut nodes: Vec<WaveNode> = (0..n)
        .map(|v| WaveNode {
            is_source: v == source,
            message_bits: b,
            input: message.clone(),
            distance: (v == source).then_some(0),
            bits: Vec::new(),
            relay_pending: false,
            done_at: None,
        })
        .collect();
    let budget = MESSAGE_START + 3 * b + n + 4;
    let mut beepers = BitVec::zeros(n);
    let mut received = BitVec::zeros(n);
    let mut rounds = 0;
    for round in 0..budget {
        if nodes.iter().all(WaveNode::is_done) {
            break;
        }
        for (v, node) in nodes.iter_mut().enumerate() {
            beepers.set(v, node.act(round) == Action::Beep);
        }
        net.run_round_bitset_into(&beepers, &mut received)?;
        for (v, node) in nodes.iter_mut().enumerate() {
            node.feedback(round, received.get(v));
        }
        rounds = round + 1;
    }
    if !nodes.iter().all(WaveNode::is_done) {
        return Err(beep_net::NetError::RoundBudgetExhausted { budget }.into());
    }
    let received = nodes
        .iter()
        .map(|node| {
            if node.is_source {
                Some(node.input.clone())
            } else if node.bits.len() == b {
                Some(BitVec::from_bools(&node.bits))
            } else {
                None
            }
        })
        .collect();
    let stats = net.stats();
    Ok(BeepWaveReport {
        received,
        rounds,
        beeps: stats.beeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    fn bv(s: &str) -> BitVec {
        BitVec::from_str_01(s).unwrap()
    }

    #[test]
    fn wave_reaches_whole_path() {
        let g = topology::path(10).unwrap();
        let msg = bv("1011001110");
        let report = beep_wave_broadcast(&g, 0, &msg, 1).unwrap();
        for (v, got) in report.received.iter().enumerate() {
            assert_eq!(got.as_ref(), Some(&msg), "node {v}");
        }
    }

    #[test]
    fn wave_from_middle_source() {
        let g = topology::path(9).unwrap();
        let msg = bv("110101");
        let report = beep_wave_broadcast(&g, 4, &msg, 2).unwrap();
        assert!(report.received.iter().all(|r| r.as_ref() == Some(&msg)));
    }

    #[test]
    fn wave_on_grid_and_tree() {
        let msg = bv("10011");
        for (name, g, src) in [
            ("grid", topology::grid(4, 5).unwrap(), 7),
            ("tree", topology::binary_tree(15).unwrap(), 0),
            ("cycle", topology::cycle(12).unwrap(), 3),
            ("star", topology::star(8).unwrap(), 2),
        ] {
            let report = beep_wave_broadcast(&g, src, &msg, 3).unwrap();
            assert!(
                report.received.iter().all(|r| r.as_ref() == Some(&msg)),
                "{name}: {:?}",
                report.received
            );
        }
    }

    #[test]
    fn round_count_is_linear_in_d_plus_b() {
        // O(D + b): on a path of length D with b message bits, rounds stay
        // within the 3b + D + O(1) schedule.
        for (n, b) in [(20usize, 4usize), (40, 4), (20, 16)] {
            let g = topology::path(n).unwrap();
            let msg = BitVec::from_fn(b, |i| i % 2 == 0);
            let report = beep_wave_broadcast(&g, 0, &msg, 4).unwrap();
            let d = n - 1;
            assert!(
                report.rounds <= 3 * b + d + 8,
                "n={n} b={b}: {} rounds",
                report.rounds
            );
        }
    }

    #[test]
    fn all_zero_message_works() {
        // Silence-only payload still decodes (sync wave fixes timing).
        let g = topology::path(5).unwrap();
        let msg = bv("0000");
        let report = beep_wave_broadcast(&g, 0, &msg, 5).unwrap();
        assert!(report.received.iter().all(|r| r.as_ref() == Some(&msg)));
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = beep_net::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let msg = bv("101");
        assert!(matches!(
            beep_wave_broadcast(&g, 0, &msg, 6),
            Err(AppError::Net(_))
        ));
    }
}
