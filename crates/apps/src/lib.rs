#![warn(missing_docs)]

//! Turn-key beeping-network applications.
//!
//! This crate is the "what you actually call" layer: one function per task,
//! each wiring a reference algorithm from `beep-congest` through the
//! paper's simulation (`beep-core`) onto a beeping network (`beep-net`) —
//! plus two *native* beeping primitives (beep-wave broadcast and
//! wave-based leader election) that work directly in the beeping model
//! without simulation, for contrast and for the sensor-network examples.
//!
//! | Task | Function | Model | Rounds |
//! |------|----------|-------|--------|
//! | Maximal matching | [`maximal_matching`] | noisy beeps (Thm 21) | `O(Δ log² n)` |
//! | Maximal independent set | [`maximal_independent_set`] | noisy beeps | `O(Δ log² n)` |
//! | (Δ+1)-coloring | [`coloring`] | noisy beeps | `O(Δ log² n)` |
//! | Single-source broadcast | [`beep_wave_broadcast`] | noiseless beeps | `O(D + b)` |
//! | Multi-source broadcast | [`multi_source_broadcast`] | noiseless beeps | `O(q²·D)` (superimposed codes, \[6\]) |
//! | Leader election | [`beep_leader_election`] | noiseless beeps | `O(D log n)` |
//! | Binary consensus | [`beep_consensus`] | noisy beeps **+ faults** | `O(D · log(n·D)/(½−ε)²)` |
//! | Randomized consensus | [`beep_ben_or`] | noisy beeps **+ faults** | `O(D · log(n·D)/(½−ε)²)` |
//! | Reliable broadcast | [`beep_reliable_broadcast`] | noisy beeps **+ faults** | `O(D · log(n·D)/(½−ε)²)` |
//! | Leader re-election | [`beep_leader_reelect`] | noisy beeps **+ faults** | `O(E·D·log n · log(n·D)/(½−ε)²)` |
//!
//! Every task (plus the round-simulation, TDMA-baseline, and
//! local-broadcast pipelines from `beep-core`) is also addressable *by
//! name* through the [`Protocol`] registry — the uniform entry point the
//! scenario-campaign layer (`beep-scenarios`) sweeps.

mod ben_or;
mod broadcast_wave;
mod consensus;
mod error;
mod leader;
mod leader_reelect;
mod multicast;
mod registry;
mod reliable_broadcast;
mod tasks;

pub use ben_or::{beep_ben_or, BenOrReport};
pub use broadcast_wave::{beep_wave_broadcast, BeepWaveReport};
pub use consensus::{beep_consensus, consensus_slots_per_phase, ConsensusReport};
pub use error::AppError;
pub use leader::{beep_leader_election, LeaderReport};
pub use leader_reelect::{beep_leader_reelect, LeaderReelectReport};
pub use multicast::{multi_source_broadcast, MulticastReport};
pub use registry::{Protocol, ProtocolOutcome};
pub use reliable_broadcast::{beep_reliable_broadcast, ReliableBroadcastReport};
pub use tasks::{
    coloring, coloring_with_channel, coloring_with_faults, maximal_independent_set,
    maximal_independent_set_with_channel, maximal_independent_set_with_faults, maximal_matching,
    maximal_matching_with_channel, maximal_matching_with_faults, TaskReport,
};
