//! Reliable broadcast on noisy beeps: Bracha's echo/ready pattern
//! collapsed onto a carrier-sense channel.
//!
//! On a beeping channel a message has no payload — what a node can
//! reliably learn is *that the source initiated a broadcast*. This module
//! ports the echo/ready skeleton of Bracha-style reliable broadcast to
//! that single-bit setting: the counted `2f+1` / `f+1` thresholds become
//! majority-of-slots beep voting (the carrier-sense OR replaces quorum
//! counting), and the echo and ready waves each flood one hop per phase.
//!
//! # Protocol
//!
//! Time is divided into `P` phases of three slot groups, each `R` slots:
//!
//! * **init group** — the source beeps every slot while it still holds
//!   the message (phase 0 is the send; later phases keep it hot for
//!   late joiners);
//! * **echo group** — a node that has accepted the message (heard init or
//!   echo in an earlier phase, majority of slots) beeps;
//! * **ready group** — a node that has heard echo (earlier phase) beeps;
//!   a node **delivers** when it hears the ready group.
//!
//! Acceptance, readiness and delivery are all monotone, so with
//! `P = 2·(diameter + 2)` the echo wave and then the ready wave each have
//! time to cross the correct subgraph, giving the classic properties among
//! correct nodes w.h.p.: **validity** (a correct source's broadcast is
//! delivered by every correct node connected to it through correct paths)
//! and **totality** (if any correct node delivers, every correct node in
//! its correct component delivers — in particular under Byzantine-mute
//! fractions below the disconnection threshold, which on a complete graph
//! is every fraction `< 1`).
//!
//! # Fault tolerance (and its honest limits)
//!
//! * **Crash / mute** nodes drop out of every group; the waves route
//!   around them while the correct subgraph stays connected. A source
//!   that is mute (or crashes before sending) broadcasts nothing, and no
//!   correct node delivers.
//! * **Byzantine spam** is this protocol's documented *defeat*: a spammer
//!   beeps in every slot of every group, so its neighbors read a phantom
//!   init/echo/ready cascade and deliver a broadcast the source never
//!   sent — validity is broken (the defeat test asserts the phantom
//!   delivery; totality still holds, everyone delivers the phantom).

use crate::consensus::consensus_slots_per_phase;
use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{BeepNetwork, ChannelModel, FaultPlan, Graph, NoiseModel};

/// Outcome of one [`beep_reliable_broadcast`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliableBroadcastReport {
    /// Per-node delivery flags (faulty nodes included; their entries carry
    /// no guarantee).
    pub delivered: Vec<bool>,
    /// Per-node 0-based phase of first delivery (`None` = never).
    pub delivery_phase: Vec<Option<usize>>,
    /// Beep rounds executed (`phases × 3 × slots_per_phase`).
    pub rounds: usize,
    /// Total beeps emitted (energy), faults included.
    pub beeps: u64,
    /// Phases run (`2 · (diameter + 2)`).
    pub phases: usize,
    /// Beep slots per slot group.
    pub slots_per_phase: usize,
}

/// Runs one reliable broadcast from `source` over noisy beeps under a
/// [`FaultPlan`].
///
/// The run is a pure function of `(graph, channel, faults, seed, source)`.
/// See the module docs for the protocol, its guarantees, and its
/// documented defeat under spam.
///
/// # Errors
///
/// * [`AppError::InvalidOutput`] if `source ≥ n`.
/// * [`AppError::Net`] if the fault plan names a node `≥ n` or the engine
///   rejects a round.
pub fn beep_reliable_broadcast(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
    source: usize,
) -> Result<ReliableBroadcastReport, AppError> {
    let n = graph.node_count();
    if source >= n {
        return Err(AppError::InvalidOutput {
            detail: format!("reliable broadcast source {source} out of range for {n} nodes"),
        });
    }
    let mut net = BeepNetwork::new(graph.clone(), channel.clone(), seed);
    net.set_fault_plan(faults.clone())?;
    let phases = 2 * (graph.diameter().unwrap_or(n.saturating_sub(1)).max(1) + 2);
    let slots = consensus_slots_per_phase(n, 3 * phases, channel.calibration_epsilon());
    let mut accepted = BitVec::zeros(n); // heard init or echo
    let mut ready = BitVec::zeros(n); // heard echo
    let mut delivered = BitVec::zeros(n); // heard ready
    let mut delivery_phase = vec![None; n];
    let mut received = BitVec::zeros(n);
    let init = BitVec::from_indices(n, [source]);
    for phase in 0..phases {
        let heard_init = run_group(&mut net, &init, slots, &mut received)?;
        let heard_echo = run_group(&mut net, &accepted, slots, &mut received)?;
        let heard_ready = run_group(&mut net, &ready, slots, &mut received)?;
        // Monotone state advances from this phase's observations; each
        // wave starts beeping in the *next* phase (one hop per phase).
        for (v, slot) in delivery_phase.iter_mut().enumerate() {
            if heard_init.get(v) || heard_echo.get(v) {
                accepted.set(v, true);
            }
            if heard_echo.get(v) {
                ready.set(v, true);
            }
            if heard_ready.get(v) && !delivered.get(v) {
                delivered.set(v, true);
                *slot = Some(phase);
            }
        }
    }
    let stats = net.stats();
    Ok(ReliableBroadcastReport {
        delivered: (0..n).map(|v| delivered.get(v)).collect(),
        delivery_phase,
        rounds: stats.rounds,
        beeps: stats.beeps,
        phases,
        slots_per_phase: slots,
    })
}

/// Runs one slot group: `beepers` beep in all `slots` slots; returns the
/// per-node majority verdict (`2·heard ≥ slots`).
fn run_group(
    net: &mut BeepNetwork,
    beepers: &BitVec,
    slots: usize,
    received: &mut BitVec,
) -> Result<BitVec, AppError> {
    let n = beepers.len();
    let mut heard = vec![0usize; n];
    for _ in 0..slots {
        net.run_round_bitset_into(beepers, received)?;
        for v in received.iter_ones() {
            heard[v] += 1;
        }
    }
    Ok(BitVec::from_fn(n, |v| 2 * heard[v] >= slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::{topology, FaultKind, Noise};

    fn clean() -> ChannelModel {
        Noise::Noiseless.into()
    }

    #[test]
    fn correct_source_reaches_everyone_noiselessly() {
        // Path graph: the waves genuinely have to travel hop by hop.
        let g = topology::path(6).unwrap();
        let r = beep_reliable_broadcast(&g, &clean(), &FaultPlan::none(), 1, 0).unwrap();
        assert!(r.delivered.iter().all(|&d| d), "{:?}", r.delivered);
        // Farther nodes deliver no earlier than nearer ones.
        for v in 1..6 {
            assert!(r.delivery_phase[v] >= r.delivery_phase[v - 1]);
        }
        assert_eq!(r.rounds, r.phases * 3 * r.slots_per_phase);
    }

    #[test]
    fn noisy_validity_and_totality_whp() {
        let g = topology::complete(8).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        for seed in 0..10 {
            let r = beep_reliable_broadcast(&g, &ch, &FaultPlan::none(), seed, 2).unwrap();
            assert!(r.delivered.iter().all(|&d| d), "seed {seed}");
        }
    }

    #[test]
    fn totality_holds_under_mute_fractions_below_threshold() {
        // A quarter of the nodes are mute: the correct subgraph of a
        // complete graph stays connected, so either every correct node
        // delivers or none does — and with a correct source, every one.
        let g = topology::complete(12).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        for seed in 0..5 {
            let plan = FaultPlan::realize(12, 0.25, FaultKind::ByzantineMute, seed).unwrap();
            let muted: Vec<usize> = plan.assignments().iter().map(|&(v, _)| v).collect();
            let source = (0..12).find(|v| !muted.contains(v)).unwrap();
            let r = beep_reliable_broadcast(&g, &ch, &plan, seed, source).unwrap();
            let correct: Vec<usize> = (0..12).filter(|v| !muted.contains(v)).collect();
            assert!(
                correct.iter().all(|&v| r.delivered[v]),
                "seed {seed}: {:?}",
                r.delivered
            );
        }
    }

    #[test]
    fn silent_source_delivers_nothing() {
        let g = topology::complete(6).unwrap();
        for kind in [FaultKind::ByzantineMute, FaultKind::Crash { round: 0 }] {
            let plan = FaultPlan::try_from_assignments(vec![(0, kind)]).unwrap();
            let r = beep_reliable_broadcast(&g, &clean(), &plan, 3, 0).unwrap();
            assert!(
                (1..6).all(|v| !r.delivered[v]),
                "{kind:?}: {:?}",
                r.delivered
            );
        }
    }

    #[test]
    fn spam_defeat_fabricates_a_delivery() {
        // The documented defeat condition, asserted rather than skipped: a
        // spammer next to a *silent* source still drives every correct
        // node to deliver a phantom broadcast.
        let g = topology::complete(6).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![
            (0, FaultKind::ByzantineMute), // the source never speaks
            (3, FaultKind::ByzantineSpam),
        ])
        .unwrap();
        let r = beep_reliable_broadcast(&g, &clean(), &plan, 7, 0).unwrap();
        assert!(
            (0..6).filter(|&v| v != 3).all(|v| r.delivered[v]),
            "spam failed to fabricate delivery: {:?}",
            r.delivered
        );
    }

    #[test]
    fn deterministic_in_the_seed() {
        let g = topology::grid(3, 3).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        let plan = FaultPlan::realize(9, 0.2, FaultKind::ByzantineMute, 11).unwrap();
        let a = beep_reliable_broadcast(&g, &ch, &plan, 7, 4).unwrap();
        let b = beep_reliable_broadcast(&g, &ch, &plan, 7, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_source_is_an_error() {
        let g = topology::path(4).unwrap();
        let err = beep_reliable_broadcast(&g, &clean(), &FaultPlan::none(), 0, 9).unwrap_err();
        assert!(matches!(err, AppError::InvalidOutput { .. }), "{err}");
    }
}
