//! Randomized binary consensus on noisy beeps, in the style of Ben-Or.
//!
//! Where [`beep_consensus`](crate::beep_consensus) is 1-biased (a single 1
//! floods), this protocol is *symmetric*: ties between 0-holders and
//! 1-holders are broken by private coin flips, so a uniformly-0 network
//! decides 0 and a uniformly-1 network decides 1 without either value
//! being privileged.
//!
//! # Protocol
//!
//! Every node starts with a binary input. Time is divided into `P` phases
//! of three slot groups, each `R` beep slots long:
//!
//! * **group 0** — nodes whose current value is 0 beep every slot;
//! * **group 1** — nodes whose current value is 1 beep every slot;
//! * **coin group** — a node that heard *both* value groups (majority of
//!   slots per group, self-hearing included) beeps iff its private coin
//!   for this phase is 1.
//!
//! At the end of a phase a node updates: heard exactly one value → adopt
//! it; heard both → adopt 1 iff it heard the coin group (a neighborhood
//! coin-OR); heard neither (possible only for an isolated node) → keep.
//! After `P` phases each node decides its current value.
//!
//! Coins are **counter-keyed**: node `v`'s phase-`p` coin is
//! [`protocol_coin`]`(seed, v, p)`, drawn from the reserved
//! `PROTOCOL_COIN_STREAM` shard — never from the engine's channel streams
//! — so the transcript stays a pure function of
//! `(graph, channel, faults, seed, inputs, shard_count)` and the coin
//! draws cannot perturb the channel noise, fault realization, or adaptive
//! adversary decisions.
//!
//! On a mixed complete graph every node sees both groups, so one phase of
//! the coin rule re-unifies the network (everyone reads the same coin-OR)
//! and agreement then persists; `P = 3·(diameter + 2)` leaves w.h.p.
//! slack on connected correct subgraphs, and the statistical tests pin
//! termination within that bound.
//!
//! # Fault tolerance (and its honest limits)
//!
//! * **Crash / Byzantine mute**: a silent node cannot split the survivors
//!   — it merely stops contributing to its group. Agreement holds among
//!   correct nodes while they stay connected through correct paths.
//! * **Byzantine spam** is this protocol's documented *defeat*: a spammer
//!   beeps in every slot of every group, so every correct neighbor reads
//!   "both values present, coin-OR = 1" forever and adopts 1 — validity
//!   is broken whenever the correct inputs were uniformly 0 (the registry
//!   verdict and the defeat test assert exactly this forced-1 outcome,
//!   which preserves agreement).

use crate::consensus::consensus_slots_per_phase;
use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{protocol_coin, BeepNetwork, ChannelModel, FaultPlan, Graph, NoiseModel};

/// Outcome of one [`beep_ben_or`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenOrReport {
    /// Per-node decided values (faulty nodes included; their entries carry
    /// no guarantee).
    pub decisions: Vec<bool>,
    /// Beep rounds executed (`phases × 3 × slots_per_phase`).
    pub rounds: usize,
    /// Total beeps emitted (energy), faults included.
    pub beeps: u64,
    /// Phases run (`3 · (diameter + 2)`).
    pub phases: usize,
    /// Beep slots per slot group (see
    /// [`consensus_slots_per_phase`](crate::consensus_slots_per_phase)).
    pub slots_per_phase: usize,
    /// The first 0-based phase after which every *correct* node held the
    /// same value (`None` if the run never unified — the w.h.p. failure
    /// the statistical tests bound).
    pub agreement_phase: Option<usize>,
}

/// Runs Ben-Or-style randomized binary consensus over noisy beeps under a
/// [`FaultPlan`].
///
/// `inputs[v]` is node `v`'s initial value; the run is a pure function of
/// `(graph, channel, faults, seed, inputs)`. See the module docs for the
/// protocol, its guarantees, and its documented defeat under spam.
///
/// # Errors
///
/// * [`AppError::InvalidOutput`] if `inputs.len() != n`.
/// * [`AppError::Net`] if the fault plan names a node `≥ n` or the engine
///   rejects a round.
pub fn beep_ben_or(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
    inputs: &[bool],
) -> Result<BenOrReport, AppError> {
    let n = graph.node_count();
    if inputs.len() != n {
        return Err(AppError::InvalidOutput {
            detail: format!("ben_or got {} inputs for {n} nodes", inputs.len()),
        });
    }
    let mut net = BeepNetwork::new(graph.clone(), channel.clone(), seed);
    net.set_fault_plan(faults.clone())?;
    let phases = 3 * (graph.diameter().unwrap_or(n.saturating_sub(1)).max(1) + 2);
    let slots = consensus_slots_per_phase(n, 3 * phases, channel.calibration_epsilon());
    let correct: Vec<usize> = (0..n).filter(|&v| faults.fault_of(v).is_none()).collect();
    let mut value = BitVec::from_fn(n, |v| inputs[v]);
    let mut received = BitVec::zeros(n);
    let mut agreement_phase = None;
    for phase in 0..phases {
        // Value groups 0 and 1, then the coin group for split neighborhoods.
        let heard0 = run_group(&mut net, &!&value, slots, &mut received)?;
        let heard1 = run_group(&mut net, &value, slots, &mut received)?;
        let flippers = BitVec::from_fn(n, |v| {
            heard0.get(v) && heard1.get(v) && protocol_coin(seed, v, phase as u64)
        });
        let heard_coin = run_group(&mut net, &flippers, slots, &mut received)?;
        for v in 0..n {
            match (heard0.get(v), heard1.get(v)) {
                (false, true) => value.set(v, true),
                (true, false) => value.set(v, false),
                (true, true) => value.set(v, heard_coin.get(v)),
                (false, false) => {} // isolated and silent: keep
            }
        }
        if agreement_phase.is_none()
            && correct
                .windows(2)
                .all(|w| value.get(w[0]) == value.get(w[1]))
        {
            agreement_phase = Some(phase);
        }
    }
    let stats = net.stats();
    Ok(BenOrReport {
        decisions: (0..n).map(|v| value.get(v)).collect(),
        rounds: stats.rounds,
        beeps: stats.beeps,
        phases,
        slots_per_phase: slots,
        agreement_phase,
    })
}

/// Runs one slot group: `beepers` beep in all `slots` slots; returns the
/// per-node majority verdict (`2·heard ≥ slots`).
fn run_group(
    net: &mut BeepNetwork,
    beepers: &BitVec,
    slots: usize,
    received: &mut BitVec,
) -> Result<BitVec, AppError> {
    let n = beepers.len();
    let mut heard = vec![0usize; n];
    for _ in 0..slots {
        net.run_round_bitset_into(beepers, received)?;
        for v in received.iter_ones() {
            heard[v] += 1;
        }
    }
    Ok(BitVec::from_fn(n, |v| 2 * heard[v] >= slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::{topology, FaultKind, Noise};

    fn clean() -> ChannelModel {
        Noise::Noiseless.into()
    }

    #[test]
    fn uniform_inputs_decide_that_value_noiselessly() {
        let g = topology::complete(6).unwrap();
        let none = FaultPlan::none();
        for (inputs, expect) in [([false; 6], false), ([true; 6], true)] {
            let r = beep_ben_or(&g, &clean(), &none, 1, &inputs).unwrap();
            assert!(
                r.decisions.iter().all(|&d| d == expect),
                "{:?}",
                r.decisions
            );
            assert_eq!(r.agreement_phase, Some(0));
            assert_eq!(r.rounds, r.phases * 3 * r.slots_per_phase);
        }
    }

    #[test]
    fn mixed_inputs_unify_within_the_phase_bound() {
        let g = topology::complete(8).unwrap();
        let none = FaultPlan::none();
        for seed in 0..10 {
            let mut inputs = [false; 8];
            inputs[..4].fill(true);
            let r = beep_ben_or(&g, &clean(), &none, seed, &inputs).unwrap();
            let first = r.decisions[0];
            assert!(r.decisions.iter().all(|&d| d == first), "seed {seed}");
            assert!(r.agreement_phase.is_some(), "seed {seed} never unified");
        }
    }

    #[test]
    fn noisy_runs_reach_agreement_whp() {
        let g = topology::complete(8).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        let none = FaultPlan::none();
        let mut agreed = 0;
        for seed in 0..20 {
            let mut inputs = [false; 8];
            inputs[(seed as usize) % 8] = true;
            inputs[(seed as usize + 3) % 8] = true;
            let r = beep_ben_or(&g, &ch, &none, seed, &inputs).unwrap();
            let first = r.decisions[0];
            if r.decisions.iter().all(|&d| d == first) && r.agreement_phase.is_some() {
                agreed += 1;
            }
        }
        assert!(agreed >= 19, "only {agreed}/20 noisy runs agreed");
    }

    #[test]
    fn coins_are_counter_keyed_not_sequential() {
        // Same run twice: identical coins, identical outcome — and a
        // different seed reaches a (generally) different transcript while
        // both still agree internally.
        let g = topology::complete(8).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        let none = FaultPlan::none();
        let mut inputs = [false; 8];
        inputs[0] = true;
        inputs[5] = true;
        let a = beep_ben_or(&g, &ch, &none, 3, &inputs).unwrap();
        let b = beep_ben_or(&g, &ch, &none, 3, &inputs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn crash_faults_leave_survivors_in_agreement() {
        let g = topology::complete(8).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![
            (0, FaultKind::Crash { round: 2 }),
            (3, FaultKind::Crash { round: 7 }),
        ])
        .unwrap();
        for seed in 0..5 {
            let mut inputs = [false; 8];
            inputs[0] = true; // a crashing holder: either outcome is legal
            let r = beep_ben_or(&g, &clean(), &plan, seed, &inputs).unwrap();
            let survivors: Vec<usize> = (1..8).filter(|&v| v != 3).collect();
            let first = r.decisions[survivors[0]];
            assert!(
                survivors.iter().all(|&v| r.decisions[v] == first),
                "seed {seed}: {:?}",
                r.decisions
            );
        }
    }

    #[test]
    fn spam_defeat_forces_one_on_all_zero_inputs() {
        // The documented defeat condition, asserted rather than skipped: a
        // single spammer breaks validity (all-zero correct inputs decide 1)
        // while agreement survives.
        let g = topology::complete(6).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![(2, FaultKind::ByzantineSpam)]).unwrap();
        let r = beep_ben_or(&g, &clean(), &plan, 5, &[false; 6]).unwrap();
        assert!(
            (0..6).filter(|&v| v != 2).all(|v| r.decisions[v]),
            "spam failed to force 1: {:?}",
            r.decisions
        );
    }

    #[test]
    fn input_length_mismatch_is_an_error() {
        let g = topology::path(4).unwrap();
        let err = beep_ben_or(&g, &clean(), &FaultPlan::none(), 0, &[true; 5]).unwrap_err();
        assert!(matches!(err, AppError::InvalidOutput { .. }), "{err}");
    }
}
