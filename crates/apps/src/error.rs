//! Application-level error type.

use std::error::Error;
use std::fmt;

/// Errors from running a beeping-network application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppError {
    /// The simulation layer failed.
    Sim(beep_core::SimError),
    /// The network layer failed.
    Net(beep_net::NetError),
    /// The produced output failed validation — the w.h.p. guarantee lost
    /// its "h.p." this run (possible under heavy noise; rerun with another
    /// seed or a larger expansion constant).
    InvalidOutput {
        /// Human-readable description of the violations.
        detail: String,
    },
    /// A noiseless-only primitive was asked to run under a noisy channel
    /// (see [`crate::Protocol::supports_noise`]). Campaign sweeps use
    /// this to mark such protocol/channel mismatch cells as skipped
    /// rather than failed.
    NoiseUnsupported {
        /// Registry name of the protocol.
        protocol: &'static str,
        /// Label of the rejected channel (e.g. `eps0.05`).
        channel: String,
    },
    /// A protocol without a fault-tolerance story was asked to run under a
    /// non-empty [`beep_net::FaultPlan`] (see
    /// [`crate::Protocol::supports_faults`]). Campaign sweeps use this to
    /// mark protocol/fault mismatch cells as skipped rather than failed.
    FaultsUnsupported {
        /// Registry name of the protocol.
        protocol: &'static str,
    },
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Sim(e) => write!(f, "simulation: {e}"),
            AppError::Net(e) => write!(f, "network: {e}"),
            AppError::InvalidOutput { detail } => write!(f, "output failed validation: {detail}"),
            AppError::NoiseUnsupported { protocol, channel } => {
                write!(
                    f,
                    "protocol {protocol:?} is noiseless-only (requested noisy channel {channel})"
                )
            }
            AppError::FaultsUnsupported { protocol } => {
                write!(
                    f,
                    "protocol {protocol:?} has no fault-tolerance story (requested a non-empty fault plan)"
                )
            }
        }
    }
}

impl Error for AppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AppError::Sim(e) => Some(e),
            AppError::Net(e) => Some(e),
            AppError::InvalidOutput { .. }
            | AppError::NoiseUnsupported { .. }
            | AppError::FaultsUnsupported { .. } => None,
        }
    }
}

impl From<beep_core::SimError> for AppError {
    fn from(e: beep_core::SimError) -> Self {
        AppError::Sim(e)
    }
}

impl From<beep_net::NetError> for AppError {
    fn from(e: beep_net::NetError) -> Self {
        AppError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AppError::InvalidOutput {
            detail: "asymmetric pair".into(),
        };
        assert!(e.to_string().contains("asymmetric"));
        let e: AppError = beep_net::NetError::RoundBudgetExhausted { budget: 9 }.into();
        assert!(e.to_string().contains('9'));
        assert!(Error::source(&e).is_some());
        let e = AppError::FaultsUnsupported { protocol: "wave" };
        assert!(e.to_string().contains("wave"));
        assert!(Error::source(&e).is_none());
    }
}
