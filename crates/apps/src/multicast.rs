//! Multi-source broadcast with superimposed codes — the paper's cited
//! companion problem (Beauquier, Burman, Davies & Dufoulon, "Optimal
//! multi-cast with beeps using group testing", SIROCCO 2019; the paper's
//! [6]).
//!
//! `k` source nodes each hold an `a`-bit message; every node must learn
//! the *set* of source messages. The beeping channel computes OR for
//! free, so the sources simply transmit their Kautz–Singleton codewords
//! simultaneously, wave by wave:
//!
//! * the codeword bits are serialized into windows of `D_bound + 1`
//!   rounds;
//! * in window `i`, every source whose codeword has bit `i = 1` starts a
//!   beep wave, and every node relays the first beep it hears in the
//!   window — so by the window's end, all nodes know the OR of bit `i`
//!   across all sources;
//! * after all windows, every node holds the superimposition
//!   `∨ C(m_s)` and decodes the message set with the classical cover-free
//!   guarantee (exact for up to `k` sources, Definition 1).
//!
//! This is the simple unpipelined variant: `O(q²·D)` rounds for field
//! size `q` ([6] pipelines waves to approach `O(D + q²)`); it is also
//! noiseless, like the primitive it implements. Its purpose in this
//! workspace is to exercise the classical superimposed code in an actual
//! beeping protocol, the contrast the paper's Section 1.4 draws.

use crate::error::AppError;
use beep_bits::BitVec;
use beep_codes::KautzSingleton;
use beep_net::{BeepNetwork, Graph, Noise};

/// Outcome of a multi-source broadcast.
#[derive(Debug, Clone)]
pub struct MulticastReport {
    /// The OR-superimposition of all source codewords, as every node
    /// reconstructed it (validated identical across nodes).
    pub superimposition: BitVec,
    /// The decoded source messages (candidates confirmed covered), sorted.
    pub decoded: Vec<BitVec>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total beeps emitted.
    pub beeps: u64,
}

/// Broadcasts the messages of up to `k` sources to every node.
///
/// `sources` pairs node ids with their `message_bits`-bit messages;
/// `candidates` is the message list to test against the decoded
/// superimposition (cover-free decoding is a membership test; see
/// DESIGN.md §3 on candidate decoding — pass the universe of possible
/// messages when it is small, or the plausible candidates plus decoys).
///
/// # Errors
///
/// * [`AppError::InvalidOutput`] if more than `k` sources are given, a
///   source id repeats, or nodes end up with inconsistent views (cannot
///   happen on a connected graph with a correct diameter bound).
/// * [`AppError::Net`] on engine errors.
///
/// # Panics
///
/// Panics if a message has the wrong width or a source id is out of
/// range (caller bugs).
pub fn multi_source_broadcast(
    graph: &Graph,
    sources: &[(usize, BitVec)],
    k: usize,
    message_bits: usize,
    diameter_bound: usize,
    candidates: &[BitVec],
    seed: u64,
) -> Result<MulticastReport, AppError> {
    let n = graph.node_count();
    if sources.len() > k {
        return Err(AppError::InvalidOutput {
            detail: format!("{} sources exceed the design order k = {k}", sources.len()),
        });
    }
    {
        let mut ids: Vec<usize> = sources.iter().map(|&(s, _)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != sources.len() {
            return Err(AppError::InvalidOutput {
                detail: "duplicate source id".into(),
            });
        }
    }
    for (s, m) in sources {
        assert!(*s < n, "source {s} out of range");
        assert_eq!(m.len(), message_bits, "message width mismatch");
    }
    let code =
        KautzSingleton::new(message_bits, k.max(1)).map_err(|e| AppError::InvalidOutput {
            detail: format!("code construction: {e}"),
        })?;
    let len = code.params().length();
    let codewords: Vec<(usize, BitVec)> =
        sources.iter().map(|(s, m)| (*s, code.encode(m))).collect();

    let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, seed);
    let window = diameter_bound + 1;
    // Per-node reconstructed superimposition.
    let mut heard_bits: Vec<BitVec> = (0..n).map(|_| BitVec::zeros(len)).collect();
    let mut beepers = BitVec::zeros(n);
    let mut received = BitVec::zeros(n);
    for bit in 0..len {
        // One OR-wave window for codeword bit `bit`.
        let mut heard = vec![false; n];
        let mut relayed = vec![false; n];
        for (s, cw) in &codewords {
            if cw.get(bit) {
                heard[*s] = true;
            }
        }
        for _t in 0..window {
            for v in 0..n {
                // Fire once: sources in the window's first round, relays
                // one round after first hearing the wave.
                let fire = heard[v] && !relayed[v];
                if fire {
                    relayed[v] = true;
                }
                beepers.set(v, fire);
            }
            net.run_round_bitset_into(&beepers, &mut received)?;
            for v in received.iter_ones() {
                heard[v] = true;
            }
        }
        for v in 0..n {
            if heard[v] {
                heard_bits[v].set(bit, true);
            }
        }
    }
    // All nodes must agree (wave floods the whole component).
    let superimposition = heard_bits[0].clone();
    if heard_bits.iter().any(|h| h != &superimposition) {
        return Err(AppError::InvalidOutput {
            detail: "nodes reconstructed different superimpositions (disconnected graph or bad diameter bound?)".into(),
        });
    }
    // Cover-free decoding against the candidate list.
    let mut decoded: Vec<BitVec> = candidates
        .iter()
        .filter(|m| code.covered(m, &superimposition))
        .cloned()
        .collect();
    decoded.sort_unstable_by_key(std::string::ToString::to_string);
    decoded.dedup();
    let stats = net.stats();
    Ok(MulticastReport {
        superimposition,
        decoded,
        rounds: stats.rounds,
        beeps: stats.beeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    fn all_messages(bits: usize) -> Vec<BitVec> {
        (0..(1u64 << bits))
            .map(|v| BitVec::from_u64_lsb(v, bits))
            .collect()
    }

    #[test]
    fn two_sources_on_a_grid() {
        let g = topology::grid(3, 4).unwrap();
        let d = g.diameter().unwrap();
        let msgs = [
            (0usize, BitVec::from_u64_lsb(0x2B, 6)),
            (11usize, BitVec::from_u64_lsb(0x15, 6)),
        ];
        let report = multi_source_broadcast(&g, &msgs, 3, 6, d, &all_messages(6), 1).unwrap();
        let expected: Vec<BitVec> = {
            let mut v = vec![msgs[0].1.clone(), msgs[1].1.clone()];
            v.sort_unstable_by_key(std::string::ToString::to_string);
            v
        };
        assert_eq!(report.decoded, expected);
    }

    #[test]
    fn up_to_k_sources_decode_exactly() {
        let g = topology::cycle(9).unwrap();
        let d = g.diameter().unwrap();
        for count in 1..=3usize {
            let msgs: Vec<(usize, BitVec)> = (0..count)
                .map(|i| (i * 3, BitVec::from_u64_lsb(17 * i as u64 + 1, 6)))
                .collect();
            let report = multi_source_broadcast(&g, &msgs, 3, 6, d, &all_messages(6), 2).unwrap();
            assert_eq!(report.decoded.len(), count, "count = {count}");
            for (_, m) in &msgs {
                assert!(report.decoded.contains(m));
            }
        }
    }

    #[test]
    fn zero_sources_decode_to_nothing() {
        let g = topology::path(4).unwrap();
        let report = multi_source_broadcast(&g, &[], 2, 6, 3, &all_messages(6), 3).unwrap();
        assert!(report.decoded.is_empty());
        assert_eq!(report.superimposition.count_ones(), 0);
        assert_eq!(report.beeps, 0);
    }

    #[test]
    fn too_many_sources_rejected() {
        let g = topology::path(5).unwrap();
        let msgs: Vec<(usize, BitVec)> = (0..4)
            .map(|i| (i, BitVec::from_u64_lsb(i as u64, 6)))
            .collect();
        assert!(matches!(
            multi_source_broadcast(&g, &msgs, 3, 6, 4, &all_messages(6), 4),
            Err(AppError::InvalidOutput { .. })
        ));
    }

    #[test]
    fn duplicate_source_rejected() {
        let g = topology::path(5).unwrap();
        let msgs = [
            (1usize, BitVec::from_u64_lsb(1, 6)),
            (1usize, BitVec::from_u64_lsb(2, 6)),
        ];
        assert!(matches!(
            multi_source_broadcast(&g, &msgs, 3, 6, 4, &all_messages(6), 5),
            Err(AppError::InvalidOutput { .. })
        ));
    }

    #[test]
    fn round_cost_is_length_times_window() {
        let g = topology::path(6).unwrap();
        let d = 5;
        let msgs = [(0usize, BitVec::from_u64_lsb(9, 6))];
        let report = multi_source_broadcast(&g, &msgs, 2, 6, d, &all_messages(6), 6).unwrap();
        let code = KautzSingleton::new(6, 2).unwrap();
        assert_eq!(report.rounds, code.params().length() * (d + 1));
    }
}
