//! Binary consensus on noisy beeps — the fault layer's proof workload.
//!
//! The registry's other protocols assume every node is correct; this
//! module brings up the first protocol *designed* for the fault layer: a
//! 1-biased ("OR") binary consensus built directly on the paper's noisy
//! beep primitive, in the style of the phase-vote consensus shapes of
//! Ben-Or-family protocols, collapsed onto a carrier-sense channel.
//!
//! # Protocol
//!
//! Every node starts with a binary input. Time is divided into `P` phases
//! of `R` beep rounds ("slots") each:
//!
//! * a node whose current value is 1 beeps in every slot of the phase;
//!   a node whose value is 0 listens;
//! * at the end of a phase, a node adopts value 1 iff it heard a beep in
//!   at least half of the phase's slots (`2·heard ≥ R`);
//! * values are **monotone**: a node that reaches 1 never returns to 0.
//!   After `P` phases each node decides its current value.
//!
//! With `P = diameter + 2` and `R` chosen by a Hoeffding bound
//! ([`consensus_slots_per_phase`]), a 1 held by any correct node floods
//! the correct subgraph w.h.p. (one hop per phase, noise out-voted within
//! each phase), and a network holding only 0s stays silent w.h.p. —
//! giving **agreement** and **validity** among correct nodes.
//!
//! # Fault tolerance (and its honest limits)
//!
//! * **Crash** faults: a crashed node stops beeping and hears nothing;
//!   monotonicity keeps the survivors consistent. Both agreement and
//!   validity hold as long as the *correct* nodes remain connected
//!   through correct paths and the phase budget covers the correct
//!   subgraph's diameter — on the complete graphs the checked-in
//!   `scenarios/faults.toml` campaign sweeps, that is every fraction
//!   `< 1`. On sparse topologies a crash set that disconnects the
//!   correct nodes can legitimately split the decision.
//! * **Byzantine mute** is a degenerate crash (never beeps, still
//!   listens): same guarantees.
//! * **Byzantine spam** is indistinguishable from an honest node whose
//!   input is 1 on a carrier-sense channel, so it cannot break
//!   agreement — it forces the decision to 1 (the registry's success
//!   verdict accounts for exactly that).

use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{BeepNetwork, ChannelModel, FaultPlan, Graph, NoiseModel};

/// Outcome of one [`beep_consensus`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusReport {
    /// Per-node decided values (faulty nodes included; their entries are
    /// whatever their halted/overridden protocol state held and carry no
    /// guarantee).
    pub decisions: Vec<bool>,
    /// Beep rounds executed (`phases × slots_per_phase`).
    pub rounds: usize,
    /// Total beeps emitted (energy), faults included.
    pub beeps: u64,
    /// Phases run (`diameter + 2`).
    pub phases: usize,
    /// Beep slots per phase (see [`consensus_slots_per_phase`]).
    pub slots_per_phase: usize,
}

/// Slots each consensus phase needs so that per-slot noise is out-voted
/// w.h.p.: `1` when the channel is exact, otherwise the Hoeffding bound
/// `⌈ln(100·n·P) / (2·(½ − ε)²)⌉`, which drives the probability that any
/// of the `n` nodes mis-reads any of the `P` phases below `1/100`.
#[must_use]
pub fn consensus_slots_per_phase(n: usize, phases: usize, epsilon: f64) -> usize {
    if epsilon == 0.0 {
        return 1;
    }
    let margin = 0.5 - epsilon;
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let slots = ((100.0 * n as f64 * phases as f64).ln() / (2.0 * margin * margin)).ceil() as usize;
    slots.max(1)
}

/// Runs 1-biased binary consensus over noisy beeps under a [`FaultPlan`].
///
/// `inputs[v]` is node `v`'s initial value; the run is a pure function of
/// `(graph, channel, faults, seed, inputs)`. See the module docs for the
/// protocol and its guarantees.
///
/// # Errors
///
/// * [`AppError::InvalidOutput`] if `inputs.len() != n`.
/// * [`AppError::Net`] if the fault plan names a node `≥ n` or the engine
///   rejects a round.
pub fn beep_consensus(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
    inputs: &[bool],
) -> Result<ConsensusReport, AppError> {
    let n = graph.node_count();
    if inputs.len() != n {
        return Err(AppError::InvalidOutput {
            detail: format!("consensus got {} inputs for {n} nodes", inputs.len()),
        });
    }
    let mut net = BeepNetwork::new(graph.clone(), channel.clone(), seed);
    net.set_fault_plan(faults.clone())?;
    let phases = graph.diameter().unwrap_or(n.saturating_sub(1)).max(1) + 2;
    let slots = consensus_slots_per_phase(n, phases, channel.calibration_epsilon());
    let mut value = BitVec::from_fn(n, |v| inputs[v]);
    let mut received = BitVec::zeros(n);
    let mut heard = vec![0usize; n];
    for _ in 0..phases {
        heard.iter_mut().for_each(|h| *h = 0);
        for _ in 0..slots {
            net.run_round_bitset_into(&value, &mut received)?;
            for v in received.iter_ones() {
                heard[v] += 1;
            }
        }
        for (v, &h) in heard.iter().enumerate() {
            if 2 * h >= slots {
                value.set(v, true);
            }
        }
    }
    let stats = net.stats();
    Ok(ConsensusReport {
        decisions: (0..n).map(|v| value.get(v)).collect(),
        rounds: stats.rounds,
        beeps: stats.beeps,
        phases,
        slots_per_phase: slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::{topology, FaultKind, Noise};

    fn clean() -> ChannelModel {
        Noise::Noiseless.into()
    }

    #[test]
    fn noiseless_all_zero_stays_zero_and_one_floods() {
        let g = topology::path(6).unwrap();
        let none = FaultPlan::none();
        let r = beep_consensus(&g, &clean(), &none, 1, &[false; 6]).unwrap();
        assert!(r.decisions.iter().all(|&d| !d));
        assert_eq!(r.beeps, 0);
        assert_eq!(r.rounds, r.phases * r.slots_per_phase);
        assert_eq!(r.slots_per_phase, 1);

        let mut inputs = [false; 6];
        inputs[0] = true; // one endpoint holds a 1: must flood the path
        let r = beep_consensus(&g, &clean(), &none, 1, &inputs).unwrap();
        assert!(r.decisions.iter().all(|&d| d), "{:?}", r.decisions);
    }

    #[test]
    fn noisy_run_reaches_agreement_and_validity() {
        let g = topology::complete(8).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        let none = FaultPlan::none();
        for seed in 0..5 {
            let r = beep_consensus(&g, &ch, &none, seed, &[false; 8]).unwrap();
            assert!(r.decisions.iter().all(|&d| !d), "seed {seed} invented a 1");
            let mut inputs = [false; 8];
            inputs[3] = true;
            let r = beep_consensus(&g, &ch, &none, seed, &inputs).unwrap();
            assert!(r.decisions.iter().all(|&d| d), "seed {seed} lost the 1");
            assert!(r.slots_per_phase > 1);
        }
    }

    #[test]
    fn crashed_holders_cannot_force_a_one_but_correct_holders_do() {
        let g = topology::complete(8).unwrap();
        // Nodes 0 and 1 hold the only 1s and crash before round 0.
        let plan = FaultPlan::try_from_assignments(vec![
            (0, FaultKind::Crash { round: 0 }),
            (1, FaultKind::Crash { round: 0 }),
        ])
        .unwrap();
        let mut inputs = [false; 8];
        inputs[0] = true;
        inputs[1] = true;
        let r = beep_consensus(&g, &clean(), &plan, 3, &inputs).unwrap();
        assert!((2..8).all(|v| !r.decisions[v]), "{:?}", r.decisions);

        // A correct holder floods the survivors regardless of the crashes.
        inputs[5] = true;
        let r = beep_consensus(&g, &clean(), &plan, 3, &inputs).unwrap();
        assert!((2..8).all(|v| r.decisions[v]), "{:?}", r.decisions);
    }

    #[test]
    fn spam_forces_one_and_mute_holders_stay_silent() {
        let g = topology::complete(6).unwrap();
        let spam = FaultPlan::try_from_assignments(vec![(2, FaultKind::ByzantineSpam)]).unwrap();
        let r = beep_consensus(&g, &clean(), &spam, 9, &[false; 6]).unwrap();
        assert!(
            (0..6).filter(|&v| v != 2).all(|v| r.decisions[v]),
            "{:?}",
            r.decisions
        );

        let mute = FaultPlan::try_from_assignments(vec![(2, FaultKind::ByzantineMute)]).unwrap();
        let mut inputs = [false; 6];
        inputs[2] = true; // the only 1 belongs to the mute node
        let r = beep_consensus(&g, &clean(), &mute, 9, &inputs).unwrap();
        assert!(
            (0..6).filter(|&v| v != 2).all(|v| !r.decisions[v]),
            "{:?}",
            r.decisions
        );
    }

    #[test]
    fn deterministic_in_the_seed() {
        let g = topology::grid(3, 3).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        let plan = FaultPlan::realize(9, 0.2, FaultKind::ByzantineMute, 42).unwrap();
        let mut inputs = [false; 9];
        inputs[4] = true;
        let a = beep_consensus(&g, &ch, &plan, 7, &inputs).unwrap();
        let b = beep_consensus(&g, &ch, &plan, 7, &inputs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn input_length_mismatch_is_an_error() {
        let g = topology::path(4).unwrap();
        let err = beep_consensus(&g, &clean(), &FaultPlan::none(), 0, &[true; 3]).unwrap_err();
        assert!(matches!(err, AppError::InvalidOutput { .. }), "{err}");
    }
}
