//! Crash-fault leader election on noisy beeps that *re-elects* when the
//! leader goes silent.
//!
//! The wave-based [`beep_leader_election`](crate::beep_leader_election)
//! elects once on a noiseless channel and assumes every node stays up.
//! This module runs on the noisy channel under a [`FaultPlan`] and treats
//! leadership as a *lease*: nodes monitor the leader's heartbeat and run a
//! fresh election when it stops.
//!
//! # Protocol
//!
//! Time is divided into `E` epochs. All communication uses one primitive:
//! a **flood** of `diameter + 2` subphases, each `R` beep slots — a node
//! "in" the flood beeps every slot of a subphase, and a node that hears a
//! majority of a subphase's slots joins the flood from the next subphase
//! on. After a flood, every correct node connected to an initiator has
//! w.h.p. heard it. Each epoch runs, in order:
//!
//! 1. **alarm flood** — initiated by every node that missed the last
//!    epoch's heartbeat (epoch 0: everyone — there is no leader yet). The
//!    flood turns local suspicion into a shared re-election signal.
//! 2. **election**, `⌈log₂ n⌉` bit-floods, highest bit first — skipped
//!    (nodes neither bid nor update) by nodes that did not hear the
//!    alarm. A candidate initiates bit-flood `i` iff bit `i` of its id is
//!    1; candidates whose bit is 0 drop out when the flood comes back
//!    positive. Every alarmed node decodes the winner's id from the flood
//!    outcomes (the classic bit-bidding election, flood-relayed so it
//!    works beyond one hop).
//! 3. **heartbeat flood** — initiated by the node whose id equals its own
//!    believed leader. Nodes that do not hear it will raise the alarm
//!    next epoch.
//!
//! A crashed leader cannot beep its heartbeat, so every correct node
//! alarms and the next epoch elects the highest-id *live* candidate; a
//! decode perturbed by noise can name a nonexistent id, in which case no
//! heartbeat follows and the same re-election path self-corrects.
//!
//! # Fault tolerance (and its honest limits)
//!
//! * **Crash**: the design case — detection plus re-election within one
//!   epoch, w.h.p., while the correct nodes stay connected.
//! * **Byzantine mute**: a mute candidate can never broadcast its bits, so
//!   correct nodes elect around it (it is faulty, so its own belief
//!   carries no guarantee).
//! * **Byzantine spam** is this protocol's documented *defeat*: a spammer
//!   drives every flood positive — the perpetual phantom alarm forces a
//!   re-election every epoch, every election decodes the all-ones phantom
//!   id `2^⌈log₂ n⌉ − 1`, and the fabricated heartbeat makes the phantom
//!   look alive — so correct nodes stay stuck following a leader that
//!   (when that id `≥ n`) does not exist (the defeat test asserts exactly
//!   this stuck state).

use crate::consensus::consensus_slots_per_phase;
use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{BeepNetwork, ChannelModel, FaultPlan, Graph, NoiseModel};

/// Outcome of one [`beep_leader_reelect`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderReelectReport {
    /// Per-node believed leader id at the end of the run (`None` = the
    /// node never completed an election). Faulty nodes' entries carry no
    /// guarantee. A value `≥ n` is a phantom id (see the module docs).
    pub leaders: Vec<Option<usize>>,
    /// Epochs in which at least one node heard the alarm (and so ran the
    /// election) — epoch 0 is always present.
    pub alarmed_epochs: Vec<usize>,
    /// Beep rounds executed.
    pub rounds: usize,
    /// Total beeps emitted (energy), faults included.
    pub beeps: u64,
    /// Epochs run.
    pub epochs: usize,
    /// Beep slots per flood subphase.
    pub slots_per_phase: usize,
}

/// Runs `epochs` epochs of heartbeat-monitored leader election over noisy
/// beeps under a [`FaultPlan`].
///
/// The run is a pure function of `(graph, channel, faults, seed, epochs)`.
/// See the module docs for the protocol, its guarantees, and its
/// documented defeat under spam.
///
/// # Errors
///
/// * [`AppError::InvalidOutput`] if `epochs == 0`.
/// * [`AppError::Net`] if the fault plan names a node `≥ n` or the engine
///   rejects a round.
pub fn beep_leader_reelect(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
    epochs: usize,
) -> Result<LeaderReelectReport, AppError> {
    let n = graph.node_count();
    if epochs == 0 {
        return Err(AppError::InvalidOutput {
            detail: "leader re-election needs at least one epoch".into(),
        });
    }
    let mut net = BeepNetwork::new(graph.clone(), channel.clone(), seed);
    net.set_fault_plan(faults.clone())?;
    let subphases = graph.diameter().unwrap_or(n.saturating_sub(1)).max(1) + 2;
    let bits = usize::BITS as usize - (n - 1).max(1).leading_zeros() as usize;
    let floods_per_epoch = 1 + bits + 1;
    let slots = consensus_slots_per_phase(
        n,
        epochs * floods_per_epoch * subphases,
        channel.calibration_epsilon(),
    );
    let mut leaders: Vec<Option<usize>> = vec![None; n];
    // Every node starts leaderless, so every node raises the first alarm.
    let mut alarm = BitVec::ones(n);
    let mut alarmed_epochs = Vec::new();
    let mut received = BitVec::zeros(n);
    for epoch in 0..epochs {
        let heard_alarm = flood(&mut net, &alarm, subphases, slots, &mut received)?;
        if heard_alarm.count_ones() > 0 {
            alarmed_epochs.push(epoch);
        }
        // Election: bit-bidding over bit-floods, highest bit first. Nodes
        // that did not hear the alarm relay the floods (flooding is pure
        // communication) but neither bid nor decode.
        let mut in_race = heard_alarm.clone();
        let mut decoded = vec![0usize; n];
        for bit in (0..bits).rev() {
            let bidders = BitVec::from_fn(n, |v| in_race.get(v) && (v >> bit) & 1 == 1);
            let heard_bit = flood(&mut net, &bidders, subphases, slots, &mut received)?;
            for (v, d) in decoded.iter_mut().enumerate() {
                if !heard_alarm.get(v) {
                    continue;
                }
                if heard_bit.get(v) {
                    *d |= 1 << bit;
                    if (v >> bit) & 1 == 0 {
                        in_race.set(v, false);
                    }
                }
            }
        }
        for v in heard_alarm.iter_ones() {
            leaders[v] = Some(decoded[v]);
        }
        // Heartbeat: the believed leader (if it exists and believes in
        // itself) floods; everyone else listens for the lease renewal.
        let beaters = BitVec::from_fn(n, |v| leaders[v] == Some(v));
        let heard_beat = flood(&mut net, &beaters, subphases, slots, &mut received)?;
        alarm = !&heard_beat;
    }
    let stats = net.stats();
    Ok(LeaderReelectReport {
        leaders,
        alarmed_epochs,
        rounds: stats.rounds,
        beeps: stats.beeps,
        epochs,
        slots_per_phase: slots,
    })
}

/// One OR-flood: `initiators` start beeping; any node that hears a
/// majority of a subphase's `slots` slots joins from the next subphase.
/// Returns the per-node "was reached" set (initiators included).
fn flood(
    net: &mut BeepNetwork,
    initiators: &BitVec,
    subphases: usize,
    slots: usize,
    received: &mut BitVec,
) -> Result<BitVec, AppError> {
    let n = initiators.len();
    let mut active = initiators.clone();
    for _ in 0..subphases {
        let mut heard = vec![0usize; n];
        for _ in 0..slots {
            net.run_round_bitset_into(&active, received)?;
            for v in received.iter_ones() {
                heard[v] += 1;
            }
        }
        for (v, &h) in heard.iter().enumerate() {
            if 2 * h >= slots {
                active.set(v, true);
            }
        }
    }
    Ok(active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::{topology, FaultKind, Noise};

    fn clean() -> ChannelModel {
        Noise::Noiseless.into()
    }

    #[test]
    fn fault_free_run_elects_the_highest_id_once() {
        for g in [topology::complete(8).unwrap(), topology::path(5).unwrap()] {
            let n = g.node_count();
            let r = beep_leader_reelect(&g, &clean(), &FaultPlan::none(), 1, 3).unwrap();
            assert!(
                r.leaders.iter().all(|&l| l == Some(n - 1)),
                "{:?}",
                r.leaders
            );
            // The heartbeat holds, so only epoch 0 runs an election.
            assert_eq!(r.alarmed_epochs, vec![0]);
        }
    }

    #[test]
    fn crashed_leader_triggers_reelection_of_the_next_id() {
        let g = topology::complete(8).unwrap();
        // Node 7 wins epoch 0, then crashes mid-run: its heartbeat stops,
        // the alarm floods, and epoch 2 elects node 6.
        let r_probe = beep_leader_reelect(&g, &clean(), &FaultPlan::none(), 1, 1).unwrap();
        let epoch_rounds = r_probe.rounds;
        let crash_round = epoch_rounds + epoch_rounds / 2;
        let plan = FaultPlan::try_from_assignments(vec![(
            7,
            FaultKind::Crash {
                round: crash_round as u64,
            },
        )])
        .unwrap();
        let r = beep_leader_reelect(&g, &clean(), &plan, 1, 3).unwrap();
        assert!(
            (0..7).all(|v| r.leaders[v] == Some(6)),
            "{:?} (alarmed {:?})",
            r.leaders,
            r.alarmed_epochs
        );
        assert!(r.alarmed_epochs.len() >= 2, "{:?}", r.alarmed_epochs);
    }

    #[test]
    fn noisy_runs_agree_on_the_leader_whp() {
        let g = topology::complete(8).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        let mut agreed = 0;
        for seed in 0..10 {
            let r = beep_leader_reelect(&g, &ch, &FaultPlan::none(), seed, 2).unwrap();
            if r.leaders.iter().all(|&l| l == Some(7)) {
                agreed += 1;
            }
        }
        assert!(agreed >= 9, "only {agreed}/10 noisy runs agreed on node 7");
    }

    #[test]
    fn mute_candidates_are_elected_around() {
        let g = topology::complete(8).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![(7, FaultKind::ByzantineMute)]).unwrap();
        let r = beep_leader_reelect(&g, &clean(), &plan, 3, 2).unwrap();
        assert!((0..7).all(|v| r.leaders[v] == Some(6)), "{:?}", r.leaders);
    }

    #[test]
    fn spam_defeat_installs_a_phantom_leader_forever() {
        // The documented defeat condition, asserted rather than skipped: a
        // spammer forces every flood positive — perpetual phantom alarm,
        // every election decoding the all-ones id 7 (nonexistent at
        // n = 6), and a fabricated heartbeat keeping the phantom "alive".
        let g = topology::complete(6).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![(2, FaultKind::ByzantineSpam)]).unwrap();
        let r = beep_leader_reelect(&g, &clean(), &plan, 5, 3).unwrap();
        let phantom = 7; // 3 bit-floods, all forced to 1; no such node
        assert!(
            (0..6)
                .filter(|&v| v != 2)
                .all(|v| r.leaders[v] == Some(phantom)),
            "{:?}",
            r.leaders
        );
        // The spammer's phantom alarm re-runs the (phantom) election in
        // every epoch — correct nodes never escape.
        assert_eq!(r.alarmed_epochs, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let g = topology::grid(3, 3).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        let plan = FaultPlan::realize(9, 0.2, FaultKind::ByzantineMute, 13).unwrap();
        let a = beep_leader_reelect(&g, &ch, &plan, 7, 2).unwrap();
        let b = beep_leader_reelect(&g, &ch, &plan, 7, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_epochs_is_an_error() {
        let g = topology::path(4).unwrap();
        let err = beep_leader_reelect(&g, &clean(), &FaultPlan::none(), 0, 0).unwrap_err();
        assert!(matches!(err, AppError::InvalidOutput { .. }), "{err}");
    }
}
