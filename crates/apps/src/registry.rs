//! Named protocol registry: every runnable workload in the workspace,
//! addressable by a stable string name.
//!
//! This is the scenario layer's front door. A campaign cell names a
//! protocol (`"matching"`, `"round_sim"`, …); the registry maps the name
//! to a [`Protocol`] and runs it on an arbitrary graph under an arbitrary
//! noise rate with one uniform outcome shape ([`ProtocolOutcome`]): beep
//! rounds, beeps emitted, a success verdict, and protocol-specific
//! metrics. Everything is deterministic given `(graph, epsilon, seed)`.
//!
//! Protocols come in two classes:
//!
//! * **noisy-capable** — the paper's simulation pipeline and its
//!   baselines (`matching`, `mis`, `coloring`, `round_sim`, `tdma`,
//!   `local_broadcast`) plus the fault-tolerant family (`beep_consensus`,
//!   `beep_ben_or`, `beep_reliable_broadcast`, `beep_leader_reelect`):
//!   any `ε ∈ [0, ½)`;
//! * **noiseless primitives** — the wave-based tools (`wave`, `leader`,
//!   `multicast`): requesting `ε > 0` returns
//!   [`AppError::NoiseUnsupported`] so sweeps can mark those cells as
//!   skipped rather than failed.
//!
//! Orthogonally, a protocol either **tolerates faults**
//! ([`Protocol::supports_faults`] — the fault-tolerant family above,
//! built for the fault layer) or it doesn't: running the latter under a
//! non-empty [`FaultPlan`] returns [`AppError::FaultsUnsupported`], which
//! campaigns likewise record as skipped cells. Each fault-tolerant
//! protocol's verdict scores its classic properties among correct nodes
//! (agreement/validity for the consensus pair, totality/validity for
//! reliable broadcast, leader agreement for re-election) while accounting
//! for each protocol's *documented* defeat — a Byzantine spammer forcing
//! consensus to 1, fabricating a delivery, or installing a phantom
//! leader is the expected outcome there, not a failure.
//!
//! All three entry points funnel into one dispatcher,
//! [`Protocol::run_with_faults`]: [`Protocol::run`] is `run_channel` on
//! the iid channel at `ε`, and [`Protocol::run_channel`] is
//! `run_with_faults` with the empty plan.

use crate::consensus::beep_consensus;
use crate::error::AppError;
use crate::{
    beep_ben_or, beep_leader_election, beep_leader_reelect, beep_reliable_broadcast,
    beep_wave_broadcast, coloring_with_faults, maximal_independent_set_with_faults,
    maximal_matching_with_faults, multi_source_broadcast,
};
use beep_bits::BitVec;
use beep_congest::algorithms::Flood;
use beep_core::baseline::TdmaSimulator;
use beep_core::lower_bound::CongestLocalBroadcast;
use beep_core::{SimReport, SimulatedBroadcastRunner, SimulatedCongestRunner, SimulationParams};
use beep_net::{ChannelModel, FaultKind, FaultPlan, Graph, Noise, NoiseModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Message width used by the registry's fixed-size workloads.
const PAYLOAD_BITS: usize = 16;
/// Message width for the wave/multicast primitives (kept small so the
/// superimposed-code construction stays cheap at every campaign scale).
const PRIMITIVE_BITS: usize = 6;
/// XOR'd into the cell seed to derive `beep_consensus` inputs, so the
/// input assignment is independent of the engine's noise streams.
const CONSENSUS_INPUT_STREAM: u64 = 0xB1A5_ED1D;

/// Uniform outcome of one registry-driven protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Beep rounds executed on the network.
    pub rounds: usize,
    /// Total beeps emitted (energy).
    pub beeps: u64,
    /// Whether the protocol's own correctness check passed this run.
    pub success: bool,
    /// Protocol-specific metrics (`congest_rounds`, …), name → value.
    pub metrics: Vec<(&'static str, f64)>,
}

/// A runnable workload, addressable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Protocol {
    /// Single-source beep-wave broadcast (noiseless primitive).
    Wave,
    /// Wave-based leader election (noiseless primitive).
    Leader,
    /// Multi-source broadcast with superimposed codes (noiseless
    /// primitive).
    Multicast,
    /// Maximal matching over the Theorem 11 simulation (Theorem 21).
    Matching,
    /// Maximal independent set over the Theorem 11 simulation.
    Mis,
    /// (Δ+1)-coloring over the Theorem 11 simulation.
    Coloring,
    /// Flood through Algorithm 1's round simulation — one protocol phase
    /// per Broadcast CONGEST round.
    RoundSim,
    /// Flood through the TDMA / G²-coloring baseline simulator.
    Tdma,
    /// B-bit Local Broadcast (Definition 13) via the Corollary 12
    /// CONGEST wrapper.
    LocalBroadcast,
    /// 1-biased binary consensus on noisy beeps — the fault-tolerant
    /// proof workload (see [`crate::beep_consensus`]).
    BeepConsensus,
    /// Ben-Or-style randomized binary consensus with counter-keyed coins
    /// (see [`crate::beep_ben_or`]).
    BeepBenOr,
    /// Bracha-style reliable broadcast as beep-slot voting (see
    /// [`crate::beep_reliable_broadcast`]).
    BeepReliableBroadcast,
    /// Heartbeat-monitored leader election that re-elects on leader
    /// silence (see [`crate::beep_leader_reelect`]).
    BeepLeaderReelect,
}

impl Protocol {
    /// Every registered protocol, in display order.
    pub const ALL: [Protocol; 13] = [
        Protocol::Wave,
        Protocol::Leader,
        Protocol::Multicast,
        Protocol::Matching,
        Protocol::Mis,
        Protocol::Coloring,
        Protocol::RoundSim,
        Protocol::Tdma,
        Protocol::LocalBroadcast,
        Protocol::BeepConsensus,
        Protocol::BeepBenOr,
        Protocol::BeepReliableBroadcast,
        Protocol::BeepLeaderReelect,
    ];

    /// The canonical registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Wave => "wave",
            Protocol::Leader => "leader",
            Protocol::Multicast => "multicast",
            Protocol::Matching => "matching",
            Protocol::Mis => "mis",
            Protocol::Coloring => "coloring",
            Protocol::RoundSim => "round_sim",
            Protocol::Tdma => "tdma",
            Protocol::LocalBroadcast => "local_broadcast",
            Protocol::BeepConsensus => "beep_consensus",
            Protocol::BeepBenOr => "beep_ben_or",
            Protocol::BeepReliableBroadcast => "beep_reliable_broadcast",
            Protocol::BeepLeaderReelect => "beep_leader_reelect",
        }
    }

    /// Looks a protocol up by name (canonical names plus a few aliases).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Protocol> {
        Some(match name {
            "wave" | "broadcast_wave" => Protocol::Wave,
            "leader" | "leader_election" => Protocol::Leader,
            "multicast" | "multi_source" => Protocol::Multicast,
            "matching" | "maximal_matching" => Protocol::Matching,
            "mis" | "maximal_independent_set" => Protocol::Mis,
            "coloring" => Protocol::Coloring,
            "round_sim" | "flood" => Protocol::RoundSim,
            "tdma" => Protocol::Tdma,
            "local_broadcast" => Protocol::LocalBroadcast,
            "beep_consensus" | "consensus" => Protocol::BeepConsensus,
            "beep_ben_or" | "ben_or" => Protocol::BeepBenOr,
            "beep_reliable_broadcast" | "reliable_broadcast" => Protocol::BeepReliableBroadcast,
            "beep_leader_reelect" | "leader_reelect" => Protocol::BeepLeaderReelect,
            _ => return None,
        })
    }

    /// Whether the protocol accepts `ε > 0` (the noiseless wave
    /// primitives do not — a single flipped bit forks a phantom wave).
    #[must_use]
    pub fn supports_noise(&self) -> bool {
        !matches!(
            self,
            Protocol::Wave | Protocol::Leader | Protocol::Multicast
        )
    }

    /// Whether the protocol tolerates a non-empty [`FaultPlan`]. The
    /// fault-tolerant family (`beep_consensus`, `beep_ben_or`,
    /// `beep_reliable_broadcast`, `beep_leader_reelect`) is designed for
    /// faulty nodes; every other protocol's w.h.p. guarantee assumes all
    /// nodes are correct, so sweeps mark their faulted cells as skipped
    /// (see [`AppError::FaultsUnsupported`]).
    #[must_use]
    pub fn supports_faults(&self) -> bool {
        matches!(
            self,
            Protocol::BeepConsensus
                | Protocol::BeepBenOr
                | Protocol::BeepReliableBroadcast
                | Protocol::BeepLeaderReelect
        )
    }

    /// Runs the protocol on `graph` at noise rate `epsilon` with the
    /// given seed, returning the uniform outcome.
    ///
    /// # Errors
    ///
    /// * [`AppError::NoiseUnsupported`] if `epsilon > 0` on a noiseless
    ///   primitive (see [`Protocol::supports_noise`]).
    /// * [`AppError::Net`] / [`AppError::Sim`] on engine or simulation
    ///   failures (invalid ε, exhausted round budgets on disconnected
    ///   graphs, …).
    /// * [`AppError::InvalidOutput`] if the w.h.p. guarantee failed this
    ///   run.
    pub fn run(&self, graph: &Graph, epsilon: f64, seed: u64) -> Result<ProtocolOutcome, AppError> {
        self.run_channel(graph, &ChannelModel::from(noise_for(epsilon)?), seed)
    }

    /// Runs the protocol on `graph` under an arbitrary [`ChannelModel`]
    /// — the channel-sweep entry point the campaign layer drives.
    /// Exactly [`run_with_faults`](Self::run_with_faults) with the empty
    /// [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// As [`run_with_faults`](Self::run_with_faults).
    pub fn run_channel(
        &self,
        graph: &Graph,
        channel: &ChannelModel,
        seed: u64,
    ) -> Result<ProtocolOutcome, AppError> {
        self.run_with_faults(graph, channel, &FaultPlan::none(), seed)
    }

    /// The single dispatcher every registry entry point funnels into:
    /// runs the protocol on `graph` under an arbitrary [`ChannelModel`]
    /// and [`FaultPlan`].
    ///
    /// Semantics:
    ///
    /// * a noiseless channel (any model whose
    ///   [`is_noiseless`](NoiseModel::is_noiseless) holds) is normalized
    ///   to the exact channel, so every noiseless instance of every model
    ///   reproduces the `ε = 0` run bit-for-bit;
    /// * an iid channel reproduces the [`run`](Self::run) ε sweep
    ///   bit-for-bit; the other models are threaded through the
    ///   simulation pipeline with parameters calibrated to the model's
    ///   [`calibration_epsilon`](NoiseModel::calibration_epsilon);
    /// * a noisy channel on a noiseless-only primitive returns
    ///   [`AppError::NoiseUnsupported`] naming the channel, and a
    ///   non-empty plan on a protocol without
    ///   [`supports_faults`](Self::supports_faults) returns
    ///   [`AppError::FaultsUnsupported`] — campaigns record both as
    ///   *skipped* (not failed) cells.
    ///
    /// # Errors
    ///
    /// * [`AppError::NoiseUnsupported`] / [`AppError::FaultsUnsupported`]
    ///   on a protocol/channel or protocol/fault mismatch.
    /// * [`AppError::Net`] / [`AppError::Sim`] on engine or simulation
    ///   failures (invalid ε, out-of-range fault plans, exhausted round
    ///   budgets on disconnected graphs, …).
    /// * [`AppError::InvalidOutput`] if the w.h.p. guarantee failed this
    ///   run.
    pub fn run_with_faults(
        &self,
        graph: &Graph,
        channel: &ChannelModel,
        faults: &FaultPlan,
        seed: u64,
    ) -> Result<ProtocolOutcome, AppError> {
        let clean: ChannelModel;
        let channel = if channel.is_noiseless() && !matches!(channel, ChannelModel::Iid(_)) {
            clean = Noise::Noiseless.into();
            &clean
        } else {
            channel
        };
        if !channel.is_noiseless() && !self.supports_noise() {
            return Err(AppError::NoiseUnsupported {
                protocol: self.name(),
                channel: channel.label(),
            });
        }
        if !faults.is_empty() && !self.supports_faults() {
            return Err(AppError::FaultsUnsupported {
                protocol: self.name(),
            });
        }
        match self {
            Protocol::Wave => run_wave(graph, seed),
            Protocol::Leader => run_leader(graph, seed),
            Protocol::Multicast => run_multicast(graph, seed),
            Protocol::Matching => {
                let r = maximal_matching_with_faults(graph, channel, faults, seed)?;
                Ok(outcome_from_sim(&r.report))
            }
            Protocol::Mis => {
                let r = maximal_independent_set_with_faults(graph, channel, faults, seed)?;
                Ok(outcome_from_sim(&r.report))
            }
            Protocol::Coloring => {
                let r = coloring_with_faults(graph, channel, faults, seed)?;
                Ok(outcome_from_sim(&r.report))
            }
            Protocol::RoundSim => run_flood_simulated_channel(graph, channel, seed),
            Protocol::Tdma => run_flood_tdma_channel(graph, channel, seed),
            Protocol::LocalBroadcast => run_local_broadcast_channel(graph, channel, seed),
            Protocol::BeepConsensus => run_beep_consensus(graph, channel, faults, seed),
            Protocol::BeepBenOr => run_beep_ben_or(graph, channel, faults, seed),
            Protocol::BeepReliableBroadcast => {
                run_beep_reliable_broadcast(graph, channel, faults, seed)
            }
            Protocol::BeepLeaderReelect => run_beep_leader_reelect(graph, channel, faults, seed),
        }
    }
}

/// ε → channel through the fallible constructor (0 = noiseless model).
fn noise_for(epsilon: f64) -> Result<Noise, AppError> {
    if epsilon == 0.0 {
        Ok(Noise::Noiseless)
    } else {
        Ok(Noise::try_bernoulli(epsilon)?)
    }
}

/// A deterministic `bits`-wide payload derived from the seed.
fn seeded_message(bits: usize, seed: u64) -> BitVec {
    BitVec::from_fn(bits, |i| (seed >> (i % 64)) & 1 == 1)
}

fn outcome_from_sim(report: &SimReport) -> ProtocolOutcome {
    ProtocolOutcome {
        rounds: report.beep_rounds,
        beeps: report.beeps,
        success: true,
        metrics: vec![
            ("congest_rounds", report.congest_rounds as f64),
            (
                "beep_rounds_per_congest_round",
                report.beep_rounds_per_congest_round as f64,
            ),
            ("imperfect_rounds", report.stats.imperfect_rounds as f64),
        ],
    }
}

fn run_wave(graph: &Graph, seed: u64) -> Result<ProtocolOutcome, AppError> {
    let message = seeded_message(PRIMITIVE_BITS, seed | 1); // never all-zero
    let report = beep_wave_broadcast(graph, 0, &message, seed)?;
    let success = report.received.iter().all(|r| r.as_ref() == Some(&message));
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success,
        metrics: vec![("message_bits", PRIMITIVE_BITS as f64)],
    })
}

fn run_leader(graph: &Graph, seed: u64) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let bound = graph.diameter().unwrap_or(n.saturating_sub(1)).max(1);
    let report = beep_leader_election(graph, bound, seed)?;
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success: report.leader == n - 1,
        metrics: vec![("diameter_bound", bound as f64)],
    })
}

fn run_multicast(graph: &Graph, seed: u64) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    if n < 2 {
        return Err(AppError::InvalidOutput {
            detail: "multicast needs at least two nodes".into(),
        });
    }
    let bound = graph.diameter().unwrap_or(n - 1).max(1);
    let m1 = seeded_message(PRIMITIVE_BITS, seed | 1);
    let m2 = !&m1; // distinct from m1 by construction
    let sources = vec![(0, m1.clone()), (n - 1, m2.clone())];
    // Candidate universe: all 2^6 messages, as the multicast tests use.
    let candidates: Vec<BitVec> = (0..1u64 << PRIMITIVE_BITS).map(seeded_value_bits).collect();
    let report =
        multi_source_broadcast(graph, &sources, 2, PRIMITIVE_BITS, bound, &candidates, seed)?;
    let mut expected = vec![m1, m2];
    expected.sort_unstable_by_key(BitVec::to_string);
    let mut decoded = report.decoded.clone();
    decoded.sort_unstable_by_key(BitVec::to_string);
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success: decoded == expected,
        metrics: vec![("sources", 2.0)],
    })
}

/// The `v`-th message of the `PRIMITIVE_BITS`-bit universe.
fn seeded_value_bits(v: u64) -> BitVec {
    BitVec::from_fn(PRIMITIVE_BITS, |i| (v >> i) & 1 == 1)
}

fn run_flood_simulated_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let value = seed & 0xFFFF;
    let params = SimulationParams::calibrated(channel.calibration_epsilon());
    let runner = SimulatedBroadcastRunner::new(graph, PAYLOAD_BITS, seed, params, channel.clone());
    let mut algos: Vec<Box<Flood>> = (0..n)
        .map(|_| Box::new(Flood::new(0, value, PAYLOAD_BITS)))
        .collect();
    let report = runner.run_to_completion(&mut algos, n + 1)?;
    let success = algos.iter().all(|a| a.output() == Some(value));
    let mut outcome = outcome_from_sim(&report);
    outcome.success = success;
    Ok(outcome)
}

fn run_flood_tdma_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let value = seed & 0xFFFF;
    let sim = TdmaSimulator::new(graph, PAYLOAD_BITS, channel.calibration_epsilon());
    let mut algos: Vec<Box<Flood>> = (0..n)
        .map(|_| Box::new(Flood::new(0, value, PAYLOAD_BITS)))
        .collect();
    let report = sim.run_to_completion(graph, channel.clone(), seed, &mut algos, n + 1)?;
    let success = algos.iter().all(|a| a.output() == Some(value));
    let mut outcome = outcome_from_sim(&report);
    outcome.success = success;
    Ok(outcome)
}

fn run_local_broadcast_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let bits = 8;
    // Per-directed-edge random inputs, drawn from a dedicated stream so
    // the instance is a pure function of (graph, seed).
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10CA_1B0A);
    let inputs: Vec<Vec<(usize, BitVec)>> = (0..n)
        .map(|v| {
            graph
                .neighbors(v)
                .iter()
                .map(|&u| (u, BitVec::from_fn(bits, |_| rng.random_bool(0.5))))
                .collect()
        })
        .collect();
    let algos: Vec<CongestLocalBroadcast> = inputs
        .iter()
        .map(|out| CongestLocalBroadcast::new(bits, out.clone()))
        .collect();
    let params = SimulationParams::calibrated(channel.calibration_epsilon());
    let runner = SimulatedCongestRunner::new(graph, bits, seed, params, channel.clone());
    let budget = CongestLocalBroadcast::rounds_needed(bits, bits) + 3;
    let (solved, report) = runner.run_to_completion(algos, budget)?;
    let success = (0..n).all(|v| {
        solved[v].output().iter().all(|(sender, msg)| {
            inputs[*sender]
                .iter()
                .any(|(dest, truth)| dest == &v && truth == msg)
        })
    }) && (0..n).all(|v| solved[v].output().len() == graph.degree(v));
    let mut outcome = outcome_from_sim(&report);
    outcome.success = success;
    // Consumers (e.g. experiment E6's lower-bound ratio) read the payload
    // width from the run instead of duplicating the constant.
    outcome.metrics.push(("message_bits", bits as f64));
    Ok(outcome)
}

/// Runs [`beep_consensus`] on seeded coin-flip inputs and scores the run
/// against its guarantees *among correct nodes*: agreement, plus validity
/// bounds — the decision must be 1 when a correct node held a 1 (or a
/// spammer forces one), and may only be 1 when *some* node held a 1 or a
/// spammer exists (a faulty holder may or may not have spoken before
/// halting, so either decision is legitimate there).
fn run_beep_consensus(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed ^ CONSENSUS_INPUT_STREAM);
    let inputs: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
    let report = beep_consensus(graph, channel, faults, seed, &inputs)?;
    let correct: Vec<usize> = (0..n).filter(|&v| faults.fault_of(v).is_none()).collect();
    let spam = faults
        .assignments()
        .iter()
        .any(|&(_, kind)| kind == FaultKind::ByzantineSpam);
    let agreement = correct
        .windows(2)
        .all(|w| report.decisions[w[0]] == report.decisions[w[1]]);
    let must_be_one = spam || correct.iter().any(|&v| inputs[v]);
    let may_be_one = spam || inputs.iter().any(|&b| b);
    let success = match correct.first() {
        // Every node is faulty: there is nothing to guarantee.
        None => true,
        Some(&v) => {
            let d = report.decisions[v];
            agreement && (!must_be_one || d) && (!d || may_be_one)
        }
    };
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success,
        metrics: vec![
            ("phases", report.phases as f64),
            ("slots_per_phase", report.slots_per_phase as f64),
            ("faulty_nodes", faults.len() as f64),
        ],
    })
}

/// Runs [`beep_ben_or`] on seeded coin-flip inputs (same input stream as
/// `beep_consensus`, so the two consensus protocols face identical
/// instances cell-for-cell) and scores agreement among correct nodes plus
/// the protocol's validity envelope: uniform fault-free inputs must decide
/// that value, and a spammer must force 1 (the documented defeat).
fn run_beep_ben_or(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed ^ CONSENSUS_INPUT_STREAM);
    let inputs: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
    let report = beep_ben_or(graph, channel, faults, seed, &inputs)?;
    let correct: Vec<usize> = (0..n).filter(|&v| faults.fault_of(v).is_none()).collect();
    let spam = faults
        .assignments()
        .iter()
        .any(|&(_, kind)| kind == FaultKind::ByzantineSpam);
    let agreement = correct
        .windows(2)
        .all(|w| report.decisions[w[0]] == report.decisions[w[1]]);
    let uniform = inputs.windows(2).all(|w| w[0] == w[1]);
    let success = match correct.first() {
        // Every node is faulty: there is nothing to guarantee.
        None => true,
        Some(&v) => {
            let d = report.decisions[v];
            agreement && (!spam || d) && (!(uniform && faults.is_empty()) || d == inputs[0])
        }
    };
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success,
        metrics: vec![
            ("phases", report.phases as f64),
            ("slots_per_phase", report.slots_per_phase as f64),
            ("faulty_nodes", faults.len() as f64),
            (
                "agreement_phase",
                report.agreement_phase.map_or(-1.0, |p| p as f64),
            ),
        ],
    })
}

/// Runs [`beep_reliable_broadcast`] from node 0 and scores totality among
/// correct nodes plus the validity envelope: a fully correct source must
/// reach every correct node, and a delivery with a provably silent source
/// (mute, or crashed before sending) is only legitimate when a spammer
/// exists to fabricate it (the documented defeat).
fn run_beep_reliable_broadcast(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let report = beep_reliable_broadcast(graph, channel, faults, seed, 0)?;
    let correct: Vec<usize> = (0..n).filter(|&v| faults.fault_of(v).is_none()).collect();
    let spam = faults
        .assignments()
        .iter()
        .any(|&(_, kind)| kind == FaultKind::ByzantineSpam);
    let source_silent = matches!(
        faults.fault_of(0),
        Some(FaultKind::ByzantineMute) | Some(FaultKind::Crash { round: 0 })
    );
    let totality = correct
        .windows(2)
        .all(|w| report.delivered[w[0]] == report.delivered[w[1]]);
    let success = match correct.first() {
        None => true,
        Some(&v) => {
            let delivered = report.delivered[v];
            totality
                && (faults.fault_of(0).is_some() || delivered)
                && (!source_silent || spam || !delivered)
        }
    };
    let delivered_count = correct.iter().filter(|&&v| report.delivered[v]).count();
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success,
        metrics: vec![
            ("phases", report.phases as f64),
            ("slots_per_phase", report.slots_per_phase as f64),
            ("faulty_nodes", faults.len() as f64),
            ("delivered_correct", delivered_count as f64),
        ],
    })
}

/// Runs [`beep_leader_reelect`] for three epochs and scores leader
/// agreement among correct nodes: all correct nodes must finish following
/// the *same* concrete leader. The stronger liveness claims (highest live
/// id wins, a crashed leader is replaced, a spammer installs a phantom)
/// are pinned by the protocol's own statistical tests, not the generic
/// verdict — noisy adaptive cells only owe agreement.
fn run_beep_leader_reelect(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<ProtocolOutcome, AppError> {
    let n = graph.node_count();
    let epochs = 3;
    let report = beep_leader_reelect(graph, channel, faults, seed, epochs)?;
    let correct: Vec<usize> = (0..n).filter(|&v| faults.fault_of(v).is_none()).collect();
    let success = match correct.first() {
        None => true,
        Some(&v) => {
            report.leaders[v].is_some()
                && correct
                    .windows(2)
                    .all(|w| report.leaders[w[0]] == report.leaders[w[1]])
        }
    };
    Ok(ProtocolOutcome {
        rounds: report.rounds,
        beeps: report.beeps,
        success,
        metrics: vec![
            ("epochs", report.epochs as f64),
            ("slots_per_phase", report.slots_per_phase as f64),
            ("faulty_nodes", faults.len() as f64),
            ("alarmed_epochs", report.alarmed_epochs.len() as f64),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    #[test]
    fn names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_name(p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(Protocol::from_name("flood"), Some(Protocol::RoundSim));
        assert_eq!(Protocol::from_name("nope"), None);
    }

    #[test]
    fn every_protocol_runs_noiseless_on_a_cycle() {
        let g = topology::cycle(6).unwrap();
        for p in Protocol::ALL {
            let out = p
                .run(&g, 0.0, 5)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(out.success, "{} did not succeed", p.name());
            assert!(out.rounds > 0, "{} reported zero rounds", p.name());
        }
    }

    #[test]
    fn noisy_capable_protocols_run_at_eps() {
        let g = topology::cycle(6).unwrap();
        for p in Protocol::ALL.iter().filter(|p| p.supports_noise()) {
            let out = p
                .run(&g, 0.05, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(out.rounds > 0, "{}", p.name());
        }
    }

    #[test]
    fn noiseless_primitives_reject_noise_explicitly() {
        let g = topology::path(4).unwrap();
        for p in [Protocol::Wave, Protocol::Leader, Protocol::Multicast] {
            assert!(matches!(
                p.run(&g, 0.05, 1),
                Err(AppError::NoiseUnsupported { .. })
            ));
        }
    }

    #[test]
    fn outcomes_are_deterministic() {
        let g = topology::grid(3, 3).unwrap();
        for p in [Protocol::Matching, Protocol::RoundSim, Protocol::Wave] {
            let a = p.run(&g, 0.0, 11).unwrap();
            let b = p.run(&g, 0.0, 11).unwrap();
            assert_eq!(a, b, "{}", p.name());
        }
    }

    #[test]
    fn invalid_epsilon_is_an_error() {
        let g = topology::path(4).unwrap();
        let err = Protocol::Matching.run(&g, 0.7, 1).unwrap_err();
        assert!(matches!(err, AppError::Net(_)), "{err}");
    }

    #[test]
    fn run_channel_matches_run_for_iid_and_noiseless_channels() {
        let g = topology::cycle(6).unwrap();
        let iid: ChannelModel = Noise::bernoulli(0.05).into();
        for p in [Protocol::Matching, Protocol::RoundSim, Protocol::Tdma] {
            assert_eq!(
                p.run_channel(&g, &iid, 7).unwrap(),
                p.run(&g, 0.05, 7).unwrap(),
                "{}",
                p.name()
            );
        }
        let clean: ChannelModel = Noise::Noiseless.into();
        assert_eq!(
            Protocol::Wave.run_channel(&g, &clean, 5).unwrap(),
            Protocol::Wave.run(&g, 0.0, 5).unwrap()
        );
    }

    #[test]
    fn every_noisy_protocol_runs_under_stochastic_channel_families() {
        use beep_net::{GilbertElliott, PerNodeEps};
        let g = topology::cycle(6).unwrap();
        let channels: Vec<ChannelModel> = vec![
            GilbertElliott::try_new(0.01, 0.1, 0.2, 0.5).unwrap().into(),
            PerNodeEps::try_new(vec![0.0, 0.05]).unwrap().into(),
        ];
        for ch in &channels {
            for p in Protocol::ALL.iter().filter(|p| p.supports_noise()) {
                let out = p
                    .run_channel(&g, ch, 7)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", p.name(), ch.label()));
                assert!(out.rounds > 0, "{} under {}", p.name(), ch.label());
            }
        }
    }

    #[test]
    fn adversarial_channel_runs_or_defeats_protocols_cleanly() {
        // The w.h.p. guarantees only hold against *stochastic* noise; a
        // budgeted adversary is allowed to defeat a protocol. What must
        // hold: every run either completes or fails with a reportable
        // error (campaigns record those as failed cells) — never a panic
        // or a protocol/channel mismatch.
        let ch: ChannelModel = beep_net::AdversarialErasure::try_new(1, 0.05)
            .unwrap()
            .into();
        let g = topology::cycle(6).unwrap();
        for p in Protocol::ALL.iter().filter(|p| p.supports_noise()) {
            match p.run_channel(&g, &ch, 7) {
                Ok(out) => assert!(out.rounds > 0, "{}", p.name()),
                Err(AppError::InvalidOutput { .. } | AppError::Sim(_)) => {}
                Err(e) => panic!("{} under {}: unexpected {e}", p.name(), ch.label()),
            }
        }
    }

    #[test]
    fn noiseless_primitives_reject_noisy_channels_as_unsupported() {
        let g = topology::path(4).unwrap();
        let ge: ChannelModel = beep_net::GilbertElliott::try_new(0.0, 0.2, 0.5, 0.5)
            .unwrap()
            .into();
        for p in [Protocol::Wave, Protocol::Leader, Protocol::Multicast] {
            let err = p.run_channel(&g, &ge, 1).unwrap_err();
            assert!(matches!(err, AppError::NoiseUnsupported { .. }), "{err}");
            assert!(err.to_string().contains("ge-"), "{err}");
        }
        // A noiseless instance of a fancy model is not a mismatch.
        let clean: ChannelModel = beep_net::AdversarialErasure::try_new(0, 0.1)
            .unwrap()
            .into();
        assert!(Protocol::Wave.run_channel(&g, &clean, 1).is_ok());
    }

    #[test]
    fn exactly_the_fault_tolerant_family_supports_faults() {
        let family = [
            Protocol::BeepConsensus,
            Protocol::BeepBenOr,
            Protocol::BeepReliableBroadcast,
            Protocol::BeepLeaderReelect,
        ];
        for p in Protocol::ALL {
            assert_eq!(p.supports_faults(), family.contains(&p), "{}", p.name());
            // Every fault-tolerant protocol is also noisy-capable: a
            // faulted sweep always has a legal noisy axis to pair with.
            if p.supports_faults() {
                assert!(p.supports_noise(), "{}", p.name());
            }
        }
    }

    #[test]
    fn fault_tolerant_family_survives_realized_plans_on_complete_graphs() {
        use beep_net::{FaultKind, FaultPlan};
        let g = topology::complete(10).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        for p in [
            Protocol::BeepBenOr,
            Protocol::BeepReliableBroadcast,
            Protocol::BeepLeaderReelect,
        ] {
            for kind in [
                FaultKind::Crash { round: 4 },
                FaultKind::ByzantineSpam,
                FaultKind::ByzantineMute,
            ] {
                let plan = FaultPlan::realize(10, 0.2, kind, 11).unwrap();
                let out = p
                    .run_with_faults(&g, &ch, &plan, 11)
                    .unwrap_or_else(|e| panic!("{} under {kind:?}: {e}", p.name()));
                assert!(out.success, "{} under {kind:?}", p.name());
            }
        }
    }

    #[test]
    fn empty_fault_plan_reproduces_run_channel_exactly() {
        use beep_net::FaultPlan;
        let g = topology::cycle(6).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.05).into();
        for p in [
            Protocol::Matching,
            Protocol::RoundSim,
            Protocol::BeepConsensus,
        ] {
            assert_eq!(
                p.run_with_faults(&g, &ch, &FaultPlan::none(), 7).unwrap(),
                p.run_channel(&g, &ch, 7).unwrap(),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn non_tolerant_protocols_reject_fault_plans_as_unsupported() {
        use beep_net::{FaultKind, FaultPlan};
        let g = topology::cycle(6).unwrap();
        let plan = FaultPlan::realize(6, 0.34, FaultKind::ByzantineMute, 3).unwrap();
        let clean: ChannelModel = Noise::Noiseless.into();
        for p in Protocol::ALL.iter().filter(|p| !p.supports_faults()) {
            let err = p.run_with_faults(&g, &clean, &plan, 1).unwrap_err();
            assert!(
                matches!(err, AppError::FaultsUnsupported { .. }),
                "{}: {err}",
                p.name()
            );
        }
    }

    #[test]
    fn consensus_survives_realized_fault_plans_on_complete_graphs() {
        use beep_net::{FaultKind, FaultPlan};
        let g = topology::complete(10).unwrap();
        let ch: ChannelModel = Noise::bernoulli(0.1).into();
        for kind in [
            FaultKind::Crash { round: 4 },
            FaultKind::ByzantineSpam,
            FaultKind::ByzantineMute,
        ] {
            let plan = FaultPlan::realize(10, 0.3, kind, 11).unwrap();
            assert_eq!(plan.len(), 3);
            let out = Protocol::BeepConsensus
                .run_with_faults(&g, &ch, &plan, 11)
                .unwrap();
            assert!(out.success, "{}: verdict failed", kind.keyword());
            assert!(out.rounds > 0);
            let faulty = out
                .metrics
                .iter()
                .find(|(k, _)| *k == "faulty_nodes")
                .unwrap()
                .1;
            assert_eq!(faulty, 3.0);
        }
    }

    #[test]
    fn out_of_range_fault_plan_is_a_net_error() {
        use beep_net::{FaultKind, FaultPlan};
        let g = topology::path(4).unwrap();
        let plan = FaultPlan::try_from_assignments(vec![(9, FaultKind::ByzantineSpam)]).unwrap();
        let clean: ChannelModel = Noise::Noiseless.into();
        let err = Protocol::BeepConsensus
            .run_with_faults(&g, &clean, &plan, 0)
            .unwrap_err();
        assert!(matches!(err, AppError::Net(_)), "{err}");
    }
}
