//! Deterministic leader election with beep waves: `O(D·log n)` rounds in
//! the noiseless beeping model, in the style of Förster, Seidel &
//! Wattenhofer (cited by the paper's Section 1.2 survey).
//!
//! Nodes bid with their ids, one bit per window, most-significant first.
//! Each window spans `D_bound + 1` rounds: surviving candidates whose
//! current id bit is 1 start a beep wave; every node relays (once per
//! window), so by the window's end the whole graph knows whether *any*
//! candidate bid 1. Candidates that bid 0 while someone bid 1 withdraw.
//! After all `⌈log₂ n⌉` windows, exactly the maximum-id node survives, and
//! every node has reconstructed the winner's id bit by bit.

use crate::error::AppError;
use beep_bits::BitVec;
use beep_net::{BeepNetwork, Graph, Noise};

/// Outcome of a leader election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderReport {
    /// The leader id every node agreed on (validated identical).
    pub leader: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Total beeps emitted.
    pub beeps: u64,
}

/// Elects the maximum-id node. `diameter_bound` must be ≥ the graph's
/// diameter (nodes are assumed to know such a bound; `n` always works).
///
/// # Errors
///
/// * [`AppError::Net`] on engine errors.
/// * [`AppError::InvalidOutput`] if nodes disagree (cannot happen with a
///   correct diameter bound on a connected graph; surfaces misuse).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn beep_leader_election(
    graph: &Graph,
    diameter_bound: usize,
    seed: u64,
) -> Result<LeaderReport, AppError> {
    let n = graph.node_count();
    assert!(n > 0, "cannot elect a leader of nothing");
    let id_bits = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
    let window = diameter_bound + 1;
    let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, seed);

    let mut candidate = vec![true; n];
    let mut learned: Vec<usize> = vec![0; n]; // winner id, reconstructed MSB-first
    let mut beepers = BitVec::zeros(n);
    let mut received = BitVec::zeros(n);
    for bit in (0..id_bits).rev() {
        // One wave window.
        let mut heard = vec![false; n];
        let mut relayed = vec![false; n];
        for t in 0..window {
            for v in 0..n {
                let initiates = t == 0 && candidate[v] && (v >> bit) & 1 == 1;
                let relays = t > 0 && heard[v] && !relayed[v];
                let fires = initiates || relays;
                if fires {
                    relayed[v] = true;
                    heard[v] = true; // initiators count as having the wave
                }
                beepers.set(v, fires);
            }
            net.run_round_bitset_into(&beepers, &mut received)?;
            for v in received.iter_ones() {
                heard[v] = true;
            }
        }
        // Window verdict: wave present ⇔ some candidate bid 1.
        for v in 0..n {
            if heard[v] {
                learned[v] |= 1 << bit;
                if candidate[v] && (v >> bit) & 1 == 0 {
                    candidate[v] = false;
                }
            }
        }
    }
    let leader = learned[0];
    if learned.iter().any(|&l| l != leader) {
        return Err(AppError::InvalidOutput {
            detail: format!("nodes disagree on the leader: {learned:?}"),
        });
    }
    let stats = net.stats();
    Ok(LeaderReport {
        leader,
        rounds: stats.rounds,
        beeps: stats.beeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    #[test]
    fn elects_max_id_on_assorted_graphs() {
        for (name, g) in [
            ("path", topology::path(10).unwrap()),
            ("cycle", topology::cycle(9).unwrap()),
            ("grid", topology::grid(3, 4).unwrap()),
            ("complete", topology::complete(6).unwrap()),
            ("tree", topology::binary_tree(11).unwrap()),
        ] {
            let d = g.diameter().unwrap();
            let report = beep_leader_election(&g, d, 1).unwrap();
            assert_eq!(report.leader, g.node_count() - 1, "{name}");
        }
    }

    #[test]
    fn round_count_is_d_times_log_n() {
        let g = topology::path(16).unwrap();
        let d = 15;
        let report = beep_leader_election(&g, d, 2).unwrap();
        // ⌈log₂ 16⌉ = 4 windows of D+1 rounds.
        assert_eq!(report.rounds, 4 * (d + 1));
    }

    #[test]
    fn oversized_diameter_bound_still_correct() {
        let g = topology::cycle(7).unwrap();
        let report = beep_leader_election(&g, 7 * 2, 3).unwrap();
        assert_eq!(report.leader, 6);
    }

    #[test]
    fn single_node_graph() {
        let g = beep_net::Graph::from_edges(1, &[]).unwrap();
        let report = beep_leader_election(&g, 0, 4).unwrap();
        assert_eq!(report.leader, 0);
    }

    #[test]
    fn undersized_bound_on_disconnected_graph_disagrees() {
        // Two components: they cannot agree; the validation must trip.
        let g = beep_net::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            beep_leader_election(&g, 4, 5),
            Err(AppError::InvalidOutput { .. })
        ));
    }
}
